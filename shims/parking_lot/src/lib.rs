//! In-tree stand-in for `parking_lot` (API subset), backed by
//! `std::sync`.
//!
//! Only the surface perfport touches is provided: a non-poisoning
//! [`Mutex`] whose `lock` returns the guard directly, and a [`Condvar`]
//! that waits on a `&mut MutexGuard`. Poisoning is deliberately
//! swallowed (`into_inner` on the poison error): the pool's panic
//! propagation protocol re-raises worker panics itself, so a poisoned
//! lock only means "a panic is already in flight" and the data is still
//! in a consistent state for the teardown paths that observe it.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive, `parking_lot`-flavoured: `lock()`
/// returns the guard, never a `Result`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Holds an `Option` internally so
/// [`Condvar::wait`] can move the underlying std guard out and back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex around `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable paired with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and waits for a
    /// notification; the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_is_swallowed() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
