//! In-tree stand-in for `criterion` (API subset).
//!
//! A minimal wall-clock harness: each benchmark body is warmed up once
//! and then timed over a handful of iterations, reporting the mean per
//! iteration. There is no statistical analysis, outlier rejection, or
//! HTML report — the point is that `cargo bench`/`cargo test` build and
//! run the bench targets hermetically, with usable relative numbers.
//!
//! Iteration counts are intentionally small so that bench binaries
//! double as smoke tests under `cargo test` (harness = false targets
//! are executed by the test runner). Set `CRITERION_SHIM_ITERS` to
//! raise the measured iteration count for real comparisons.

use std::fmt;
use std::time::{Duration, Instant};

/// Measurement throughput annotation (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (the group supplies the name).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// The timing context handed to each benchmark body.
pub struct Bencher {
    iters: u64,
    last: Option<Duration>,
}

impl Bencher {
    /// Times `body` over the configured iteration count and records the
    /// mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // One warm-up call outside the timed window.
        let _ = std::hint::black_box(body());
        let start = Instant::now();
        for _ in 0..self.iters {
            let _ = std::hint::black_box(body());
        }
        self.last = Some(start.elapsed() / self.iters.max(1) as u32);
    }
}

fn shim_iters() -> u64 {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(3)
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the requested sample count (accepted for API parity; the
    /// shim's iteration count comes from `CRITERION_SHIM_ITERS`).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the requested measurement window (accepted for API parity).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates throughput (echoed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: shim_iters(),
            last: None,
        };
        body(&mut b);
        report(&self.name, &id.to_string(), b.last);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: shim_iters(),
            last: None,
        };
        body(&mut b, input);
        report(&self.name, &id.to_string(), b.last);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, per_iter: Option<Duration>) {
    match per_iter {
        Some(d) => println!("bench {group}/{id}: {d:?}/iter"),
        None => println!("bench {group}/{id}: body never called iter()"),
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Re-export so bodies can use `criterion::black_box` if they want to.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(1));
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..100u64).map(|x| x * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(smoke, sample_bench);

    #[test]
    fn group_runs_bodies() {
        smoke();
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("a", 3).to_string(), "a/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
