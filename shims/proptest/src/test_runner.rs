//! The deterministic generator behind every strategy.

/// A self-contained xoshiro256\*\* generator. Each property test gets
/// its own instance seeded from the test's name, so input streams are
/// stable across runs, test orderings, and platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from a test name (FNV-1a hash), honouring the
    /// `PROPTEST_SEED` environment variable as an extra mix-in so a CI
    /// job can explore different streams deliberately.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = extra.trim().parse::<u64>() {
                h ^= v.rotate_left(17);
            }
        }
        Self::from_seed(h)
    }

    /// Seeds directly from a 64-bit value (splitmix64 expansion).
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    /// The next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
