//! In-tree stand-in for `proptest` (API subset).
//!
//! Provides the strategy combinators and macros the workspace's
//! property tests use: range strategies over ints and floats, tuple
//! strategies (up to arity 8), `prop_map`, `bool::ANY`,
//! `collection::vec`, `option::weighted`, the `proptest!` macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case panics with its generated inputs
//!   visible in the assertion message instead of a minimized
//!   counterexample.
//! - **Deterministic generation.** Each test's input stream is seeded
//!   from a hash of the test name (overridable with `PROPTEST_SEED`),
//!   so failures reproduce exactly across runs and machines.

use std::fmt;

pub mod strategy;
pub use strategy::Strategy;

pub mod test_runner;
pub use test_runner::TestRng;

/// Per-test configuration, set with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod bool {
    //! Strategies over `bool`.

    use crate::{Strategy, TestRng};

    /// Strategy yielding `false`/`true` uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates arbitrary booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    //! Strategies over collections.

    use crate::{Strategy, TestRng};
    use std::ops::Range;

    /// The length specification `vec` accepts: an exact length or a
    /// half-open range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "vec: empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy yielding vectors of `element` values with lengths drawn
    /// from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Strategies over `Option`.

    use crate::{Strategy, TestRng};

    /// Strategy yielding `Some(inner)` with probability `p`.
    pub struct WeightedOption<S> {
        p: f64,
        inner: S,
    }

    /// `Some` with probability `p`, `None` otherwise.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> WeightedOption<S> {
        WeightedOption { p, inner }
    }

    impl<S: Strategy> Strategy for WeightedOption<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.p {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::TestRng;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Formats generated inputs for failure messages.
pub fn format_case<T: fmt::Debug>(value: &T) -> String {
    format!("{value:?}")
}

/// The heart of the shim: runs each `fn name(pat in strategy, ...)`
/// body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (config = ($cfg:expr); ) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..config.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current generated case when its inputs don't satisfy a
/// precondition. Expands to a `continue` of the case loop, so it is
/// only usable at the top level of a `proptest!` body (which is how the
/// workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10, 1usize..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..17, b in crate::bool::ANY, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            let _covered: bool = b; // bool::ANY produced a real bool
            prop_assert!((-2.0..2.0).contains(&f));
        }

        /// Tuple strategies thread through helper functions.
        #[test]
        fn tuples_work((a, b) in pair()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_ne!(a, 0);
        }

        /// Collection and option combinators compose.
        #[test]
        fn vec_and_option(v in crate::collection::vec(crate::option::weighted(0.5, 0u32..5), 0..9)) {
            prop_assert!(v.len() < 9);
            for x in v.into_iter().flatten() {
                prop_assert!(x < 5);
            }
        }

        /// Inclusive ranges include both endpoints eventually.
        #[test]
        fn inclusive_range(bits in 0u16..=0xffff) {
            let _ = bits; // full domain: nothing to violate
        }

        /// `prop_map` transforms generated values and composes with
        /// tuples and `collection::vec`.
        #[test]
        fn prop_map_composes(v in crate::collection::vec((0usize..5, 0usize..5).prop_map(|(a, b)| a + b), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for s in v {
                prop_assert!(s <= 8);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::for_test("generation_is_deterministic");
        let mut b = TestRng::for_test("generation_is_deterministic");
        let s = 0u64..1_000_000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn fixed_len_vec() {
        let mut rng = TestRng::for_test("fixed_len_vec");
        let v = crate::collection::vec(0.0f64..1.5, 20usize).generate(&mut rng);
        assert_eq!(v.len(), 20);
    }
}
