//! The [`Strategy`] trait and the primitive strategies over ranges and
//! tuples.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking:
/// `generate` draws one value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` — upstream's `prop_map`
    /// (without shrinking, like everything else in this shim).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let width = (self.end as i128) - (self.start as i128);
                let draw = (rng.next_u64() as i128).rem_euclid(width);
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy: empty range");
                let width = (hi as i128) - (lo as i128) + 1;
                let draw = (rng.next_u64() as i128).rem_euclid(width);
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy: empty range");
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
