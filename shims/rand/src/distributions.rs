//! Distributions: only [`Standard`] is needed by the workspace.

use crate::Rng;

/// A distribution over `T`, sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: uniform `[0, 1)` for floats.
/// Downstream crates implement `Distribution<TheirType> for Standard`
/// to hook their types into `rng.gen()`.
pub struct Standard;

impl Distribution<f64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24 uniform mantissa bits.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    #[inline]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
