//! In-tree stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace builds in environments with no registry access, so the
//! handful of `rand` APIs perfport relies on are reimplemented here:
//! [`rngs::StdRng`] (a deterministic xoshiro256\*\*), [`SeedableRng`],
//! the [`Rng`] extension trait with `gen`/`gen_range`, and the
//! [`distributions::Standard`] distribution for `f32`/`f64`.
//!
//! Determinism is the only contract: the same seed always produces the
//! same stream, on every platform. The stream is *not* bit-compatible
//! with the upstream crate (perfport only ever compares runs against
//! other runs of itself, never against externally recorded streams).

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// The next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next 32-bit value (upper half of the next word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_u64() as u128) % width;
                (self.start as u128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128) % width;
                (lo as u128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit: $t = Standard.sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(0u16..2048);
            assert!(v < 2048);
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(11);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
