//! In-tree stand-in for `serde`.
//!
//! Perfport's value types derive `Serialize`/`Deserialize` as a forward
//! declaration of wire-format intent, but nothing in the workspace
//! serializes through serde today (all rendering is hand-written text,
//! CSV, and JSON). This stand-in keeps those derives compiling without
//! registry access: the traits are empty markers and the derive macros
//! expand to nothing. Swapping the real serde back in is a one-line
//! change in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s name. No methods: the
/// in-tree derives expand to nothing, so nothing ever bounds on this.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}
