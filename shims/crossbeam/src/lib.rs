//! In-tree stand-in for `crossbeam` (channel subset), backed by
//! `std::sync::mpsc` — whose modern implementation is itself the
//! crossbeam-channel algorithm, so semantics and performance match.

pub mod channel {
    //! Multi-producer channels with the `crossbeam-channel` API shape.

    use std::fmt;
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, TryRecvError};

    /// Error returned when sending on a channel with no receiver.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// The sending half of an unbounded channel. Cloneable and `Sync`.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; fails only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; fails once all senders are gone
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_delivery() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn senders_are_clone_and_sync() {
            fn assert_sync<T: Sync>(_: &T) {}
            let (tx, rx) = unbounded::<u32>();
            assert_sync(&tx);
            let tx2 = tx.clone();
            std::thread::scope(|s| {
                s.spawn(|| tx.send(1).unwrap());
                s.spawn(|| tx2.send(2).unwrap());
            });
            let mut got = [rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, [1, 2]);
        }

        #[test]
        fn recv_fails_after_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 9);
            assert!(rx.recv().is_err());
        }
    }
}
