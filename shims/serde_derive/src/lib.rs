//! No-op derive macros backing the in-tree `serde` stand-in.
//!
//! The workspace derives `Serialize`/`Deserialize` on value types so a
//! future wire format can be added without churn, but nothing currently
//! serializes through serde (reports are rendered by hand). These
//! derives accept the same attribute grammar (`#[serde(...)]`) and
//! expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and `#[serde(...)]` attributes;
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and `#[serde(...)]` attributes;
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
