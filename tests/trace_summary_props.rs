//! Property tests for `trace::summary::render` on pathological event
//! streams: arbitrary interleavings, unbalanced begin/end pairs,
//! counter-only sessions, and non-monotonic timestamps. The renderer is
//! the last consumer of whatever a crashed or misinstrumented run left
//! behind, so it must never panic and must account for every event —
//! completed, unclosed, or unmatched — rather than silently dropping
//! the ones that don't line up.

use perfport::trace::{summary, Event, EventKind, Value};
use proptest::prelude::*;

const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

fn ev(kind: EventKind, name: &str, ts_ns: u128, tid: u64) -> Event {
    Event {
        kind,
        cat: "p".to_string(),
        name: name.to_string(),
        ts_ns,
        tid,
        args: Vec::new(),
    }
}

/// Decodes one generated op into an event: kind, span name, thread, and
/// timestamp all arbitrary — including end-before-begin orderings.
fn decode(op: (u8, u8, u8, u16)) -> Event {
    let (kind, name, tid, ts) = op;
    let kind = match kind % 4 {
        0 => EventKind::SpanBegin,
        1 => EventKind::SpanEnd,
        2 => EventKind::Counter,
        _ => EventKind::Instant,
    };
    let mut e = ev(
        kind,
        NAMES[name as usize % NAMES.len()],
        ts as u128,
        tid as u64 % 3,
    );
    if e.kind == EventKind::Counter {
        e.args.push(("value".to_string(), Value::F64(ts as f64)));
    }
    e
}

/// The obviously-correct accounting the renderer must agree with: per
/// thread, an end completes some open span of the same name; otherwise
/// it is unmatched. Which occurrence it matches cannot change the
/// counts, only the attributed durations.
fn expected_imbalance(events: &[Event]) -> (u64, u64) {
    use std::collections::BTreeMap;
    let mut open: BTreeMap<(u64, &str), u64> = BTreeMap::new();
    let mut unmatched = 0u64;
    for e in events {
        match e.kind {
            EventKind::SpanBegin => *open.entry((e.tid, e.name.as_str())).or_default() += 1,
            EventKind::SpanEnd => match open.get_mut(&(e.tid, e.name.as_str())) {
                Some(n) if *n > 0 => *n -= 1,
                _ => unmatched += 1,
            },
            _ => {}
        }
    }
    (open.values().sum(), unmatched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary streams — unbalanced, cross-thread, time-travelling —
    /// must render without panicking, and the warning line must agree
    /// with independent bookkeeping of what could not be matched.
    #[test]
    fn arbitrary_streams_render_and_account_for_imbalance(
        ops in proptest::collection::vec((0u8..4, 0u8..3, 0u8..3, 0u16..1000), 0..40)
    ) {
        let events: Vec<Event> = ops.into_iter().map(decode).collect();
        let text = summary::render(&events);
        prop_assert!(text.contains(&format!("{} events", events.len())));
        let (unclosed, unmatched) = expected_imbalance(&events);
        if unclosed == 0 && unmatched == 0 {
            prop_assert!(!text.contains("warning:"), "{text}");
        } else {
            let want = format!(
                "warning: {unclosed} unclosed span(s), {unmatched} unmatched end(s)"
            );
            prop_assert!(text.contains(&want), "missing '{want}' in:\n{text}");
        }
    }

    /// Well-formed nested streams (a Dyck walk per thread) never draw a
    /// warning, whatever the cross-thread interleaving looks like.
    #[test]
    fn balanced_nesting_never_warns(
        walk in proptest::collection::vec((proptest::bool::ANY, 0u8..3, 0u8..3), 0..40)
    ) {
        let mut stacks: std::collections::BTreeMap<u64, Vec<&str>> = Default::default();
        let mut events = Vec::new();
        let mut ts = 0u128;
        for (push, name, tid) in walk {
            let tid = tid as u64;
            let stack = stacks.entry(tid).or_default();
            ts += 1;
            if push {
                let name = NAMES[name as usize % NAMES.len()];
                stack.push(name);
                events.push(ev(EventKind::SpanBegin, name, ts, tid));
            } else if let Some(name) = stack.pop() {
                events.push(ev(EventKind::SpanEnd, name, ts, tid));
            }
        }
        // Close whatever the walk left open, innermost first.
        for (tid, stack) in &mut stacks {
            while let Some(name) = stack.pop() {
                ts += 1;
                events.push(ev(EventKind::SpanEnd, name, ts, *tid));
            }
        }
        let text = summary::render(&events);
        prop_assert!(!text.contains("warning:"), "{text}");
    }

    /// Counter-only sessions: no spans at all, every series accounted
    /// with the right observation count, extreme values included.
    #[test]
    fn counter_only_sessions_count_every_observation(
        obs in proptest::collection::vec((0u8..3, -1e12f64..1e12, proptest::bool::ANY), 1..30)
    ) {
        let mut events = Vec::new();
        let mut expect: std::collections::BTreeMap<String, usize> = Default::default();
        for (i, (name, v, multi)) in obs.iter().enumerate() {
            let name = NAMES[*name as usize % NAMES.len()];
            let mut e = ev(EventKind::Counter, name, i as u128, 0);
            if *multi {
                // A counter_set-style event: one row per series.
                e.args.push(("x".to_string(), Value::F64(*v)));
                e.args.push(("y".to_string(), Value::F64(-v)));
                *expect.entry(format!("p:{name}.x")).or_default() += 1;
                *expect.entry(format!("p:{name}.y")).or_default() += 1;
            } else {
                e.args.push(("value".to_string(), Value::F64(*v)));
                *expect.entry(format!("p:{name}")).or_default() += 1;
            }
            events.push(e);
        }
        let text = summary::render(&events);
        prop_assert!(text.contains("spans: none"), "{text}");
        for (key, count) in &expect {
            let line = text
                .lines()
                .find(|l| l.split_whitespace().next() == Some(key.as_str()))
                .unwrap_or_else(|| panic!("no row for {key} in:\n{text}"));
            let got: usize = line
                .split_whitespace()
                .nth(1)
                .and_then(|t| t.parse().ok())
                .unwrap_or_else(|| panic!("unparsable count in '{line}'"));
            prop_assert_eq!(got, *count, "{}", text);
        }
    }

    /// Ends that precede their begins in timestamp (clock skew across
    /// threads, buggy instrumentation) must not panic or underflow —
    /// durations saturate at zero.
    #[test]
    fn non_monotonic_timestamps_saturate(
        begin_ts in 0u16..1000, end_ts in 0u16..1000
    ) {
        let events = vec![
            ev(EventKind::SpanBegin, "skewed", begin_ts as u128, 0),
            ev(EventKind::SpanEnd, "skewed", end_ts as u128, 0),
        ];
        let text = summary::render(&events);
        prop_assert!(text.contains("p:skewed"), "{text}");
        prop_assert!(!text.contains("warning:"), "{text}");
    }
}
