//! Integration: the tracing subsystem observes the whole pipeline
//! (pool regions → simulated kernel launches → runner size points →
//! study figures) and exports usable artifacts.
//!
//! This file is its own test binary, so the global tracer is not shared
//! with other integration suites; tests here still serialize among
//! themselves because the collector slot is process-wide.

use perfport::core::{run_experiment, Experiment, StudyConfig};
use perfport::machines::Precision;
use perfport::models::{Arch, ProgModel};
use perfport::trace::{self, EventKind};
use std::sync::Mutex;

static TRACER: Mutex<()> = Mutex::new(());

fn count_span_ends(events: &[trace::Event], cat: &str, name: &str) -> usize {
    events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd && e.cat == cat && e.name == name)
        .count()
}

#[test]
fn full_pipeline_emits_spans_from_every_layer() {
    let _guard = TRACER.lock().unwrap_or_else(|e| e.into_inner());
    let session = trace::TraceSession::start();
    let mut cfg = StudyConfig::quick();
    // The verification memo is process-global and keyed by seed; a
    // test-unique seed keeps the fresh-verification (and hence GPU
    // launch) counts independent of whichever sibling test ran first.
    cfg.seed = 0xF19A;
    let spec = perfport::core::figure_specs()
        .into_iter()
        .find(|s| s.id == "fig7a")
        .expect("fig7a registered");
    let rows = spec.run(&cfg);
    let events = session.finish();
    assert_eq!(rows.len(), 4);

    // Study layer: one figure span.
    assert_eq!(count_span_ends(&events, "study", "figure"), 1);
    // Runner layer: one experiment span per curve, one verify each,
    // and a size-point span per (curve, size).
    assert_eq!(count_span_ends(&events, "runner", "experiment"), 4);
    assert_eq!(count_span_ends(&events, "runner", "verify"), 4);
    assert_eq!(
        count_span_ends(&events, "runner", "size_point"),
        4 * cfg.gpu_sizes.len()
    );
    // GPU layer: every verification ran a simulated launch.
    assert!(count_span_ends(&events, "gpu", "launch") >= 4);
    // Pool layer is exercised by CPU experiments.
    let cpu_session = trace::TraceSession::start();
    let mut cpu_exp = Experiment::new(
        Arch::Epyc7A53,
        ProgModel::COpenMp,
        Precision::Double,
        vec![1024],
    );
    cpu_exp.seed = 0xF19A;
    run_experiment(&cpu_exp).unwrap();
    let cpu_events = cpu_session.finish();
    assert!(count_span_ends(&cpu_events, "pool", "parallel_for") >= 1);
    assert!(count_span_ends(&cpu_events, "pool", "region") >= 1);

    // Every span end has a matching begin, and timestamps are sane.
    for (cat, name) in [
        ("study", "figure"),
        ("runner", "experiment"),
        ("runner", "size_point"),
        ("gpu", "launch"),
    ] {
        let begins = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin && e.cat == cat && e.name == name)
            .count();
        assert_eq!(
            begins,
            count_span_ends(&events, cat, name),
            "unbalanced {cat}:{name} spans"
        );
    }
}

#[test]
fn chrome_export_round_trips_and_summary_renders() {
    let _guard = TRACER.lock().unwrap_or_else(|e| e.into_inner());
    let session = trace::TraceSession::start();
    run_experiment(&Experiment::new(
        Arch::A100,
        ProgModel::Cuda,
        Precision::Double,
        vec![4096],
    ))
    .unwrap();
    let events = session.finish();
    assert!(!events.is_empty());

    let chrome = trace::export::chrome(&events);
    assert!(chrome.contains("\"traceEvents\""));
    let imported = trace::export::import_chrome(&chrome).expect("valid chrome trace");
    assert_eq!(imported.len(), events.len());
    for (a, b) in imported.iter().zip(&events) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.name, b.name);
        assert_eq!(a.cat, b.cat);
        assert_eq!(a.tid, b.tid);
    }

    let jsonl = trace::export::jsonl(&events);
    assert_eq!(jsonl.lines().count(), events.len());

    let summary = trace::summary::render(&events);
    assert!(summary.contains("runner:experiment"), "{summary}");
    assert!(summary.contains("runner:size_point"), "{summary}");
    assert!(summary.contains("runner:gflops"), "{summary}");
    assert!(
        !summary.contains("unmatched"),
        "summary flagged broken span nesting:\n{summary}"
    );
}

#[test]
fn disabled_tracing_records_nothing_and_results_match() {
    let _guard = TRACER.lock().unwrap_or_else(|e| e.into_inner());
    let exp = Experiment::new(
        Arch::AmpereAltra,
        ProgModel::JuliaThreads,
        Precision::Single,
        vec![1024, 4096],
    );
    assert!(!trace::enabled());
    let off = run_experiment(&exp).unwrap();

    let session = trace::TraceSession::start();
    let on = run_experiment(&exp).unwrap();
    let events = session.finish();
    assert!(!events.is_empty());

    for (x, y) in off.points.iter().zip(&on.points) {
        assert_eq!(x.gflops.to_bits(), y.gflops.to_bits());
        assert_eq!(x.seconds.to_bits(), y.seconds.to_bits());
        for (sx, sy) in x.samples.iter().zip(&y.samples) {
            assert_eq!(sx.to_bits(), sy.to_bits());
        }
    }
    assert_eq!(off.verification_rel_err, on.verification_rel_err);
    assert_eq!(
        off.warmup_excluded_s.to_bits(),
        on.warmup_excluded_s.to_bits()
    );
}

#[test]
fn counters_carry_the_modelled_throughput() {
    let _guard = TRACER.lock().unwrap_or_else(|e| e.into_inner());
    let session = trace::TraceSession::start();
    let result = run_experiment(&Experiment::new(
        Arch::A100,
        ProgModel::KokkosCuda,
        Precision::Single,
        vec![8192],
    ))
    .unwrap();
    let events = session.finish();

    let gflops_counters: Vec<f64> = events
        .iter()
        .filter(|e| e.kind == EventKind::Counter && e.cat == "runner" && e.name == "gflops")
        .filter_map(|e| e.arg("value").and_then(|v| v.as_f64()))
        .collect();
    assert_eq!(gflops_counters.len(), 1);
    assert_eq!(gflops_counters[0], result.points[0].gflops);

    // The size-point span carries the same number as an end-event arg.
    let sp = events
        .iter()
        .find(|e| e.kind == EventKind::SpanEnd && e.cat == "runner" && e.name == "size_point")
        .expect("size_point span");
    let arg = sp.arg("gflops").and_then(|v| v.as_f64()).unwrap();
    assert_eq!(arg, result.points[0].gflops);
}
