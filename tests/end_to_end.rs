//! End-to-end integration: the full study pipeline across every crate.

use perfport::core::{
    efficiency_table, efficiency_table_with, figure_specs, render_csv, render_figure,
    render_table3, run_experiment, Experiment, HostBaseline, StudyConfig,
};
use perfport::machines::Precision;
use perfport::models::{Arch, ModelFamily, ProgModel};

fn quick() -> StudyConfig {
    StudyConfig::quick()
}

#[test]
fn all_eleven_figure_panels_regenerate() {
    let cfg = quick();
    for spec in figure_specs() {
        let rows = spec.run(&cfg);
        assert_eq!(rows.len(), spec.models.len(), "{}", spec.id);
        // Every curve either produced data or is a documented
        // unsupported combination.
        for (model, result) in &rows {
            match result {
                Ok(r) => {
                    assert!(!r.points.is_empty(), "{}: {model} has no points", spec.id);
                    assert!(
                        r.points
                            .iter()
                            .all(|p| p.gflops.is_finite() && p.gflops > 0.0),
                        "{}: {model} produced non-finite throughput",
                        spec.id
                    );
                }
                Err(e) => {
                    assert!(
                        e.to_string().contains("unsupported"),
                        "{}: {model} failed for a non-support reason: {e}",
                        spec.id
                    );
                }
            }
        }
        // Rendering never panics and includes the title.
        let text = render_figure(spec.title, &rows);
        assert!(text.contains(spec.title));
        let csv = render_csv(&rows);
        assert!(csv.starts_with("n,"));
    }
}

#[test]
fn table_iii_regenerates_with_paper_shape() {
    let cfg = quick();
    // The paper's §V claims are about its naive-vs-naive framing; pin
    // them under that baseline explicitly. The default measured
    // baseline scales FP64 GPU rows down harder than FP32 (the tiled
    // kernel's FP64 headroom is larger), which legitimately inverts the
    // precision ordering.
    let d = efficiency_table_with(Precision::Double, &cfg, HostBaseline::NaiveModel);
    let s = efficiency_table_with(Precision::Single, &cfg, HostBaseline::NaiveModel);

    // The paper's headline orderings.
    for r in [&d, &s] {
        assert!(r.phi(ModelFamily::Julia) > r.phi(ModelFamily::Kokkos));
        assert!(r.phi(ModelFamily::Kokkos) > r.phi(ModelFamily::PythonNumba));
    }
    // "the portability of all models is slightly lower for
    // single-precision" (§V).
    for f in ModelFamily::ALL {
        assert!(
            s.phi(f) < d.phi(f) + 0.02,
            "{f}: FP32 phi {} should not exceed FP64 phi {}",
            s.phi(f),
            d.phi(f)
        );
    }
    // The default measured baseline still regenerates and preserves the
    // cross-model ordering.
    let dm = efficiency_table(Precision::Double, &cfg);
    assert!(dm.phi(ModelFamily::Julia) > dm.phi(ModelFamily::Kokkos));
    assert!(dm.phi(ModelFamily::Kokkos) > dm.phi(ModelFamily::PythonNumba));
    let rendered = render_table3(&[d, s]);
    assert!(rendered.contains("Phi_M"));
}

#[test]
fn every_experiment_is_deterministic_end_to_end() {
    let exp = Experiment::new(
        Arch::Mi250x,
        ProgModel::JuliaAmdGpu,
        Precision::Single,
        vec![4096, 8192],
    );
    let a = run_experiment(&exp).unwrap();
    let b = run_experiment(&exp).unwrap();
    assert_eq!(a.points.len(), b.points.len());
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x.gflops.to_bits(), y.gflops.to_bits(), "non-deterministic");
    }
    assert_eq!(a.verification_rel_err, b.verification_rel_err);

    // Tracing is observation-only: rerunning with a collector installed
    // must not perturb a single bit of the results. (Other tests in this
    // binary may record into the session concurrently; that is fine —
    // the assertion is about the experiment's outputs, not the events.)
    let session = perfport::trace::TraceSession::start();
    let traced = run_experiment(&exp).unwrap();
    let events = session.finish();
    for (x, y) in a.points.iter().zip(&traced.points) {
        assert_eq!(
            x.gflops.to_bits(),
            y.gflops.to_bits(),
            "tracing perturbed the modelled results"
        );
    }
    assert_eq!(a.verification_rel_err, traced.verification_rel_err);
    // The traced run recorded the expected span structure.
    use perfport::trace::EventKind;
    let experiment_spans = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd && e.cat == "runner" && e.name == "experiment")
        .count();
    assert!(experiment_spans >= 1, "no runner:experiment span recorded");
    let size_points = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd && e.cat == "runner" && e.name == "size_point")
        .count();
    assert!(
        size_points >= exp.sizes.len(),
        "expected at least {} size_point spans, got {size_points}",
        exp.sizes.len()
    );
}

#[test]
fn unsupported_combinations_are_exactly_the_papers() {
    let cfg = quick();
    let mut unsupported = Vec::new();
    for arch in Arch::ALL {
        for model in ProgModel::candidates(arch) {
            for precision in Precision::ALL {
                let mut e = Experiment::new(arch, model, precision, cfg.sizes_for(arch).to_vec());
                e.reps = 1;
                if run_experiment(&e).is_err() {
                    unsupported.push((arch, model, precision));
                }
            }
        }
    }
    // Numba on MI250X (3 precisions) + FP16 for C/Kokkos vendor stacks.
    assert!(unsupported.contains(&(Arch::Mi250x, ProgModel::NumbaCuda, Precision::Double)));
    assert!(unsupported.contains(&(Arch::A100, ProgModel::Cuda, Precision::Half)));
    assert!(unsupported.contains(&(Arch::Mi250x, ProgModel::KokkosHip, Precision::Half)));
    assert!(unsupported.contains(&(Arch::Epyc7A53, ProgModel::COpenMp, Precision::Half)));
    // And nothing in double/single is unsupported except Numba-on-AMD.
    for (arch, model, p) in &unsupported {
        if *p != Precision::Half {
            assert_eq!(*model, ProgModel::NumbaCuda);
            assert_eq!(*arch, Arch::Mi250x);
        }
    }
}

#[test]
fn hardware_profiling_is_observation_only() {
    // The perfport-obs contract: enabling counter collection must not
    // change a single result bit. Run the real host kernels (naive and
    // tuned, through the pool whose workers carry the counter scopes)
    // with profiling off, then on, and compare outputs bit-for-bit.
    // This holds whether counters are actually available (scopes read
    // real groups) or not (scopes are inert) — both paths are exercised
    // depending on the machine running the suite.
    use perfport::gemm::{par_gemm, tuned, CpuVariant, Layout, Matrix};
    use perfport::pool::{Schedule, ThreadPool};

    let n = 96;
    let pool = ThreadPool::new(4);
    let a = Matrix::<f64>::random(n, n, Layout::RowMajor, 11);
    let b = Matrix::<f64>::random(n, n, Layout::RowMajor, 12);
    let params = tuned::TunedParams::host::<f64>();

    let run_both = || {
        let mut c_naive = Matrix::<f64>::zeros(n, n, Layout::RowMajor);
        par_gemm(
            &pool,
            CpuVariant::OpenMpC,
            &a,
            &b,
            &mut c_naive,
            Schedule::StaticBlock,
        );
        let mut c_tuned = Matrix::<f64>::zeros(n, n, Layout::RowMajor);
        tuned::gemm(&pool, &a, &b, &mut c_tuned, &params);
        (c_naive, c_tuned)
    };

    perfport::obs::disable();
    let (naive_off, tuned_off) = run_both();
    let avail = perfport::obs::try_enable();
    let (naive_on, tuned_on) = run_both();
    perfport::obs::disable();

    for (off, on, what) in [
        (&naive_off, &naive_on, "naive"),
        (&tuned_off, &tuned_on, "tuned"),
    ] {
        for (x, y) in off.as_slice().iter().zip(on.as_slice()) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: profiling (counters {}) perturbed the results",
                avail.manifest_str()
            );
        }
    }
}

#[test]
fn warmup_exclusion_reports_jit_costs() {
    let julia = run_experiment(&Experiment::new(
        Arch::A100,
        ProgModel::JuliaCudaJl,
        Precision::Double,
        vec![4096],
    ))
    .unwrap();
    let cuda = run_experiment(&Experiment::new(
        Arch::A100,
        ProgModel::Cuda,
        Precision::Double,
        vec![4096],
    ))
    .unwrap();
    assert!(julia.warmup_excluded_s > 3.0, "Julia JIT warm-up missing");
    assert!(cuda.warmup_excluded_s < 1.0, "CUDA has no JIT");
}
