//! Each test encodes one qualitative claim from the paper's §IV results
//! discussion, checked against the regenerated data. These are the
//! "shape" assertions the reproduction must preserve: who wins, by
//! roughly what factor, and where the anomalies fall.

use perfport::core::{run_experiment, Experiment};
use perfport::machines::Precision;
use perfport::models::{Arch, ProgModel};

fn mean_gflops(arch: Arch, model: ProgModel, precision: Precision, sizes: &[usize]) -> f64 {
    run_experiment(&Experiment::new(arch, model, precision, sizes.to_vec()))
        .unwrap()
        .mean_gflops()
}

const CPU_SIZES: &[usize] = &[2048, 4096];
const GPU_SIZES: &[usize] = &[8192, 16384];

/// §IV.A(a): "Kokkos/OpenMP and Julia threads perform comparably with the
/// vendor C/OpenMP implementation, whereas Python/Numba is still behind."
#[test]
fn crusher_cpu_ordering() {
    let openmp = mean_gflops(
        Arch::Epyc7A53,
        ProgModel::COpenMp,
        Precision::Double,
        CPU_SIZES,
    );
    let kokkos = mean_gflops(
        Arch::Epyc7A53,
        ProgModel::KokkosOpenMp,
        Precision::Double,
        CPU_SIZES,
    );
    let julia = mean_gflops(
        Arch::Epyc7A53,
        ProgModel::JuliaThreads,
        Precision::Double,
        CPU_SIZES,
    );
    let numba = mean_gflops(
        Arch::Epyc7A53,
        ProgModel::NumbaParallel,
        Precision::Double,
        CPU_SIZES,
    );
    assert!(kokkos > 0.9 * openmp, "Kokkos comparable");
    assert!(julia > 0.85 * openmp, "Julia comparable");
    assert!(numba < 0.65 * openmp, "Numba clearly behind");
}

/// §IV.A(b): "Kokkos ... experiences a slowdown in both cases [on Arm].
/// Meanwhile, Julia's performance is almost on par with the vendor
/// OpenMP implementations."
#[test]
fn wombat_cpu_kokkos_slowdown_julia_on_par() {
    for p in [Precision::Double, Precision::Single] {
        let openmp = mean_gflops(Arch::AmpereAltra, ProgModel::COpenMp, p, CPU_SIZES);
        let kokkos = mean_gflops(Arch::AmpereAltra, ProgModel::KokkosOpenMp, p, CPU_SIZES);
        let julia = mean_gflops(Arch::AmpereAltra, ProgModel::JuliaThreads, p, CPU_SIZES);
        assert!(kokkos < 0.9 * openmp, "{p}: Kokkos slows down on Arm");
        assert!(julia > 0.85 * openmp, "{p}: Julia nearly on par");
    }
}

/// §IV.A: the pinning gap is a Crusher (4-NUMA) phenomenon — on the
/// single-NUMA Wombat, Numba's deficit is smaller.
#[test]
fn numba_numa_penalty_is_crusher_specific() {
    let crusher_ratio = mean_gflops(
        Arch::Epyc7A53,
        ProgModel::NumbaParallel,
        Precision::Double,
        CPU_SIZES,
    ) / mean_gflops(
        Arch::Epyc7A53,
        ProgModel::COpenMp,
        Precision::Double,
        CPU_SIZES,
    );
    let wombat_ratio = mean_gflops(
        Arch::AmpereAltra,
        ProgModel::NumbaParallel,
        Precision::Double,
        CPU_SIZES,
    ) / mean_gflops(
        Arch::AmpereAltra,
        ProgModel::COpenMp,
        Precision::Double,
        CPU_SIZES,
    );
    assert!(
        wombat_ratio > crusher_ratio + 0.1,
        "crusher {crusher_ratio:.3} vs wombat {wombat_ratio:.3}"
    );
}

/// §IV.B(a): "for double-precision runs, the vendor-provided HIP
/// implementation achieves the highest performance ... followed by Julia
/// using AMDGPU.jl and Kokkos/HIP."
#[test]
fn mi250x_fp64_ordering() {
    let hip = mean_gflops(Arch::Mi250x, ProgModel::Hip, Precision::Double, GPU_SIZES);
    let julia = mean_gflops(
        Arch::Mi250x,
        ProgModel::JuliaAmdGpu,
        Precision::Double,
        GPU_SIZES,
    );
    let kokkos = mean_gflops(
        Arch::Mi250x,
        ProgModel::KokkosHip,
        Precision::Double,
        GPU_SIZES,
    );
    assert!(
        hip > julia && julia > kokkos,
        "hip {hip}, julia {julia}, kokkos {kokkos}"
    );
    // "competitive levels" — within ~20% for Julia.
    assert!(julia > 0.8 * hip);
}

/// §IV.B(a): "Interestingly, Julia with AMDGPU.jl shows slightly better
/// performance than the vendor HIP implementation [at FP32]".
#[test]
fn mi250x_fp32_julia_edges_hip() {
    let hip = mean_gflops(Arch::Mi250x, ProgModel::Hip, Precision::Single, GPU_SIZES);
    let julia = mean_gflops(
        Arch::Mi250x,
        ProgModel::JuliaAmdGpu,
        Precision::Single,
        GPU_SIZES,
    );
    assert!(julia > hip);
    assert!(julia < 1.15 * hip, "the edge is slight");
}

/// §IV.B(a): "Kokkos has a repeatable slowdown at the largest size".
#[test]
fn mi250x_kokkos_dip_at_largest_size() {
    let r = run_experiment(&Experiment::new(
        Arch::Mi250x,
        ProgModel::KokkosHip,
        Precision::Double,
        vec![12288, 16384, 20480],
    ))
    .unwrap();
    let mid = r.at(16384).unwrap().gflops;
    let last = r.at(20480).unwrap().gflops;
    assert!(last < 0.85 * mid, "dip missing: {mid} -> {last}");
}

/// §IV.B(b): "Julia using CUDA.jl has a constant overhead when compared
/// to the vendor-provided CUDA implementation" — the ratio is stable
/// across sizes.
#[test]
fn a100_julia_constant_overhead() {
    let sizes = vec![4096, 8192, 12288, 16384, 20480];
    let cuda = run_experiment(&Experiment::new(
        Arch::A100,
        ProgModel::Cuda,
        Precision::Double,
        sizes.clone(),
    ))
    .unwrap();
    let julia = run_experiment(&Experiment::new(
        Arch::A100,
        ProgModel::JuliaCudaJl,
        Precision::Double,
        sizes.clone(),
    ))
    .unwrap();
    let ratios: Vec<f64> = sizes
        .iter()
        .map(|&n| julia.at(n).unwrap().gflops / cuda.at(n).unwrap().gflops)
        .collect();
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    for r in &ratios {
        assert!(
            (r - mean).abs() < 0.08,
            "overhead is not constant: {ratios:?}"
        );
    }
    assert!((0.8..0.95).contains(&mean), "Fig. 7a ratio band: {mean}");
}

/// §IV.B(b): "Kokkos and Python/Numba using a CUDA back end consistently
/// underperform".
#[test]
fn a100_kokkos_and_numba_underperform() {
    for p in [Precision::Double, Precision::Single] {
        let cuda = mean_gflops(Arch::A100, ProgModel::Cuda, p, GPU_SIZES);
        let kokkos = mean_gflops(Arch::A100, ProgModel::KokkosCuda, p, GPU_SIZES);
        let numba = mean_gflops(Arch::A100, ProgModel::NumbaCuda, p, GPU_SIZES);
        assert!(kokkos < 0.35 * cuda, "{p}: Kokkos gap");
        assert!(numba < 0.2 * cuda, "{p}: Numba gap");
        assert!(numba < kokkos, "{p}: Numba below Kokkos");
    }
}

/// §IV.B(b): "the performance of the vendor-provided CUDA implementation
/// increases significantly [at FP32], whereas other implementations
/// still present gaps ... small performance increases of around 10%"
/// (relative gains for Julia/Kokkos/Numba are much smaller than CUDA's).
#[test]
fn a100_fp32_gains_vendor_vs_others() {
    let gain = |model| {
        mean_gflops(Arch::A100, model, Precision::Single, GPU_SIZES)
            / mean_gflops(Arch::A100, model, Precision::Double, GPU_SIZES)
    };
    let cuda_gain = gain(ProgModel::Cuda);
    assert!(cuda_gain > 1.6, "vendor FP32 gain significant: {cuda_gain}");
    for model in [
        ProgModel::KokkosCuda,
        ProgModel::JuliaCudaJl,
        ProgModel::NumbaCuda,
    ] {
        assert!(
            gain(model) < cuda_gain - 0.15,
            "{model} should gain less than CUDA"
        );
    }
}

/// §IV.B: FP16 shows no gains over FP32 for the models that support it
/// (Figs. 6c, 7c).
#[test]
fn fp16_no_gain_over_fp32() {
    for (arch, model) in [
        (Arch::A100, ProgModel::JuliaCudaJl),
        (Arch::A100, ProgModel::NumbaCuda),
        (Arch::Mi250x, ProgModel::JuliaAmdGpu),
    ] {
        let half = mean_gflops(arch, model, Precision::Half, GPU_SIZES);
        let single = mean_gflops(arch, model, Precision::Single, GPU_SIZES);
        let ratio = half / single;
        assert!(
            (0.85..1.2).contains(&ratio),
            "{model} on {arch}: FP16/FP32 = {ratio}"
        );
    }
}

/// §IV.A: Julia FP16 on the AMD CPU has "very low performance", while on
/// Arm it works at the expected level (Fig. 5c).
#[test]
fn julia_fp16_cpu_split() {
    let on_amd = mean_gflops(
        Arch::Epyc7A53,
        ProgModel::JuliaThreads,
        Precision::Half,
        CPU_SIZES,
    );
    let amd_fp64 = mean_gflops(
        Arch::Epyc7A53,
        ProgModel::JuliaThreads,
        Precision::Double,
        CPU_SIZES,
    );
    assert!(on_amd < 0.3 * amd_fp64, "Zen 3 FP16 should be very slow");

    let on_arm = mean_gflops(
        Arch::AmpereAltra,
        ProgModel::JuliaThreads,
        Precision::Half,
        CPU_SIZES,
    );
    let arm_fp32 = mean_gflops(
        Arch::AmpereAltra,
        ProgModel::JuliaThreads,
        Precision::Single,
        CPU_SIZES,
    );
    assert!(on_arm > 0.8 * arm_fp32, "Arm FP16 at the expected level");
}

/// The GPUs beat the CPUs by an order of magnitude on the same kernel —
/// the premise that makes the GPU portability question interesting.
#[test]
fn gpus_dwarf_cpus() {
    let a100 = mean_gflops(Arch::A100, ProgModel::Cuda, Precision::Double, &[8192]);
    let epyc = mean_gflops(
        Arch::Epyc7A53,
        ProgModel::COpenMp,
        Precision::Double,
        &[8192],
    );
    assert!(a100 > 4.0 * epyc, "a100 {a100} vs epyc {epyc}");
}
