//! Cross-substrate consistency: the same GEMM computed by every engine
//! in the workspace must agree numerically — serial kernels, the
//! work-sharing pool, the SIMT simulator, and the mixed-precision paths.

use perfport::gemm::{
    gemm_reference_f64, gpu_gemm, par_gemm, serial::gemm_loop_order, CpuVariant, GpuVariant,
    Layout, LoopOrder, Matrix, Scalar,
};
use perfport::gpusim::{Dim3, Gpu};
use perfport::half::F16;
use perfport::metrics::productivity;
use perfport::pool::{Schedule, ThreadPool};

/// CPU (pool) and GPU (simulator) executions of the same problem agree
/// to round-off.
#[test]
fn cpu_pool_and_gpu_sim_agree() {
    let (m, k, n) = (64usize, 48, 80);
    let a = Matrix::<f64>::random(m, k, Layout::RowMajor, 11);
    let b = Matrix::<f64>::random(k, n, Layout::RowMajor, 12);

    let pool = ThreadPool::new(4);
    let mut c_cpu = Matrix::<f64>::zeros(m, n, Layout::RowMajor);
    par_gemm(
        &pool,
        CpuVariant::OpenMpC,
        &a,
        &b,
        &mut c_cpu,
        Schedule::StaticBlock,
    );

    let gpu = Gpu::new(GpuVariant::Cuda.device_class());
    let (c_gpu, stats) = gpu_gemm(&gpu, GpuVariant::Cuda, &a, &b, Dim3::d2(16, 16)).unwrap();

    assert!(c_cpu.max_abs_diff(&c_gpu) < 1e-12);
    assert_eq!(stats.flops, 2 * (m * n * k) as u64);
}

/// All four CPU variants, all six loop orders, and all seven GPU
/// variants agree on one random problem.
#[test]
fn seventeen_engines_one_answer() {
    let n = 40usize;
    let a_row = Matrix::<f64>::random(n, n, Layout::RowMajor, 21);
    let b_row = Matrix::<f64>::random(n, n, Layout::RowMajor, 22);
    let reference = gemm_reference_f64(&a_row, &b_row);
    let tol = 1e-11;

    for order in LoopOrder::ALL {
        let mut c = Matrix::<f64>::zeros(n, n, Layout::RowMajor);
        gemm_loop_order(order, &a_row, &b_row, &mut c);
        assert!(
            c.max_abs_diff(&reference) < tol,
            "loop order {}",
            order.name()
        );
    }
    for v in CpuVariant::ALL {
        let layout = v.layout();
        let a = a_row.to_layout(layout);
        let b = b_row.to_layout(layout);
        let mut c = Matrix::<f64>::zeros(n, n, layout);
        v.run_serial(&a, &b, &mut c);
        assert!(
            c.to_layout(Layout::RowMajor).max_abs_diff(&reference) < tol,
            "cpu variant {v}"
        );
    }
    for v in GpuVariant::ALL {
        let gpu = Gpu::new(v.device_class());
        let (c, _) = gpu_gemm(&gpu, v, &a_row, &b_row, Dim3::d2(8, 8)).unwrap();
        assert!(
            c.to_layout(Layout::RowMajor).max_abs_diff(&reference) < tol,
            "gpu variant {v}"
        );
    }
}

/// Precision ladder: error shrinks as precision grows, on both engines.
#[test]
fn precision_ladder_is_monotone() {
    fn gpu_err<T: Scalar>(seed: u64) -> f64 {
        let n = 96usize;
        let a = Matrix::<T>::random(n, n, Layout::RowMajor, seed);
        let b = Matrix::<T>::random(n, n, Layout::RowMajor, seed + 1);
        let reference = gemm_reference_f64(&a, &b);
        let gpu = Gpu::new(GpuVariant::Hip.device_class());
        let (c, _) = gpu_gemm(&gpu, GpuVariant::Hip, &a, &b, Dim3::d2(32, 32)).unwrap();
        let cast: Matrix<f64> = c.to_layout(Layout::RowMajor).cast();
        cast.max_abs_diff(&reference)
    }
    let e64 = gpu_err::<f64>(31);
    let e32 = gpu_err::<f32>(31);
    let e16 = gpu_err::<F16>(31);
    assert!(e64 < e32, "{e64} !< {e32}");
    assert!(e32 < e16, "{e32} !< {e16}");
    assert!(e16 < 1.0, "even half stays bounded for k=96");
}

/// AMD wavefronts (64) vs NVIDIA warps (32) change warp counts but not
/// results or element traffic.
#[test]
fn device_class_changes_warps_not_results() {
    let n = 64usize;
    let a = Matrix::<f32>::random(n, n, Layout::RowMajor, 41);
    let b = Matrix::<f32>::random(n, n, Layout::RowMajor, 42);
    let (c_nv, s_nv) = gpu_gemm(
        &Gpu::new(GpuVariant::Cuda.device_class()),
        GpuVariant::Cuda,
        &a,
        &b,
        Dim3::d2(32, 32),
    )
    .unwrap();
    let (c_amd, s_amd) = gpu_gemm(
        &Gpu::new(GpuVariant::Hip.device_class()),
        GpuVariant::Hip,
        &a,
        &b,
        Dim3::d2(32, 32),
    )
    .unwrap();
    assert_eq!(
        c_nv.max_abs_diff(&c_amd),
        0.0,
        "identical kernel, identical result"
    );
    assert_eq!(s_nv.loads, s_amd.loads);
    assert_eq!(
        s_nv.warps,
        2 * s_amd.warps,
        "64-wide wavefronts halve the warp count"
    );
}

/// The productivity metrics order the snippets plausibly: every model's
/// kernel is small, and each contains parallel annotations.
#[test]
fn productivity_metrics_on_paper_snippets() {
    for v in CpuVariant::ALL {
        let p = productivity(v.source_snippet());
        assert!(p.lines >= 8 && p.lines <= 16, "{v}: {} lines", p.lines);
        assert!(
            p.parallel_annotations >= 1,
            "{v} has no parallel annotation"
        );
    }
    // The paper's qualitative point: OpenMP needs a single pragma on a
    // serial loop; Kokkos restructures the whole kernel as a lambda.
    let openmp = productivity(CpuVariant::OpenMpC.source_snippet());
    let kokkos = productivity(CpuVariant::KokkosLambda.source_snippet());
    assert!(kokkos.parallel_annotations >= openmp.parallel_annotations);
}

/// Scheduling stats from the pool feed imbalance exactly once per index.
#[test]
fn pool_stats_consistent_with_gemm_shape() {
    let pool = ThreadPool::new(3);
    let (m, k, n) = (31usize, 16, 17);
    let a = Matrix::<f64>::random(m, k, Layout::RowMajor, 51);
    let b = Matrix::<f64>::random(k, n, Layout::RowMajor, 52);
    let mut c = Matrix::<f64>::zeros(m, n, Layout::RowMajor);
    let stats = par_gemm(
        &pool,
        CpuVariant::OpenMpC,
        &a,
        &b,
        &mut c,
        Schedule::Dynamic { chunk: 4 },
    );
    assert_eq!(stats.total_items(), m, "one work item per row");
    assert!(stats.imbalance() >= 1.0);
    assert!(perfport::gemm::verify_gemm(&a, &b, &c).is_ok());
}
