//! Golden-file tests for the rendered artifacts.
//!
//! The pipeline is deterministic end to end (seeded inputs, modelled
//! timings, seeded noise), so the exact rendered text of Table III and
//! the CSV blocks is a stable artifact worth pinning: any drift in the
//! models, the support matrix, or the formatting shows up as a diff
//! here instead of silently changing the "paper".
//!
//! To intentionally accept new output:
//!
//! ```text
//! PERFPORT_UPDATE_GOLDEN=1 cargo test --test golden_outputs
//! ```

use perfport::core::{efficiency_table, figure_specs, render_csv, render_table3, StudyConfig};
use perfport::machines::Precision;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PERFPORT_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with \
             PERFPORT_UPDATE_GOLDEN=1 cargo test --test golden_outputs",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from the pinned output; if intentional, regenerate with \
         PERFPORT_UPDATE_GOLDEN=1 cargo test --test golden_outputs"
    );
}

/// Pins the *default* table, which since the measured-vendor-baseline
/// change divides CPU rows by the committed tuned-kernel headroom
/// (`perfport-models::vendor`, measured via `host_gemm` into
/// `BENCH_gemm.json`) and carries a footnote naming the baseline. The
/// CPU efficiencies here are therefore deliberately *lower* than the
/// paper's printed Table III; the paper-facing cross-checks run against
/// `HostBaseline::NaiveModel` in `crates/core/src/analysis.rs` and the
/// anchor report.
#[test]
fn table3_matches_golden() {
    let cfg = StudyConfig::quick();
    let reports = vec![
        efficiency_table(Precision::Double, &cfg),
        efficiency_table(Precision::Single, &cfg),
    ];
    check_golden("table3_quick.txt", &render_table3(&reports));
}

#[test]
fn fig7a_csv_matches_golden() {
    let cfg = StudyConfig::quick();
    let spec = figure_specs()
        .into_iter()
        .find(|s| s.id == "fig7a")
        .expect("fig7a registered");
    check_golden("fig7a_quick.csv", &render_csv(&spec.run(&cfg)));
}

#[test]
fn fig4a_csv_matches_golden() {
    let cfg = StudyConfig::quick();
    let spec = figure_specs()
        .into_iter()
        .find(|s| s.id == "fig4a")
        .expect("fig4a registered");
    check_golden("fig4a_quick.csv", &render_csv(&spec.run(&cfg)));
}

/// The FP16 GPU panel exercises the unsupported-model gap rendering
/// (Numba's ones-filled workaround note, missing vendor column).
#[test]
fn fig7c_csv_matches_golden() {
    let cfg = StudyConfig::quick();
    let spec = figure_specs()
        .into_iter()
        .find(|s| s.id == "fig7c")
        .expect("fig7c registered");
    check_golden("fig7c_quick.csv", &render_csv(&spec.run(&cfg)));
}
