//! Extending the study to hardware the paper never measured: define a
//! hypothetical CPU and GPU, and ask where the hand-rolled GEMM lands on
//! their rooflines — the "what would this look like on our cluster?"
//! workflow a downstream user of this library actually has.
//!
//! ```bash
//! cargo run --release --example custom_machine
//! ```

use perfport::gpusim::DeviceClass;
use perfport::machines::{
    estimate_cpu_gemm, estimate_gpu_kernel, CpuExecution, CpuMachine, GemmShape, GpuExecution,
    GpuKernelProfile, GpuMachine, Precision, Roofline,
};

fn main() {
    // A Grace-like Arm CPU: more cores, much more bandwidth than Altra.
    let cpu = CpuMachine {
        name: "Hypothetical Arm HPC CPU",
        system: "custom",
        numa_domains: 1,
        cores_per_domain: 72,
        clock_ghz: 3.4,
        simd_bits: 256,
        fma_units: 4,
        native_fp16: true,
        mem_bw_per_domain_gbs: 500.0,
        remote_numa_penalty: 1.0,
        llc_mib: 114.0,
        llc_bw_gbs: 3000.0,
        fork_join_us: 8.0,
    };

    println!("== {} ==", cpu.name);
    for p in [Precision::Double, Precision::Single, Precision::Half] {
        let roof = Roofline {
            peak_gflops: cpu.peak_gflops(p),
            bw_gbs: cpu.total_bw_gbs(),
        };
        let exec = CpuExecution::vendor_baseline(&cpu);
        let est = estimate_cpu_gemm(&cpu, p, &GemmShape::square(8192), &exec);
        println!(
            "  {}: peak {:>8.0} GF/s, ridge AI {:>5.1}, naive GEMM {:>7.1} GF/s ({})",
            p.label(),
            roof.peak_gflops,
            roof.ridge_ai(),
            est.gflops,
            est.bound
        );
    }

    // An H100-like GPU.
    let gpu = GpuMachine {
        name: "Hypothetical next-gen GPU",
        system: "custom",
        class: DeviceClass::NvidiaLike,
        sms: 132,
        peak_fp64_gflops: 34_000.0,
        peak_fp32_gflops: 67_000.0,
        peak_fp16_gflops: 134_000.0,
        peak_tensor_fp16_gflops: 990_000.0,
        mem_bw_gbs: 3_350.0,
        clock_ghz: 1.98,
        l1_bytes_per_cycle_per_sm: 128.0,
        launch_latency_us: 6.0,
    };

    println!();
    println!("== {} ==", gpu.name);
    let n = 16384f64;
    for p in [Precision::Double, Precision::Single] {
        let bytes = p.bytes() as f64;
        let profile = GpuKernelProfile {
            flops: 2.0 * n * n * n,
            l1_bytes: (2.0 * n * n * n + n * n) * bytes,
            dram_bytes: n * n * (n / 32.0) * bytes * 2.0 + n * n * bytes,
        };
        let exec = GpuExecution::vendor_baseline(&gpu, ((n as u64) / 32).pow(2), 2);
        let est = estimate_gpu_kernel(&gpu, p, &profile, &exec);
        println!(
            "  {}: naive GEMM {:>8.1} GF/s ({}), {:.1}% of vector peak",
            p.label(),
            est.gflops,
            est.bound,
            est.gflops / gpu.peak_gflops(p) * 100.0
        );
    }

    println!();
    println!(
        "Even with 2-3x the raw specs, the naive kernel stays pinned to the \
         L1/LSU ceiling — the portability story of the paper is about generated \
         code quality, not peak flops."
    );
}
