//! A tour of the half-precision substrate: the numerics behind the
//! paper's FP16 experiments (Figs. 5c, 6c, 7c) and why "FP16" results
//! need care to interpret.
//!
//! ```bash
//! cargo run --release --example half_precision_tour
//! ```

use perfport::gemm::{gemm_reference_f64, gpu_gemm, gpu_gemm_mixed, GpuVariant, Layout, Matrix};
use perfport::gpusim::{Dim3, Gpu};
use perfport::half::F16;

fn main() {
    println!("== binary16 basics ==");
    println!("  max finite       : {}", F16::MAX);
    println!("  machine epsilon  : {}", F16::EPSILON);
    println!("  smallest normal  : {:e}", F16::MIN_POSITIVE.to_f32());
    println!(
        "  65504 + 32       : {} (saturates!)",
        F16::MAX + F16::from_f32(32.0)
    );
    println!(
        "  2048 + 1         : {} (integers above 2048 are not representable)",
        F16::from_f32(2048.0) + F16::ONE
    );

    println!();
    println!("== accumulation error: pure FP16 vs FP16-in / FP32-accumulate ==");
    println!("  (this is exactly the paper's Fig. 1c design choice)");
    let n = 256;
    let a = Matrix::<F16>::random(n, n, Layout::RowMajor, 1);
    let b = Matrix::<F16>::random(n, n, Layout::RowMajor, 2);
    let reference = gemm_reference_f64(&a, &b);

    let gpu = Gpu::new(GpuVariant::JuliaAmdGpu.device_class());
    let block = Dim3::d2(32, 32);
    let (pure, _) = gpu_gemm::<F16>(&gpu, GpuVariant::JuliaAmdGpu, &a, &b, block).unwrap();
    let (mixed, _) =
        gpu_gemm_mixed::<F16, f32>(&gpu, GpuVariant::JuliaAmdGpu, &a, &b, block).unwrap();

    let pure_err = to_f64(&pure).max_abs_diff(&reference);
    let mixed_err = to_f64(&mixed).max_abs_diff(&reference);
    println!("  k = {n} dot products over uniform [0,1) inputs:");
    println!("  pure FP16 accumulate : max abs error {pure_err:.3}");
    println!("  FP32 accumulate      : max abs error {mixed_err:.5}");
    println!(
        "  -> {}x more accurate with single-precision storage",
        (pure_err / mixed_err).round()
    );

    println!();
    println!("== the NumPy float16 RNG gap ==");
    println!(
        "  The paper had to fill Numba's FP16 matrices with ones. With C = A.B and\n\
         \u{20}  all-ones inputs, every element of C is exactly k — benchmark traffic is\n\
         \u{20}  real but cache behaviour and rounding are not representative:"
    );
    let ones_a = Matrix::<F16>::ones(64, 512, Layout::RowMajor);
    let ones_b = Matrix::<F16>::ones(512, 64, Layout::RowMajor);
    let (c_ones, _) =
        gpu_gemm::<F16>(&gpu, GpuVariant::JuliaAmdGpu, &ones_a, &ones_b, block).unwrap();
    println!(
        "  all-ones GEMM with k=512: C[0,0] = {} (exact, 512 fits in FP16's integer range)",
        c_ones[(0, 0)]
    );
    let ones_big_a = Matrix::<F16>::ones(32, 4096, Layout::RowMajor);
    let ones_big_b = Matrix::<F16>::ones(4096, 32, Layout::RowMajor);
    let (c_big, _) = gpu_gemm::<F16>(
        &gpu,
        GpuVariant::JuliaAmdGpu,
        &ones_big_a,
        &ones_big_b,
        block,
    )
    .unwrap();
    println!(
        "  all-ones GEMM with k=4096: C[0,0] = {} (rounding plateaus above 2048!)",
        c_big[(0, 0)]
    );
}

fn to_f64<T: perfport::gemm::Scalar>(m: &Matrix<T>) -> Matrix<f64> {
    m.to_layout(Layout::RowMajor).cast()
}
