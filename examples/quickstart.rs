//! Quickstart: run one experiment end to end.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Measures the hand-rolled GEMM for Julia's CUDA.jl on the modelled
//! A100, verifies the kernel functionally on the SIMT simulator, and
//! prints the throughput sweep next to the vendor CUDA curve.

use perfport::core::{run_experiment, Experiment};
use perfport::machines::Precision;
use perfport::models::{Arch, ProgModel};

fn main() {
    let sizes = vec![2048, 4096, 8192, 16384];

    let cuda = run_experiment(&Experiment::new(
        Arch::A100,
        ProgModel::Cuda,
        Precision::Double,
        sizes.clone(),
    ))
    .expect("vendor CUDA runs");

    let julia = run_experiment(&Experiment::new(
        Arch::A100,
        ProgModel::JuliaCudaJl,
        Precision::Double,
        sizes.clone(),
    ))
    .expect("CUDA.jl runs");

    println!(
        "Hand-rolled FP64 GEMM on {} ({})",
        Arch::A100,
        Arch::A100.system()
    );
    println!(
        "kernel verified against the f64 reference: max rel err {:.2e} (CUDA), {:.2e} (CUDA.jl)",
        cuda.verification_rel_err, julia.verification_rel_err
    );
    println!(
        "JIT warm-up excluded per the paper's protocol: {:.1}s for CUDA.jl",
        julia.warmup_excluded_s
    );
    println!();
    println!(
        "{:>8} {:>14} {:>16} {:>12}",
        "N", "CUDA GF/s", "CUDA.jl GF/s", "efficiency"
    );
    for &n in &sizes {
        let c = cuda.at(n).unwrap();
        let j = julia.at(n).unwrap();
        println!(
            "{:>8} {:>14.1} {:>16.1} {:>12.3}",
            n,
            c.gflops,
            j.gflops,
            j.gflops / c.gflops
        );
    }
    println!();
    println!(
        "The constant gap is the paper's Fig. 7a observation: CUDA.jl's generated \
         PTX unrolls the inner loop 2x where nvcc unrolls 4x."
    );
}
