//! The full portability study: regenerate Table III (both precisions),
//! rank the programming models, and contrast the paper's arithmetic Φ_M
//! against the Pennycook harmonic PP.
//!
//! ```bash
//! cargo run --release --example portability_study
//! ```

use perfport::core::{efficiency_table, render_table3, StudyConfig};
use perfport::machines::Precision;
use perfport::models::ModelFamily;

fn main() {
    let cfg = StudyConfig::default();
    let double = efficiency_table(Precision::Double, &cfg);
    let single = efficiency_table(Precision::Single, &cfg);

    println!("{}", render_table3(&[double.clone(), single.clone()]));

    println!("Ranking by Phi_M (double precision):");
    for (rank, (family, phi)) in double.matrix.ranking().iter().enumerate() {
        println!("  {}. {family:<14} Phi_M = {phi:.3}", rank + 1);
    }

    println!();
    println!("Arithmetic vs harmonic aggregation (double precision):");
    for family in ModelFamily::ALL {
        let phi = double.phi(family);
        let pp = double.pennycook(family);
        let verdict = if pp == 0.0 {
            "PP collapses to 0: the model misses a platform entirely"
        } else if phi - pp > 0.1 {
            "harmonic mean punishes the weakest platform"
        } else {
            "consistent across platforms"
        };
        println!(
            "  {:<14} Phi_M {phi:.3}  PP {pp:.3}   ({verdict})",
            family.label()
        );
    }

    println!();
    println!(
        "Paper's conclusion, reproduced: Julia scores highest, followed by Kokkos \
         (dragged down by its A100 configuration gap), with Python/Numba far behind \
         and disqualified from strict-PP by the deprecated AMD GPU backend."
    );
}
