//! Using the SIMT simulator as a kernel-debugging tool: write a kernel,
//! inspect its traffic counters, and catch a data race — the workflow a
//! `nvprof` + `compute-sanitizer` pair covers on real hardware.
//!
//! ```bash
//! cargo run --release --example gpu_kernel_debug
//! ```

use perfport::gpusim::{DeviceClass, Dim3, Gpu, LaunchConfig, LaunchError, LaunchOptions};

fn main() {
    let gpu = Gpu::new(DeviceClass::NvidiaLike);
    let n = 1024usize;
    let input: Vec<f32> = (0..n * 32).map(|i| i as f32).collect();
    let src = gpu.alloc_from_slice(&input);
    let dst = gpu.alloc_filled(n, 0.0f32);
    let cfg = LaunchConfig::cover1d(n as u32, 256);

    // A well-coalesced kernel: lane i reads element i.
    let good = gpu
        .launch(cfg, |t| {
            let i = t.global_x();
            if i < n {
                dst.write(t, i, src.read(t, i) * 2.0);
                t.tally_flops(1);
            }
        })
        .unwrap();

    // The same arithmetic with a stride-32 access pattern.
    let bad = gpu
        .launch(cfg, |t| {
            let i = t.global_x();
            if i < n {
                dst.write(t, i, src.read(t, i * 32) * 2.0);
                t.tally_flops(1);
            }
        })
        .unwrap();

    println!("coalescing comparison (identical arithmetic):");
    println!(
        "  unit stride : {} loads -> {} transactions ({:.0}% efficiency)",
        good.loads,
        good.load_transactions,
        good.coalescing_efficiency() * 100.0
    );
    println!(
        "  stride 32   : {} loads -> {} transactions ({:.0}% efficiency)",
        bad.loads,
        bad.load_transactions,
        bad.coalescing_efficiency() * 100.0
    );

    // Now a buggy kernel: every thread writes slot i % 64.
    let racy = gpu.launch_with(
        cfg,
        LaunchOptions {
            detect_races: true,
            ..Default::default()
        },
        |t| {
            let i = t.global_x();
            if i < n {
                dst.write(t, i % 64, 1.0);
            }
        },
    );
    match racy {
        Err(LaunchError::DataRace {
            addr,
            thread_a,
            thread_b,
        }) => {
            println!();
            println!("race detector:");
            println!(
                "  caught write-write race at device address {addr:#x} between \
                 threads {thread_a} and {thread_b}"
            );
        }
        other => panic!("expected a data race, got {other:?}"),
    }

    // Divergence: a warp-misaligned guard.
    let divergent = gpu
        .launch(LaunchConfig::cover1d(1000, 128), |t| {
            let i = t.global_x();
            if i < 1000 {
                dst.write(t, i % n, 0.0);
            }
        })
        .unwrap();
    println!();
    println!(
        "divergence: {} of {} active warps diverged ({:.0}% — the ragged tail)",
        divergent.divergent_warps,
        divergent.active_warps,
        divergent.divergence_rate() * 100.0
    );

    // Occupancy advice, as the CUDA occupancy calculator would give it.
    for block in [Dim3::d2(8, 8), Dim3::d2(16, 16), Dim3::d2(32, 32)] {
        let occ = perfport::gpusim::occupancy(gpu.class(), block.count() as u32, 0);
        println!(
            "occupancy with {}x{} blocks: {:.0}% ({} blocks/SM, limited by {:?})",
            block.x,
            block.y,
            occ.fraction * 100.0,
            occ.blocks_per_sm,
            occ.limiter
        );
    }
}
