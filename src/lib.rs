//! Umbrella crate re-exporting the whole `perfport` workspace.
//!
//! See the README and `DESIGN.md` for the architecture; the typical entry
//! points are [`core`] for running experiments and [`metrics`] for the
//! portability analysis.

pub use perfport_core as core;
pub use perfport_gemm as gemm;
pub use perfport_gpusim as gpusim;
pub use perfport_half as half;
pub use perfport_machines as machines;
pub use perfport_metrics as metrics;
pub use perfport_models as models;
pub use perfport_obs as obs;
pub use perfport_pool as pool;
pub use perfport_serve as serve;
pub use perfport_trace as trace;
