//! Hardware-counter observability for the perfport workspace.
//!
//! The benchmark story in the paper (Table III, Figs. 4–7) rests on
//! measured GFLOP/s; this crate attaches the *hardware evidence* behind
//! those rates — instructions-per-cycle, cache-miss traffic, branch
//! behaviour — read from `perf_event_open(2)` counter groups around pool
//! regions and kernel sweeps. Design rules, in the same spirit as
//! `perfport-trace`:
//!
//! - **Observation only.** Counters never feed back into timings or
//!   results; everything stays bit-identical with profiling on or off
//!   (asserted by the end-to-end suite).
//! - **Graceful degradation.** Containers, `perf_event_paranoid >= 3`,
//!   seccomp filters, and non-Linux hosts all land in the same place: a
//!   cached [`Availability::Unavailable`] with the OS's reason, and every
//!   instrumentation site stays a single relaxed atomic load. Timing-only
//!   output is unchanged.
//! - **One sink.** Measured deltas are emitted as `perfport-trace`
//!   counters (category `"hw"`), so the JSONL, Chrome, and text-summary
//!   exporters pick them up with no extra plumbing, and aggregated into
//!   process-wide [`Totals`] for the bench manifests.
//!
//! # Quickstart
//!
//! ```
//! // Ask for counters; fine either way — unavailable hosts keep timing.
//! let avail = perfport_obs::try_enable();
//! let before = perfport_obs::totals();
//! {
//!     let _scope = perfport_obs::thread_scope();
//!     // ... hot work on this thread ...
//! }
//! let delta = perfport_obs::totals().delta(&before);
//! if avail.is_available() {
//!     println!("IPC {:?}", delta.ipc());
//! }
//! perfport_obs::disable();
//! ```

mod perf;

pub use perf::RawSample;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable that forces [`probe`] to report counters as
/// unavailable (simulating `perf_event_paranoid=3` for tests and CI);
/// its value becomes the reason string.
pub const FORCE_UNAVAILABLE_ENV: &str = "PERFPORT_OBS_FORCE_UNAVAILABLE";

/// The hardware events one counter group measures, in group order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwCounter {
    /// CPU cycles (user space only).
    Cycles,
    /// Retired instructions.
    Instructions,
    /// L1 data-cache read misses.
    L1dMisses,
    /// Last-level-cache misses (DRAM traffic proxy).
    LlcMisses,
    /// Mispredicted branches.
    BranchMisses,
}

impl HwCounter {
    /// Number of events in a group.
    pub const COUNT: usize = 5;

    /// Every event, in the order counts are stored.
    pub const ALL: [HwCounter; HwCounter::COUNT] = [
        HwCounter::Cycles,
        HwCounter::Instructions,
        HwCounter::L1dMisses,
        HwCounter::LlcMisses,
        HwCounter::BranchMisses,
    ];

    /// Stable snake_case name used for trace counters and manifests.
    pub fn name(self) -> &'static str {
        match self {
            HwCounter::Cycles => "cycles",
            HwCounter::Instructions => "instructions",
            HwCounter::L1dMisses => "l1d_misses",
            HwCounter::LlcMisses => "llc_misses",
            HwCounter::BranchMisses => "branch_misses",
        }
    }

    /// Index into count arrays.
    pub fn idx(self) -> usize {
        self as usize
    }
}

/// Whether hardware counters can be opened on this host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Availability {
    /// A counter group opened and read successfully.
    Available,
    /// Counters cannot be used; the reason is surfaced verbatim in
    /// manifests (`counters: unavailable (...)`).
    Unavailable {
        /// Why opening failed (OS error, paranoid level, platform).
        reason: String,
    },
}

impl Availability {
    /// True when counters work.
    pub fn is_available(&self) -> bool {
        matches!(self, Availability::Available)
    }

    /// The manifest wording: `"available"` or `"unavailable (reason)"`.
    pub fn manifest_str(&self) -> String {
        match self {
            Availability::Available => "available".to_string(),
            Availability::Unavailable { reason } => format!("unavailable ({reason})"),
        }
    }
}

fn probe_uncached() -> Availability {
    if let Ok(reason) = std::env::var(FORCE_UNAVAILABLE_ENV) {
        let reason = if reason.is_empty() || reason == "1" {
            "forced off via PERFPORT_OBS_FORCE_UNAVAILABLE".to_string()
        } else {
            reason
        };
        return Availability::Unavailable { reason };
    }
    match perf::PerfGroup::open() {
        Ok(group) => match group.read_sample() {
            Ok(_) => Availability::Available,
            Err(e) => Availability::Unavailable {
                reason: format!("group read failed: {e}{}", paranoid_hint()),
            },
        },
        Err(e) => Availability::Unavailable {
            reason: format!("{e}{}", paranoid_hint()),
        },
    }
}

/// Appends the kernel's paranoid level to failure reasons when it is
/// readable — the most common cause on shared machines and containers.
fn paranoid_hint() -> String {
    match std::fs::read_to_string("/proc/sys/kernel/perf_event_paranoid") {
        Ok(s) => format!("; perf_event_paranoid={}", s.trim()),
        Err(_) => String::new(),
    }
}

/// Probes counter availability once per process (cached). The probe
/// actually opens and reads a group, so "available" means the whole
/// path works, not just that the syscall exists.
pub fn probe() -> &'static Availability {
    static PROBE: OnceLock<Availability> = OnceLock::new();
    PROBE.get_or_init(probe_uncached)
}

/// Profiling requested and counters available. One relaxed load; this is
/// the gate every instrumentation site checks first.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether profiling is currently on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Requests hardware profiling. Returns the cached availability; when
/// counters are unavailable this is a no-op and every downstream site
/// keeps its timing-only behaviour.
pub fn try_enable() -> &'static Availability {
    let avail = probe();
    if avail.is_available() {
        ENABLED.store(true, Ordering::Relaxed);
    }
    avail
}

/// Stops profiling. Open per-thread groups are kept (cheap, fd-only) but
/// no further scopes record.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// A counter sample with multiplexing metadata, plus derived rates.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Sample {
    /// The raw kernel-side snapshot.
    pub raw: RawSample,
}

impl Sample {
    /// Multiplexing-corrected count for one event: when the PMU had to
    /// time-share groups, raw counts are scaled by `enabled / running`
    /// (the standard `perf` estimate).
    pub fn scaled(&self, c: HwCounter) -> u64 {
        let raw = self.raw.counts[c.idx()];
        if self.raw.time_running_ns == 0 || self.raw.time_running_ns >= self.raw.time_enabled_ns {
            return raw;
        }
        let ratio = self.raw.time_enabled_ns as f64 / self.raw.time_running_ns as f64;
        (raw as f64 * ratio).round() as u64
    }

    /// Element-wise delta since `earlier` (saturating, in case the group
    /// was reset in between).
    pub fn delta(&self, earlier: &Sample) -> Sample {
        let mut out = RawSample {
            time_enabled_ns: self
                .raw
                .time_enabled_ns
                .saturating_sub(earlier.raw.time_enabled_ns),
            time_running_ns: self
                .raw
                .time_running_ns
                .saturating_sub(earlier.raw.time_running_ns),
            counts: [0; HwCounter::COUNT],
        };
        for i in 0..HwCounter::COUNT {
            out.counts[i] = self.raw.counts[i].saturating_sub(earlier.raw.counts[i]);
        }
        Sample { raw: out }
    }
}

/// Process-wide accumulated (multiplexing-corrected) counts, summed over
/// every recorded scope on every thread. This is what bench manifests
/// and the measured-roofline mode read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Totals {
    /// Scaled event counts, indexed by [`HwCounter`] discriminant.
    pub counts: [u64; HwCounter::COUNT],
    /// Number of scopes that contributed.
    pub scopes: u64,
}

impl Totals {
    /// Count for one event.
    pub fn get(&self, c: HwCounter) -> u64 {
        self.counts[c.idx()]
    }

    /// Element-wise difference since `earlier` — the usual way to
    /// attribute counts to one phase of a run.
    pub fn delta(&self, earlier: &Totals) -> Totals {
        let mut out = Totals {
            counts: [0; HwCounter::COUNT],
            scopes: self.scopes.saturating_sub(earlier.scopes),
        };
        for i in 0..HwCounter::COUNT {
            out.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }

    /// Instructions per cycle, if both counted.
    pub fn ipc(&self) -> Option<f64> {
        let cycles = self.get(HwCounter::Cycles);
        let instr = self.get(HwCounter::Instructions);
        (cycles > 0).then(|| instr as f64 / cycles as f64)
    }

    /// Misses per thousand instructions for `c`.
    pub fn per_kilo_instruction(&self, c: HwCounter) -> Option<f64> {
        let instr = self.get(HwCounter::Instructions);
        (instr > 0).then(|| self.get(c) as f64 * 1000.0 / instr as f64)
    }

    /// Estimated DRAM traffic in bytes: LLC misses × the (near-universal)
    /// 64-byte line. A lower bound — prefetches that hit LLC are free
    /// here — which is the conservative direction for measured
    /// arithmetic intensity.
    pub fn est_dram_bytes(&self) -> u64 {
        self.get(HwCounter::LlcMisses) * 64
    }
}

static TOTALS: [AtomicU64; HwCounter::COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];
static TOTAL_SCOPES: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the process-wide accumulated counts.
pub fn totals() -> Totals {
    let mut out = Totals {
        counts: [0; HwCounter::COUNT],
        scopes: TOTAL_SCOPES.load(Ordering::Relaxed),
    };
    for (slot, total) in out.counts.iter_mut().zip(&TOTALS) {
        *slot = total.load(Ordering::Relaxed);
    }
    out
}

/// Resets the process-wide totals to zero (bench phase boundaries).
pub fn reset_totals() {
    for t in &TOTALS {
        t.store(0, Ordering::Relaxed);
    }
    TOTAL_SCOPES.store(0, Ordering::Relaxed);
}

fn accumulate(delta: &Sample) {
    for (i, &c) in HwCounter::ALL.iter().enumerate() {
        TOTALS[i].fetch_add(delta.scaled(c), Ordering::Relaxed);
    }
    TOTAL_SCOPES.fetch_add(1, Ordering::Relaxed);
}

thread_local! {
    // One lazily-opened group per thread; `None` after a failed open so
    // a denied thread does not retry the syscall per region.
    static THREAD_GROUP: std::cell::RefCell<Option<Option<perf::PerfGroup>>> =
        const { std::cell::RefCell::new(None) };
}

fn with_thread_group<R>(f: impl FnOnce(&perf::PerfGroup) -> R) -> Option<R> {
    THREAD_GROUP.with(|slot| {
        let mut slot = slot.borrow_mut();
        let entry = slot.get_or_insert_with(|| perf::PerfGroup::open().ok());
        entry.as_ref().map(f)
    })
}

/// Measures the calling thread's hardware counters from creation to
/// drop. On drop the delta is fed to `perfport-trace` (category `"hw"`,
/// one multi-series counter event) and added to the process [`Totals`].
/// When profiling is disabled this is a no-op behind one atomic load.
#[must_use = "a scope measures until this guard drops"]
pub struct ThreadScope {
    start: Option<Sample>,
}

impl ThreadScope {
    /// Whether this scope is actually counting.
    pub fn is_recording(&self) -> bool {
        self.start.is_some()
    }
}

/// Opens a [`ThreadScope`] on the calling thread.
pub fn thread_scope() -> ThreadScope {
    if !enabled() {
        return ThreadScope { start: None };
    }
    let start = with_thread_group(|g| g.read_sample().ok())
        .flatten()
        .map(|raw| Sample { raw });
    ThreadScope { start }
}

impl Drop for ThreadScope {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let Some(Some(end)) = with_thread_group(|g| g.read_sample().ok()) else {
            return;
        };
        let delta = Sample { raw: end }.delta(&start);
        accumulate(&delta);
        if perfport_trace::enabled() {
            let values: Vec<(&str, f64)> = HwCounter::ALL
                .iter()
                .map(|&c| (c.name(), delta.scaled(c) as f64))
                .collect();
            perfport_trace::counter_set("hw", "counters", &values);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ENABLED and the totals are process-wide; serialize the tests that
    // touch them.
    static GLOBAL_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn sample(counts: [u64; HwCounter::COUNT], enabled: u64, running: u64) -> Sample {
        Sample {
            raw: RawSample {
                time_enabled_ns: enabled,
                time_running_ns: running,
                counts,
            },
        }
    }

    #[test]
    fn counter_names_are_stable() {
        let names: Vec<&str> = HwCounter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "cycles",
                "instructions",
                "l1d_misses",
                "llc_misses",
                "branch_misses"
            ]
        );
        for (i, c) in HwCounter::ALL.into_iter().enumerate() {
            assert_eq!(c.idx(), i);
        }
    }

    #[test]
    fn multiplex_scaling_applies_only_when_descheduled() {
        let full = sample([1000, 2000, 0, 0, 0], 100, 100);
        assert_eq!(full.scaled(HwCounter::Cycles), 1000);
        // Counted half the time: estimate doubles.
        let half = sample([1000, 2000, 0, 0, 0], 100, 50);
        assert_eq!(half.scaled(HwCounter::Cycles), 2000);
        assert_eq!(half.scaled(HwCounter::Instructions), 4000);
        // Zero running time: no extrapolation, raw counts stand.
        let none = sample([7, 0, 0, 0, 0], 100, 0);
        assert_eq!(none.scaled(HwCounter::Cycles), 7);
    }

    #[test]
    fn sample_delta_is_elementwise_and_saturating() {
        let a = sample([10, 20, 30, 40, 50], 1000, 1000);
        let b = sample([15, 22, 30, 41, 49], 1500, 1400);
        let d = b.delta(&a);
        assert_eq!(d.raw.counts, [5, 2, 0, 1, 0]);
        assert_eq!(d.raw.time_enabled_ns, 500);
        assert_eq!(d.raw.time_running_ns, 400);
    }

    #[test]
    fn totals_derived_rates() {
        let t = Totals {
            counts: [1000, 3000, 60, 15, 9],
            scopes: 2,
        };
        assert!((t.ipc().unwrap() - 3.0).abs() < 1e-12);
        assert!((t.per_kilo_instruction(HwCounter::LlcMisses).unwrap() - 5.0).abs() < 1e-12);
        assert!((t.per_kilo_instruction(HwCounter::L1dMisses).unwrap() - 20.0).abs() < 1e-12);
        assert_eq!(t.est_dram_bytes(), 15 * 64);
        let zero = Totals::default();
        assert_eq!(zero.ipc(), None);
        assert_eq!(zero.per_kilo_instruction(HwCounter::LlcMisses), None);
        let d = t.delta(&Totals {
            counts: [400, 1000, 10, 5, 4],
            scopes: 1,
        });
        assert_eq!(d.counts, [600, 2000, 50, 10, 5]);
        assert_eq!(d.scopes, 1);
    }

    #[test]
    fn forced_unavailability_reports_reason_and_keeps_sites_inert() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Simulates `perf_event_paranoid=3`: the probe must refuse and
        // every scope must be a recording-free no-op.
        std::env::set_var(FORCE_UNAVAILABLE_ENV, "perf_event_paranoid=3 (simulated)");
        let avail = probe_uncached();
        std::env::remove_var(FORCE_UNAVAILABLE_ENV);
        assert!(!avail.is_available());
        assert_eq!(
            avail.manifest_str(),
            "unavailable (perf_event_paranoid=3 (simulated))"
        );
        disable();
        let before = totals();
        let scope = thread_scope();
        assert!(!scope.is_recording());
        drop(scope);
        assert_eq!(totals(), before, "a disabled scope must record nothing");
    }

    #[test]
    fn scopes_accumulate_when_counters_work() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Whichever way the probe goes on this host, the invariants hold:
        // available -> scopes record and totals grow monotonically;
        // unavailable -> everything stays inert.
        let avail = try_enable();
        let before = totals();
        {
            let scope = thread_scope();
            assert_eq!(scope.is_recording(), avail.is_available());
            // Burn a few instructions so the delta is non-trivial.
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(std::hint::black_box(i));
            }
            std::hint::black_box(acc);
        }
        let after = totals();
        disable();
        if avail.is_available() {
            assert_eq!(after.scopes, before.scopes + 1);
            assert!(
                after.get(HwCounter::Instructions) > before.get(HwCounter::Instructions),
                "a busy loop must retire instructions"
            );
        } else {
            assert_eq!(after, before);
        }
    }

    #[test]
    fn manifest_wording() {
        assert_eq!(Availability::Available.manifest_str(), "available");
        assert!(Availability::Unavailable {
            reason: "x".to_string()
        }
        .manifest_str()
        .starts_with("unavailable"));
    }
}
