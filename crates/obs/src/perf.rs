//! Raw `perf_event_open(2)` bindings: a counter *group* on the calling
//! thread, read atomically with `PERF_FORMAT_GROUP`.
//!
//! No external crate: the workspace builds hermetically, so the syscall,
//! `ioctl`, `read`, and `close` are declared directly against the C
//! runtime that `std` already links. Everything here is gated to Linux;
//! other platforms get the permanent-failure stub at the bottom, so the
//! crate's public surface is identical everywhere.

use crate::HwCounter;

/// One atomically-read snapshot of a counter group.
///
/// `time_enabled_ns`/`time_running_ns` come from the kernel's
/// multiplexing accounting: when more groups are scheduled than the PMU
/// has slots, `running < enabled` and raw counts must be scaled by
/// `enabled / running` to estimate the true totals (the standard `perf`
/// correction; [`crate::Sample::scaled`] applies it).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RawSample {
    /// Wall time the group was enabled, ns.
    pub time_enabled_ns: u64,
    /// Time the group was actually counting on the PMU, ns.
    pub time_running_ns: u64,
    /// Raw counts, indexed by [`HwCounter`] discriminant.
    pub counts: [u64; HwCounter::COUNT],
}

#[cfg(target_os = "linux")]
pub use linux::PerfGroup;
#[cfg(not(target_os = "linux"))]
pub use stub::PerfGroup;

#[cfg(target_os = "linux")]
mod linux {
    use super::RawSample;
    use crate::HwCounter;
    use std::ffi::{c_int, c_long, c_ulong, c_void};

    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
        fn ioctl(fd: c_int, request: c_ulong, ...) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    #[cfg(target_arch = "x86_64")]
    const SYS_PERF_EVENT_OPEN: c_long = 298;
    #[cfg(target_arch = "aarch64")]
    const SYS_PERF_EVENT_OPEN: c_long = 241;
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    const SYS_PERF_EVENT_OPEN: c_long = -1;

    // perf_event_attr.type
    const PERF_TYPE_HARDWARE: u32 = 0;
    const PERF_TYPE_HW_CACHE: u32 = 3;
    // PERF_TYPE_HARDWARE configs
    const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
    const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
    const PERF_COUNT_HW_CACHE_MISSES: u64 = 3; // last-level cache
    const PERF_COUNT_HW_BRANCH_MISSES: u64 = 5;
    // PERF_TYPE_HW_CACHE config: cache | (op << 8) | (result << 16),
    // here L1D (0) | READ (0) | MISS (1).
    const L1D_READ_MISS: u64 = 1 << 16;

    // read_format bits
    const PERF_FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
    const PERF_FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;
    const PERF_FORMAT_GROUP: u64 = 1 << 3;

    // attr flag bits (the packed bitfield word)
    const ATTR_DISABLED: u64 = 1 << 0;
    const ATTR_EXCLUDE_KERNEL: u64 = 1 << 5;
    const ATTR_EXCLUDE_HV: u64 = 1 << 6;

    const PERF_FLAG_FD_CLOEXEC: c_ulong = 8;

    const PERF_EVENT_IOC_ENABLE: c_ulong = 0x2400;
    const PERF_EVENT_IOC_RESET: c_ulong = 0x2403;
    const PERF_IOC_FLAG_GROUP: c_ulong = 1;

    /// `struct perf_event_attr` through `PERF_ATTR_SIZE_VER6` (120
    /// bytes). The kernel accepts any size ≥ VER0 whose trailing bytes it
    /// does not know are zero, so pinning VER6 works on every kernel this
    /// code can run on.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        config1: u64,
        config2: u64,
        branch_sample_type: u64,
        sample_regs_user: u64,
        sample_stack_user: u32,
        clockid: i32,
        sample_regs_intr: u64,
        aux_watermark: u32,
        sample_max_stack: u16,
        reserved_2: u16,
        aux_sample_size: u32,
        reserved_3: u32,
    }

    impl PerfEventAttr {
        fn zeroed() -> Self {
            // SAFETY: all-zero is a valid bit pattern for this plain-data
            // struct (and the state the kernel expects unused fields in).
            unsafe { std::mem::zeroed() }
        }
    }

    fn event_config(c: HwCounter) -> (u32, u64) {
        match c {
            HwCounter::Cycles => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES),
            HwCounter::Instructions => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS),
            HwCounter::L1dMisses => (PERF_TYPE_HW_CACHE, L1D_READ_MISS),
            HwCounter::LlcMisses => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES),
            HwCounter::BranchMisses => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES),
        }
    }

    /// An open group of the five [`HwCounter`] events bound to the thread
    /// that created it. Counting starts at [`PerfGroup::open`]; reads are
    /// atomic across the group (one `read(2)` of the leader).
    pub struct PerfGroup {
        fds: [c_int; HwCounter::COUNT],
    }

    impl PerfGroup {
        /// Opens and enables the group on the calling thread, any CPU.
        /// Fails with the OS error text when the kernel refuses
        /// (`perf_event_paranoid`, seccomp, missing PMU, …).
        pub fn open() -> Result<PerfGroup, String> {
            if SYS_PERF_EVENT_OPEN < 0 {
                return Err(format!(
                    "perf_event_open syscall number unknown on {}",
                    std::env::consts::ARCH
                ));
            }
            let mut fds = [-1 as c_int; HwCounter::COUNT];
            for (i, &counter) in HwCounter::ALL.iter().enumerate() {
                let (type_, config) = event_config(counter);
                let mut attr = PerfEventAttr::zeroed();
                attr.type_ = type_;
                attr.size = std::mem::size_of::<PerfEventAttr>() as u32;
                attr.config = config;
                // Only the leader starts disabled; members follow it.
                attr.flags =
                    ATTR_EXCLUDE_KERNEL | ATTR_EXCLUDE_HV | if i == 0 { ATTR_DISABLED } else { 0 };
                if i == 0 {
                    attr.read_format = PERF_FORMAT_GROUP
                        | PERF_FORMAT_TOTAL_TIME_ENABLED
                        | PERF_FORMAT_TOTAL_TIME_RUNNING;
                }
                let group_fd = if i == 0 { -1 } else { fds[0] };
                // SAFETY: attr is a valid, fully-initialised attr struct
                // that outlives the call; the remaining args are scalars.
                let fd = unsafe {
                    syscall(
                        SYS_PERF_EVENT_OPEN,
                        &attr as *const PerfEventAttr,
                        0 as c_int,  // pid: calling thread
                        -1 as c_int, // cpu: any
                        group_fd,
                        PERF_FLAG_FD_CLOEXEC,
                    )
                };
                if fd < 0 {
                    let err = std::io::Error::last_os_error();
                    let group = PerfGroup { fds };
                    drop(group); // close what was opened so far
                    return Err(format!("{counter:?} ({type_}/{config:#x}): {err}"));
                }
                fds[i] = fd as c_int;
            }
            let group = PerfGroup { fds };
            // SAFETY: fds[0] is an open perf fd owned by `group`.
            unsafe {
                ioctl(group.fds[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
                if ioctl(group.fds[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0 {
                    return Err(format!(
                        "PERF_EVENT_IOC_ENABLE: {}",
                        std::io::Error::last_os_error()
                    ));
                }
            }
            Ok(group)
        }

        /// Reads the whole group in one syscall.
        pub fn read_sample(&self) -> Result<RawSample, String> {
            // Layout with GROUP|TOTAL_TIME_ENABLED|TOTAL_TIME_RUNNING:
            // nr, time_enabled, time_running, value[nr].
            let mut buf = [0u64; 3 + HwCounter::COUNT];
            let want = std::mem::size_of_val(&buf);
            // SAFETY: buf is `want` writable bytes; fd is open.
            let got = unsafe { read(self.fds[0], buf.as_mut_ptr() as *mut c_void, want) };
            if got < 0 {
                return Err(format!("read: {}", std::io::Error::last_os_error()));
            }
            let nr = buf[0] as usize;
            if nr != HwCounter::COUNT || (got as usize) < want {
                return Err(format!("short group read: nr={nr}, {got} bytes"));
            }
            let mut counts = [0u64; HwCounter::COUNT];
            counts.copy_from_slice(&buf[3..3 + HwCounter::COUNT]);
            Ok(RawSample {
                time_enabled_ns: buf[1],
                time_running_ns: buf[2],
                counts,
            })
        }
    }

    impl Drop for PerfGroup {
        fn drop(&mut self) {
            for &fd in self.fds.iter().rev() {
                if fd >= 0 {
                    // SAFETY: fd was returned by perf_event_open and is
                    // closed exactly once (members before the leader).
                    unsafe {
                        close(fd);
                    }
                }
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod stub {
    use super::RawSample;

    /// Non-Linux stand-in: opening always fails, so the crate degrades
    /// to timing-only exactly as it does under `perf_event_paranoid`.
    pub struct PerfGroup {
        _private: (),
    }

    impl PerfGroup {
        pub fn open() -> Result<PerfGroup, String> {
            Err(format!(
                "perf_event_open is Linux-only (this is {})",
                std::env::consts::OS
            ))
        }

        pub fn read_sample(&self) -> Result<RawSample, String> {
            Err("no counters on this platform".to_string())
        }
    }
}
