//! The platform/precision support matrix — the paper's "portability"
//! dimension in the strict sense of *does it run at all*.

use crate::arch::Arch;
use crate::progmodel::ProgModel;
use perfport_machines::Precision;
use std::fmt;

/// Whether a (model, architecture, precision) combination runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// Runs as configured in Tables I–II.
    Supported,
    /// Runs with a documented workaround.
    Partial(&'static str),
    /// Does not run; the reason the paper gives.
    Unsupported(&'static str),
}

impl Support {
    /// `true` unless [`Support::Unsupported`].
    pub fn runs(&self) -> bool {
        !matches!(self, Support::Unsupported(_))
    }
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Support::Supported => write!(f, "supported"),
            Support::Partial(why) => write!(f, "partial ({why})"),
            Support::Unsupported(why) => write!(f, "unsupported ({why})"),
        }
    }
}

/// Looks up the support status of a combination, encoding every gap the
/// paper reports.
pub fn support(model: ProgModel, arch: Arch, precision: Precision) -> Support {
    // Wrong device family entirely.
    let wrong_family = match model {
        ProgModel::Cuda | ProgModel::KokkosCuda | ProgModel::JuliaCudaJl => arch != Arch::A100,
        ProgModel::Hip | ProgModel::KokkosHip | ProgModel::JuliaAmdGpu => arch != Arch::Mi250x,
        ProgModel::NumbaCuda => !arch.is_gpu(),
        _ => arch.is_gpu(),
    };
    if wrong_family {
        return Support::Unsupported("model does not target this architecture");
    }

    // Numba's AMD GPU backend is deprecated (paper §II, footnote 3).
    if model == ProgModel::NumbaCuda && arch == Arch::Mi250x {
        return Support::Unsupported("Numba deprecated AMD GPU (ROCm) support");
    }

    if precision == Precision::Half {
        return half_support(model, arch);
    }
    Support::Supported
}

fn half_support(model: ProgModel, arch: Arch) -> Support {
    match model {
        // "Other programming models do not provide seamless half-precision
        // support" (paper §IV.B).
        ProgModel::COpenMp
        | ProgModel::KokkosOpenMp
        | ProgModel::KokkosCuda
        | ProgModel::KokkosHip
        | ProgModel::Cuda
        | ProgModel::Hip => {
            Support::Unsupported("no seamless FP16 support in the study's configuration")
        }
        // Julia runs FP16 everywhere; on the AMD CPU it is painfully slow
        // (no native half SIMD), which the paper mentions but does not
        // plot.
        ProgModel::JuliaThreads => match arch {
            Arch::Epyc7A53 => Support::Partial(
                "runs but very low performance (no native FP16 on Zen 3); not plotted in the paper",
            ),
            _ => Support::Supported,
        },
        ProgModel::JuliaCudaJl | ProgModel::JuliaAmdGpu => Support::Supported,
        // numpy cannot generate float16 randoms: inputs are matrices of
        // ones (paper §IV.B).
        ProgModel::NumbaCuda | ProgModel::NumbaParallel => {
            Support::Partial("no float16 random generation in NumPy; inputs filled with ones")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numba_amd_gpu_is_deprecated() {
        let s = support(ProgModel::NumbaCuda, Arch::Mi250x, Precision::Double);
        assert!(!s.runs());
        assert!(s.to_string().contains("deprecated"));
    }

    #[test]
    fn cuda_only_on_a100_hip_only_on_mi250x() {
        assert!(support(ProgModel::Cuda, Arch::A100, Precision::Double).runs());
        assert!(!support(ProgModel::Cuda, Arch::Mi250x, Precision::Double).runs());
        assert!(support(ProgModel::Hip, Arch::Mi250x, Precision::Single).runs());
        assert!(!support(ProgModel::Hip, Arch::A100, Precision::Single).runs());
    }

    #[test]
    fn cpu_models_do_not_run_on_gpus_and_vice_versa() {
        assert!(!support(ProgModel::COpenMp, Arch::A100, Precision::Double).runs());
        assert!(!support(ProgModel::JuliaThreads, Arch::Mi250x, Precision::Double).runs());
        assert!(!support(ProgModel::KokkosCuda, Arch::Epyc7A53, Precision::Double).runs());
    }

    #[test]
    fn half_precision_matrix_matches_the_paper() {
        // Julia: seamless on GPUs and on Arm.
        assert_eq!(
            support(ProgModel::JuliaCudaJl, Arch::A100, Precision::Half),
            Support::Supported
        );
        assert_eq!(
            support(ProgModel::JuliaAmdGpu, Arch::Mi250x, Precision::Half),
            Support::Supported
        );
        assert_eq!(
            support(ProgModel::JuliaThreads, Arch::AmpereAltra, Precision::Half),
            Support::Supported
        );
        // Julia on the AMD CPU: runs, too slow to report.
        assert!(matches!(
            support(ProgModel::JuliaThreads, Arch::Epyc7A53, Precision::Half),
            Support::Partial(_)
        ));
        // Numba: the ones-filled workaround.
        assert!(matches!(
            support(ProgModel::NumbaCuda, Arch::A100, Precision::Half),
            Support::Partial(_)
        ));
        // Everything else: no.
        assert!(!support(ProgModel::Cuda, Arch::A100, Precision::Half).runs());
        assert!(!support(ProgModel::KokkosHip, Arch::Mi250x, Precision::Half).runs());
        assert!(!support(ProgModel::COpenMp, Arch::Epyc7A53, Precision::Half).runs());
    }

    #[test]
    fn double_and_single_run_everywhere_supported() {
        for arch in Arch::ALL {
            for model in ProgModel::candidates(arch) {
                for p in [Precision::Double, Precision::Single] {
                    let s = support(model, arch, p);
                    if model == ProgModel::NumbaCuda && arch == Arch::Mi250x {
                        assert!(!s.runs());
                    } else {
                        assert!(s.runs(), "{model} on {arch} {p}: {s}");
                    }
                }
            }
        }
    }
}
