//! Code-generation efficiency calibration.
//!
//! Everything mechanistic about a programming model lives in the profiles
//! and timing models (pinning, NUMA locality, schedules, launch and JIT
//! overheads, occupancy, divergence). What remains is the quality of the
//! *generated inner loop* relative to the vendor toolchain — unroll
//! depth, vectorisation, bounds-check elimination, register allocation.
//! Reproducing that from first principles would require the actual
//! compilers; instead each residual is **calibrated against the paper's
//! own Table III measurements** and carries its provenance. This is the
//! honest substitution for a measurement study: mechanisms are modelled,
//! measured residuals are data.
//!
//! FP16 GPU entries are expressed relative to the *single-precision*
//! ceilings because the paper's FP16 kernels convert to FP32 for the
//! multiply-accumulate (Fig. 1c); they are set so the model reproduces
//! the paper's observation that FP16 shows *no gain* over FP32 despite
//! halved input traffic.

use crate::arch::Arch;
use crate::progmodel::ProgModel;
use perfport_machines::Precision;

/// A calibrated value with its provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Efficiency relative to the vendor toolchain on the same ceilings.
    pub value: f64,
    /// Where the number comes from.
    pub provenance: &'static str,
}

const VENDOR: Calibration = Calibration {
    value: 1.0,
    provenance: "vendor reference (Eq. 2 denominator)",
};

/// Residual code-generation efficiency of `model` on `arch` at
/// `precision`.
///
/// Combinations the support matrix rules out return a nominal 1.0 — the
/// runner never times them.
pub fn codegen_efficiency(model: ProgModel, arch: Arch, precision: Precision) -> Calibration {
    use Precision::*;
    use ProgModel::*;

    let c = |value, provenance| Calibration { value, provenance };

    match (model, arch, precision) {
        (COpenMp | Cuda | Hip, _, _) => VENDOR,

        // --- Kokkos ---
        (KokkosOpenMp, Arch::Epyc7A53, Double) => c(
            0.994,
            "Table III e_{Epyc 7A53}: Kokkos/OpenMP matches AMDClang within noise",
        ),
        (KokkosOpenMp, Arch::Epyc7A53, Single) => c(
            1.014,
            "Table III: Kokkos slightly above the reference on Zen 3 FP32 (template \
             instantiation happens to vectorise the dot-product form well)",
        ),
        (KokkosOpenMp, Arch::AmpereAltra, Double) => c(
            0.854,
            "Table III / Fig. 5a: Kokkos experiences a slowdown on Arm with ArmClang",
        ),
        (KokkosOpenMp, Arch::AmpereAltra, Single) => {
            c(0.836, "Table III / Fig. 5b: Arm FP32 slowdown persists")
        }
        (KokkosCuda, Arch::A100, Double) => c(
            0.260,
            "Table III / Fig. 7a: Kokkos-CUDA consistently underperforms; the paper \
             verified GPU activity with nvprof and attributes the gap to configuration \
             (block/occupancy) chosen by the backend",
        ),
        (KokkosCuda, Arch::A100, Single) => {
            c(0.208, "Table III / Fig. 7b: same configuration gap at FP32")
        }
        (KokkosHip, Arch::Mi250x, Double) => c(
            0.842,
            "Table III / Fig. 6a: competitive but constant overhead vs. HIP",
        ),
        (KokkosHip, Arch::Mi250x, Single) => c(
            0.677,
            "Table III / Fig. 6b: consistent FP32 decrease the paper flags for investigation",
        ),

        // --- Julia ---
        (JuliaThreads, Arch::Epyc7A53, Double) => c(
            0.912,
            "Table III / Fig. 4a: Julia threads close to vendor OpenMP on Zen 3",
        ),
        (JuliaThreads, Arch::Epyc7A53, Single) => c(0.976, "Table III / Fig. 4b"),
        (JuliaThreads, Arch::AmpereAltra, Double) => c(
            0.907,
            "Table III / Fig. 5a: almost on par with ArmClang OpenMP",
        ),
        (JuliaThreads, Arch::AmpereAltra, Single) => c(0.900, "Table III / Fig. 5b"),
        (JuliaThreads, _, Half) => c(
            0.90,
            "Fig. 5c: Julia FP16 on Arm 'worked seamlessly and provided the expected \
             levels of performance'; on Zen 3 the machine model's missing native FP16 \
             already produces the paper's 'very low performance'",
        ),
        (JuliaCudaJl, Arch::A100, Double) => c(
            0.867,
            "Table III / Fig. 7a: constant overhead vs. CUDA; PTX shows 2× unroll where \
             nvcc emits 4×",
        ),
        (JuliaCudaJl, Arch::A100, Single) => c(
            0.600,
            "Table III / Fig. 7b: the FP32 gap the paper calls out for deeper \
             investigation of the generated PTX",
        ),
        (JuliaCudaJl, Arch::A100, Half) => c(
            0.30,
            "Fig. 7c: FP16 inputs show no gain over FP32 (conversion-bound); calibrated \
             to half the FP32 residual so the modelled curve overlaps the FP32 one",
        ),
        (JuliaAmdGpu, Arch::Mi250x, Double) => c(
            0.903,
            "Table III / Fig. 6a: competitive with HIP, constant overhead",
        ),
        (JuliaAmdGpu, Arch::Mi250x, Single) => c(
            1.050,
            "Table III / Fig. 6b: Julia slightly *faster* than HIP at FP32 (the paper \
             suggests system variability; differences shrink at large sizes)",
        ),
        (JuliaAmdGpu, Arch::Mi250x, Half) => c(
            0.525,
            "Fig. 6c: no noticeable improvement over FP32; half the FP32 residual",
        ),

        // --- Numba ---
        (NumbaParallel, Arch::Epyc7A53, Double) => c(
            0.936,
            "Table III e=0.550 after the NUMA-locality mechanism (unpinned on 4 domains \
             ≈ 0.588×): residual 0.550/0.588",
        ),
        (NumbaParallel, Arch::Epyc7A53, Single) => c(
            1.115,
            "Table III e=0.655 after NUMA locality: fastmath vectorises the FP32 loop \
             well; the deficit is placement, not codegen",
        ),
        (NumbaParallel, Arch::AmpereAltra, Double) => c(
            0.713,
            "Table III: single NUMA domain, so the whole gap is LLVM-via-Numba codegen",
        ),
        (NumbaParallel, Arch::AmpereAltra, Single) => c(
            0.400,
            "Table III: the FP32 Arm gap the paper attributes to missing thread affinity \
             and Numba's lagging Arm support",
        ),
        (NumbaParallel, _, Half) => c(
            0.40,
            "not reported in the paper (no float16 RNG); assumed at the FP32 residual",
        ),
        (NumbaCuda, Arch::A100, Double) => c(
            0.130,
            "Table III / Fig. 7a: Numba-CUDA consistently underperforms (Python \
             dispatch + conservative PTX); GPU activity verified with nvprof",
        ),
        (NumbaCuda, Arch::A100, Single) => c(0.095, "Table III / Fig. 7b"),
        (NumbaCuda, Arch::A100, Half) => c(
            0.048,
            "Fig. 7c: no gain over FP32 (ones-filled inputs, conversion-bound); half the \
             FP32 residual",
        ),

        // Combinations the support matrix excludes.
        _ => VENDOR,
    }
}

/// Size-dependent penalty multiplier (1.0 = none). Captures the paper's
/// "repeatable slowdown at the largest size" for Kokkos/HIP FP64
/// (Fig. 6a).
pub fn size_penalty(model: ProgModel, arch: Arch, precision: Precision, n: usize) -> f64 {
    match (model, arch, precision) {
        (ProgModel::KokkosHip, Arch::Mi250x, Precision::Double) if n >= 19_456 => 0.72,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_models_are_unity() {
        for arch in Arch::ALL {
            for p in Precision::ALL {
                assert_eq!(codegen_efficiency(ProgModel::COpenMp, arch, p).value, 1.0);
                assert_eq!(codegen_efficiency(ProgModel::Cuda, arch, p).value, 1.0);
                assert_eq!(codegen_efficiency(ProgModel::Hip, arch, p).value, 1.0);
            }
        }
    }

    #[test]
    fn calibrated_values_match_table_iii_anchors() {
        assert_eq!(
            codegen_efficiency(ProgModel::KokkosCuda, Arch::A100, Precision::Double).value,
            0.260
        );
        assert_eq!(
            codegen_efficiency(ProgModel::JuliaCudaJl, Arch::A100, Precision::Single).value,
            0.600
        );
        assert_eq!(
            codegen_efficiency(ProgModel::JuliaAmdGpu, Arch::Mi250x, Precision::Single).value,
            1.050
        );
        assert_eq!(
            codegen_efficiency(ProgModel::NumbaCuda, Arch::A100, Precision::Double).value,
            0.130
        );
    }

    #[test]
    fn every_entry_has_provenance_and_sane_range() {
        for model in ProgModel::ALL {
            for arch in Arch::ALL {
                for p in Precision::ALL {
                    let c = codegen_efficiency(model, arch, p);
                    assert!(c.value > 0.0 && c.value <= 1.5, "{model} {arch} {p}");
                    assert!(!c.provenance.is_empty());
                }
            }
        }
    }

    #[test]
    fn julia_beats_hip_only_at_fp32() {
        let d = codegen_efficiency(ProgModel::JuliaAmdGpu, Arch::Mi250x, Precision::Double);
        let s = codegen_efficiency(ProgModel::JuliaAmdGpu, Arch::Mi250x, Precision::Single);
        assert!(d.value < 1.0);
        assert!(s.value > 1.0);
    }

    #[test]
    fn kokkos_hip_large_size_dip() {
        assert_eq!(
            size_penalty(
                ProgModel::KokkosHip,
                Arch::Mi250x,
                Precision::Double,
                20_480
            ),
            0.72
        );
        assert_eq!(
            size_penalty(
                ProgModel::KokkosHip,
                Arch::Mi250x,
                Precision::Double,
                16_384
            ),
            1.0
        );
        assert_eq!(
            size_penalty(
                ProgModel::KokkosHip,
                Arch::Mi250x,
                Precision::Single,
                20_480
            ),
            1.0
        );
        assert_eq!(
            size_penalty(ProgModel::Hip, Arch::Mi250x, Precision::Double, 20_480),
            1.0
        );
    }
}
