//! The software stacks of Tables I and II: compiler/runtime versions and
//! flags, as configuration data.
//!
//! The paper's reproducibility appendix pins every stack to an exact
//! version; keeping them here lets `tables12` regenerate the
//! configuration tables and gives the study registry a provenance
//! record.

use crate::arch::Arch;
use crate::progmodel::ProgModel;

/// One toolchain cell of Table I/II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Toolchain {
    /// Compiler or runtime name and version, e.g. `"AMDClang 14"`.
    pub compiler: &'static str,
    /// Language/runtime version where distinct from the compiler, e.g.
    /// `"Julia v1.8.0-rc1"`.
    pub runtime: &'static str,
    /// The flags of Tables I–II.
    pub flags: &'static str,
    /// Environment variables controlling the run.
    pub env: &'static str,
}

/// The toolchain the paper used for `model` on `arch` (Tables I–II).
/// Combinations outside the study return `None`.
pub fn toolchain(model: ProgModel, arch: Arch) -> Option<Toolchain> {
    use Arch::*;
    use ProgModel::*;
    let t = |compiler, runtime, flags, env| {
        Some(Toolchain {
            compiler,
            runtime,
            flags,
            env,
        })
    };
    match (model, arch) {
        (COpenMp, AmpereAltra) => t(
            "ArmClang 22",
            "C11",
            "-O3 -fopenmp",
            "OMP_NUM_THREADS=80 OMP_PROC_BIND=true OMP_PLACES=threads",
        ),
        (COpenMp, Epyc7A53) => t(
            "AMDClang 14",
            "C11",
            "-O3 -fopenmp -march=native",
            "OMP_NUM_THREADS=64 OMP_PROC_BIND=true OMP_PLACES=threads",
        ),
        (KokkosOpenMp, AmpereAltra) => t(
            "ArmClang++ 22",
            "Kokkos v3.6.01",
            "-O3 -fopenmp (KOKKOS_DEVICES=OpenMP, KOKKOS_ARCH=Armv8-TX2)",
            "OMP_NUM_THREADS=80",
        ),
        (KokkosOpenMp, Epyc7A53) => t(
            "AMDClang++ 14",
            "Kokkos v3.6.01",
            "-O3 -fopenmp -march=native (KOKKOS_DEVICES=OpenMP, KOKKOS_ARCH=Zen3)",
            "OMP_NUM_THREADS=64",
        ),
        (JuliaThreads, AmpereAltra) => t(
            "Julia (LLVM)",
            "Julia v1.7.2",
            "-O3 -t 80",
            "JULIA_EXCLUSIVE=1",
        ),
        (JuliaThreads, Epyc7A53) => t(
            "Julia (LLVM)",
            "Julia v1.8.0-rc1",
            "-O3 -t 64",
            "JULIA_EXCLUSIVE=1",
        ),
        (NumbaParallel, AmpereAltra | Epyc7A53) => t(
            "Numba (LLVM)",
            "Python v3.9.9 / Numba v0.55.1",
            "@njit(parallel=True, nogil=True, fastmath=True)",
            "NUMBA_NUM_THREADS=<cores> NUMBA_OPT=3 (no pinning API)",
        ),
        (Cuda, A100) => t("nvcc v11.5.1", "CUDA C", "-arch=sm_80", ""),
        (Hip, Mi250x) => t("hipcc v14.0.0", "HIP C", "-amdgpu-target=gfx908", ""),
        (KokkosCuda, A100) => t(
            "nvcc v11.5.1",
            "Kokkos v3.6.01",
            "-expt-extended-lambda -Xcudafe -arch=sm_80 (KOKKOS_DEVICES=Cuda, KOKKOS_ARCH=Ampere80)",
            "",
        ),
        (KokkosHip, Mi250x) => t(
            "hipcc v14.0.0",
            "Kokkos v3.6.01",
            "-amdgpu-target=gfx908 (KOKKOS_DEVICES=Hip, KOKKOS_ARCH=Vega908)",
            "",
        ),
        (JuliaCudaJl, A100) => t(
            "Julia (LLVM/PTX)",
            "Julia v1.7.2 + CUDA.jl",
            "-O3",
            "JULIA_CUDA_USE_BINARYBUILDER=false",
        ),
        (JuliaAmdGpu, Mi250x) => t(
            "Julia (LLVM/AMDGPU)",
            "Julia v1.8.0-rc1 + AMDGPU.jl v0.4.1",
            "-O3",
            "",
        ),
        (NumbaCuda, A100) => t(
            "Numba (NVVM)",
            "Python v3.9.9 / Numba v0.55.1",
            "@cuda.jit",
            "",
        ),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::support::{support, Support};
    use perfport_machines::Precision;

    #[test]
    fn every_runnable_fp64_combination_has_a_toolchain() {
        for arch in Arch::ALL {
            for model in ProgModel::candidates(arch) {
                let runnable = matches!(
                    support(model, arch, Precision::Double),
                    Support::Supported | Support::Partial(_)
                );
                assert_eq!(
                    toolchain(model, arch).is_some(),
                    runnable,
                    "{model} on {arch}"
                );
            }
        }
    }

    #[test]
    fn versions_match_tables_i_and_ii() {
        let julia_wombat = toolchain(ProgModel::JuliaThreads, Arch::AmpereAltra).unwrap();
        assert!(julia_wombat.runtime.contains("1.7.2"));
        let julia_crusher = toolchain(ProgModel::JuliaThreads, Arch::Epyc7A53).unwrap();
        assert!(julia_crusher.runtime.contains("1.8.0-rc1"));
        let kokkos = toolchain(ProgModel::KokkosCuda, Arch::A100).unwrap();
        assert!(kokkos.runtime.contains("3.6.01"));
        assert!(kokkos.flags.contains("sm_80"));
        let hip = toolchain(ProgModel::Hip, Arch::Mi250x).unwrap();
        assert!(hip.flags.contains("gfx908"));
        let numba = toolchain(ProgModel::NumbaParallel, Arch::Epyc7A53).unwrap();
        assert!(numba.runtime.contains("0.55.1"));
    }

    #[test]
    fn pinning_env_is_present_exactly_where_the_paper_says() {
        let omp = toolchain(ProgModel::COpenMp, Arch::Epyc7A53).unwrap();
        assert!(omp.env.contains("OMP_PROC_BIND"));
        let julia = toolchain(ProgModel::JuliaThreads, Arch::Epyc7A53).unwrap();
        assert!(julia.env.contains("JULIA_EXCLUSIVE"));
        let numba = toolchain(ProgModel::NumbaParallel, Arch::Epyc7A53).unwrap();
        assert!(numba.env.contains("no pinning"));
    }

    #[test]
    fn cross_device_combinations_have_no_toolchain() {
        assert!(toolchain(ProgModel::Cuda, Arch::Mi250x).is_none());
        assert!(toolchain(ProgModel::NumbaCuda, Arch::Mi250x).is_none());
        assert!(toolchain(ProgModel::COpenMp, Arch::A100).is_none());
    }
}
