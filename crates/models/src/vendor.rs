//! The measured vendor-baseline headroom on CPU targets.
//!
//! The paper divides every portable model's throughput by the *vendor
//! library* (Eq. 2). The modelled vendor reference in this workspace runs
//! the same naive loop nest as the portable models, only through the
//! vendor toolchain — which makes the host-side denominator naive-vs-naive
//! and flatters every CPU efficiency. A real vendor BLAS packs, blocks for
//! the cache hierarchy, and register-tiles; `perfport-gemm::tuned`
//! implements exactly that decomposition, and the bench harness
//! (`cargo run -p perfport-bench --bin host_gemm`) measures how far it
//! pulls ahead of the fastest naive kernel on the build host.
//!
//! The ratios below are that measurement, committed as data (the raw
//! snapshot lives in `BENCH_gemm.json` at the repo root). They are
//! *headroom multipliers on the vendor denominator*: dividing a modelled
//! CPU efficiency by the headroom yields the efficiency against the
//! measured tuned baseline. Keeping them as committed constants — rather
//! than re-measuring inside the study pipeline — keeps Table III
//! deterministic and its golden files machine-independent, while the
//! committed values themselves remain honest wall-clock measurements.
//!
//! The GPU side has the same bug shape and now the same fix: the modelled
//! CUDA/HIP vendor references run the paper's naive one-thread-per-element
//! kernel, but a real cuBLAS/rocBLAS stages tiles through shared memory
//! (and reaches the matrix units at FP16). The `gpu_gemm` bench bin runs
//! the tiled shared-memory kernel and the modelled tensor-core variant on
//! the gpusim simulator under the same warm-up-then-reps protocol, derives
//! steady-state device estimates from the measured counters, and the
//! tiled-over-best-naive ratios below are that measurement, committed as
//! data (raw snapshot: `BENCH_gpu.json` at the repo root).

use crate::arch::Arch;
use crate::calibration::Calibration;
use perfport_machines::Precision;

/// Measured tuned-over-best-naive ratio at n=1024 FP64 on the build host
/// (see `BENCH_gemm.json`; AVX-512 microkernel dispatched by
/// `perfport_gemm::simd`).
const HEADROOM_F64: f64 = 6.68;
/// Measured tuned-over-best-naive ratio at n=1024 FP32 on the build host
/// (256-bit AVX2 microkernel under the AVX-512 verdict).
const HEADROOM_F32: f64 = 4.58;

/// Measured-on-simulator steady-state ratios of the tiled shared-memory
/// kernel (FP64/FP32) and the modelled tensor-core mixed-precision
/// variant (FP16) over the best naive kernel at n=128 — `gpu_gemm`,
/// committed in `BENCH_gpu.json`'s `headroom` block. The naive kernels
/// are LSU-bound (two element loads per FMA); tiling drops global
/// traffic by the tile factor, which on the A100 flips FP64/FP32 to
/// compute-bound at ~4× while the MI250X's fatter FP64 vector units
/// leave it LSU-limited far longer.
const GPU_HEADROOM_A100_F64: f64 = 4.00;
const GPU_HEADROOM_A100_F32: f64 = 4.02;
const GPU_HEADROOM_A100_F16: f64 = 14.33;
const GPU_HEADROOM_MI250X_F64: f64 = 15.12;
const GPU_HEADROOM_MI250X_F32: f64 = 8.04;
const GPU_HEADROOM_MI250X_F16: f64 = 14.33;

/// Multiplier the measured tuned (or tiled/tensor-core, on GPUs) kernel
/// holds over the fastest naive portable kernel on each target.
pub fn vendor_headroom(arch: Arch, precision: Precision) -> Calibration {
    match arch {
        Arch::A100 => {
            let (value, provenance) = match precision {
                Precision::Double => (
                    GPU_HEADROOM_A100_F64,
                    "measured on gpusim: tiled shared-memory kernel vs fastest naive \
                     kernel, steady-state device estimate, n=128 FP64 on the A100 model \
                     (gpu_gemm, BENCH_gpu.json)",
                ),
                Precision::Single => (
                    GPU_HEADROOM_A100_F32,
                    "measured on gpusim: tiled shared-memory kernel vs fastest naive \
                     kernel, steady-state device estimate, n=128 FP32 on the A100 model \
                     (gpu_gemm, BENCH_gpu.json)",
                ),
                Precision::Half => (
                    GPU_HEADROOM_A100_F16,
                    "measured on gpusim: modelled tensor-core mixed-precision kernel \
                     (occupancy-derived matrix-unit rate) vs fastest naive mixed kernel, \
                     n=128 FP16-in/FP32-acc on the A100 model (gpu_gemm, BENCH_gpu.json)",
                ),
            };
            return Calibration { value, provenance };
        }
        Arch::Mi250x => {
            let (value, provenance) = match precision {
                Precision::Double => (
                    GPU_HEADROOM_MI250X_F64,
                    "measured on gpusim: tiled shared-memory kernel vs fastest naive \
                     kernel, steady-state device estimate, n=128 FP64 on the MI250X GCD \
                     model (gpu_gemm, BENCH_gpu.json)",
                ),
                Precision::Single => (
                    GPU_HEADROOM_MI250X_F32,
                    "measured on gpusim: tiled shared-memory kernel vs fastest naive \
                     kernel, steady-state device estimate, n=128 FP32 on the MI250X GCD \
                     model (gpu_gemm, BENCH_gpu.json)",
                ),
                Precision::Half => (
                    GPU_HEADROOM_MI250X_F16,
                    "measured on gpusim: modelled matrix-core mixed-precision kernel \
                     (occupancy-derived matrix-unit rate) vs fastest naive mixed kernel, \
                     n=128 FP16-in/FP32-acc on the MI250X GCD model (gpu_gemm, \
                     BENCH_gpu.json)",
                ),
            };
            return Calibration { value, provenance };
        }
        _ => {}
    }
    match precision {
        Precision::Double => Calibration {
            value: HEADROOM_F64,
            provenance: "measured on the build host: tuned packed kernel (AVX-512 \
                         microkernel) vs fastest naive portable model, n=1024 FP64 \
                         (host_gemm, BENCH_gemm.json)",
        },
        Precision::Single => Calibration {
            value: HEADROOM_F32,
            provenance: "measured on the build host: tuned packed kernel (AVX2 \
                         microkernel) vs fastest naive portable model, n=1024 FP32 \
                         (host_gemm, BENCH_gemm.json)",
        },
        Precision::Half => Calibration {
            value: HEADROOM_F32,
            provenance: "software-F16 headroom not separately measured; assumed at the \
                         measured FP32 ratio (the tuned F16 path packs widened to f32 \
                         and runs the f32 microkernel)",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_targets_scale_by_the_measured_simulator_headroom() {
        for arch in [Arch::Mi250x, Arch::A100] {
            for p in Precision::ALL {
                let h = vendor_headroom(arch, p);
                // Tiling beats the LSU-bound naive kernels on every
                // target; the matrix units beat them harder still.
                assert!(h.value > 1.0 && h.value < 20.0, "{arch} {p}");
                assert!(h.provenance.contains("BENCH_gpu.json"), "{arch} {p}");
            }
        }
        // The A100's naive kernels are LSU-bound at 1/4 of its FP64
        // peak; the MI250X's fat FP64 vector units leave more on the
        // table, so its measured headroom must be larger.
        assert!(
            vendor_headroom(Arch::Mi250x, Precision::Double).value
                > vendor_headroom(Arch::A100, Precision::Double).value
        );
        // The tensor-core story: FP16 headroom dwarfs the FP64 one on
        // NVIDIA.
        assert!(
            vendor_headroom(Arch::A100, Precision::Half).value
                > 2.0 * vendor_headroom(Arch::A100, Precision::Double).value
        );
    }

    #[test]
    fn cpu_headroom_is_measured_and_sane() {
        for arch in [Arch::Epyc7A53, Arch::AmpereAltra] {
            for p in Precision::ALL {
                let h = vendor_headroom(arch, p);
                // A packed cache-blocked kernel beats a naive loop nest,
                // but not by an implausible factor on a server core.
                assert!(h.value > 1.0 && h.value < 10.0, "{arch} {p}");
                assert!(h.provenance.contains("measured") || h.provenance.contains("FP64"));
            }
        }
        assert_eq!(
            vendor_headroom(Arch::Epyc7A53, Precision::Double).value,
            HEADROOM_F64
        );
    }
}
