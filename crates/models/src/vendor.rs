//! The measured vendor-baseline headroom on CPU targets.
//!
//! The paper divides every portable model's throughput by the *vendor
//! library* (Eq. 2). The modelled vendor reference in this workspace runs
//! the same naive loop nest as the portable models, only through the
//! vendor toolchain — which makes the host-side denominator naive-vs-naive
//! and flatters every CPU efficiency. A real vendor BLAS packs, blocks for
//! the cache hierarchy, and register-tiles; `perfport-gemm::tuned`
//! implements exactly that decomposition, and the bench harness
//! (`cargo run -p perfport-bench --bin host_gemm`) measures how far it
//! pulls ahead of the fastest naive kernel on the build host.
//!
//! The ratios below are that measurement, committed as data (the raw
//! snapshot lives in `BENCH_gemm.json` at the repo root). They are
//! *headroom multipliers on the vendor denominator*: dividing a modelled
//! CPU efficiency by the headroom yields the efficiency against the
//! measured tuned baseline. Keeping them as committed constants — rather
//! than re-measuring inside the study pipeline — keeps Table III
//! deterministic and its golden files machine-independent, while the
//! committed values themselves remain honest wall-clock measurements.
//!
//! GPU targets are unaffected: their vendor references (CUDA, HIP) already
//! stand for the tuned library path in the machine model.

use crate::arch::Arch;
use crate::calibration::Calibration;
use perfport_machines::Precision;

/// Measured tuned-over-best-naive ratio at n=1024 FP64 on the build host
/// (see `BENCH_gemm.json`; AVX-512 microkernel dispatched by
/// `perfport_gemm::simd`).
const HEADROOM_F64: f64 = 6.68;
/// Measured tuned-over-best-naive ratio at n=1024 FP32 on the build host
/// (256-bit AVX2 microkernel under the AVX-512 verdict).
const HEADROOM_F32: f64 = 4.58;

/// Multiplier the measured tuned kernel holds over the fastest naive
/// portable kernel on a CPU target (1.0 on GPUs, whose vendor reference
/// already models the tuned library).
pub fn vendor_headroom(arch: Arch, precision: Precision) -> Calibration {
    if arch.is_gpu() {
        return Calibration {
            value: 1.0,
            provenance: "GPU vendor reference already models the tuned library path",
        };
    }
    match precision {
        Precision::Double => Calibration {
            value: HEADROOM_F64,
            provenance: "measured on the build host: tuned packed kernel (AVX-512 \
                         microkernel) vs fastest naive portable model, n=1024 FP64 \
                         (host_gemm, BENCH_gemm.json)",
        },
        Precision::Single => Calibration {
            value: HEADROOM_F32,
            provenance: "measured on the build host: tuned packed kernel (AVX2 \
                         microkernel) vs fastest naive portable model, n=1024 FP32 \
                         (host_gemm, BENCH_gemm.json)",
        },
        Precision::Half => Calibration {
            value: HEADROOM_F32,
            provenance: "software-F16 headroom not separately measured; assumed at the \
                         measured FP32 ratio (the tuned F16 path packs widened to f32 \
                         and runs the f32 microkernel)",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_targets_have_no_headroom() {
        for arch in [Arch::Mi250x, Arch::A100] {
            for p in Precision::ALL {
                assert_eq!(vendor_headroom(arch, p).value, 1.0);
            }
        }
    }

    #[test]
    fn cpu_headroom_is_measured_and_sane() {
        for arch in [Arch::Epyc7A53, Arch::AmpereAltra] {
            for p in Precision::ALL {
                let h = vendor_headroom(arch, p);
                // A packed cache-blocked kernel beats a naive loop nest,
                // but not by an implausible factor on a server core.
                assert!(h.value > 1.0 && h.value < 10.0, "{arch} {p}");
                assert!(h.provenance.contains("measured") || h.provenance.contains("FP64"));
            }
        }
        assert_eq!(
            vendor_headroom(Arch::Epyc7A53, Precision::Double).value,
            HEADROOM_F64
        );
    }
}
