//! Programming-model profiles: how each high-level model executes the
//! hand-rolled GEMM on each architecture.
//!
//! A *programming model* in the paper's sense is a language + runtime +
//! compiler stack: C/OpenMP with the vendor LLVM compiler, C++/Kokkos
//! over an OpenMP/CUDA/HIP backend, Julia's `@threads`/CUDA.jl/AMDGPU.jl,
//! and Python/Numba on CPU or CUDA. This crate describes each stack as:
//!
//! * a **mechanistic profile** — can it pin threads? what does a parallel
//!   region / kernel launch cost relative to the vendor runtime? how long
//!   is the JIT warm-up the paper excludes? which loop schedule does it
//!   use? ([`profiles`])
//! * a **support matrix** — which (model, architecture, precision)
//!   combinations exist at all (Numba's deprecated AMD GPU backend, the
//!   missing `float16` RNG, Kokkos/C half support) ([`mod@support`]),
//! * a **code-generation calibration** — the residual efficiency of the
//!   generated inner loop relative to the vendor toolchain, with per-entry
//!   provenance; values are calibrated against the paper's own Table III
//!   measurements, which is the honest way to reproduce a measurement
//!   study without the authors' hardware ([`calibration`]),
//! * a **measured vendor headroom** — how far the tuned kernels pull
//!   ahead of the fastest naive kernel: the packed register-tiled CPU
//!   kernel (`perfport-gemm::tuned`, measured on the build host into
//!   `BENCH_gemm.json`) and the tiled shared-memory / tensor-core GPU
//!   kernels (measured on the `perfport-gpusim` simulator into
//!   `BENCH_gpu.json`), committed as the denominator correction for
//!   Table III and the Figs. 6–7 efficiency rows ([`vendor`]).
//!
//! # Example
//!
//! Every calibration carries its provenance, so a Table III consumer can
//! always answer "where did this number come from":
//!
//! ```
//! use perfport_models::{vendor_headroom, Arch};
//! use perfport_machines::Precision;
//!
//! let h = vendor_headroom(Arch::Epyc7A53, Precision::Double);
//! assert!(h.value > 1.0, "a tuned kernel beats a naive loop nest");
//! assert!(h.provenance.contains("measured"));
//!
//! // GPU references are naive kernels too; their measured headroom is
//! // the tiled shared-memory kernel's lead on the simulator.
//! let g = vendor_headroom(Arch::A100, Precision::Double);
//! assert!(g.value > 1.0);
//! assert!(g.provenance.contains("BENCH_gpu.json"));
//! ```

#![deny(missing_docs)]

pub mod arch;
pub mod calibration;
pub mod profiles;
pub mod progmodel;
pub mod support;
pub mod vendor;
pub mod versions;

pub use arch::Arch;
pub use calibration::{codegen_efficiency, size_penalty, Calibration};
pub use profiles::{cpu_profile, gpu_profile, CpuModelProfile, GpuModelProfile};
pub use progmodel::{ModelFamily, ProgModel};
pub use support::{support, Support};
pub use vendor::vendor_headroom;
pub use versions::{toolchain, Toolchain};
