//! The concrete programming models and the portable model families.

use crate::arch::Arch;
use std::fmt;

/// A concrete programming-model stack as configured in Tables I–II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProgModel {
    /// C + OpenMP, vendor LLVM compiler (CPU reference).
    COpenMp,
    /// C++ Kokkos, OpenMP backend.
    KokkosOpenMp,
    /// Julia `Threads.@threads`.
    JuliaThreads,
    /// Python/Numba `@njit(parallel=True)`.
    NumbaParallel,
    /// CUDA C (NVIDIA GPU reference).
    Cuda,
    /// HIP C (AMD GPU reference).
    Hip,
    /// C++ Kokkos, CUDA backend.
    KokkosCuda,
    /// C++ Kokkos, HIP backend.
    KokkosHip,
    /// Julia CUDA.jl.
    JuliaCudaJl,
    /// Julia AMDGPU.jl.
    JuliaAmdGpu,
    /// Python/Numba `@cuda.jit`.
    NumbaCuda,
}

impl ProgModel {
    /// All eleven concrete stacks.
    pub const ALL: [ProgModel; 11] = [
        ProgModel::COpenMp,
        ProgModel::KokkosOpenMp,
        ProgModel::JuliaThreads,
        ProgModel::NumbaParallel,
        ProgModel::Cuda,
        ProgModel::Hip,
        ProgModel::KokkosCuda,
        ProgModel::KokkosHip,
        ProgModel::JuliaCudaJl,
        ProgModel::JuliaAmdGpu,
        ProgModel::NumbaCuda,
    ];

    /// `true` for GPU stacks.
    pub fn is_gpu(&self) -> bool {
        !matches!(
            self,
            ProgModel::COpenMp
                | ProgModel::KokkosOpenMp
                | ProgModel::JuliaThreads
                | ProgModel::NumbaParallel
        )
    }

    /// `true` for the vendor references the efficiencies divide by.
    pub fn is_vendor_reference(&self) -> bool {
        matches!(self, ProgModel::COpenMp | ProgModel::Cuda | ProgModel::Hip)
    }

    /// The vendor reference model for an architecture (Eq. 2's
    /// denominator).
    pub fn vendor_reference(arch: Arch) -> ProgModel {
        match arch {
            Arch::Epyc7A53 | Arch::AmpereAltra => ProgModel::COpenMp,
            Arch::A100 => ProgModel::Cuda,
            Arch::Mi250x => ProgModel::Hip,
        }
    }

    /// The models the paper runs on an architecture (vendor reference
    /// first), before support filtering.
    pub fn candidates(arch: Arch) -> Vec<ProgModel> {
        match arch {
            Arch::Epyc7A53 | Arch::AmpereAltra => vec![
                ProgModel::COpenMp,
                ProgModel::KokkosOpenMp,
                ProgModel::JuliaThreads,
                ProgModel::NumbaParallel,
            ],
            Arch::A100 => vec![
                ProgModel::Cuda,
                ProgModel::KokkosCuda,
                ProgModel::JuliaCudaJl,
                ProgModel::NumbaCuda,
            ],
            Arch::Mi250x => vec![
                ProgModel::Hip,
                ProgModel::KokkosHip,
                ProgModel::JuliaAmdGpu,
                ProgModel::NumbaCuda,
            ],
        }
    }

    /// Short identifier.
    pub fn name(&self) -> &'static str {
        match self {
            ProgModel::COpenMp => "C/OpenMP",
            ProgModel::KokkosOpenMp => "Kokkos/OpenMP",
            ProgModel::JuliaThreads => "Julia Threads",
            ProgModel::NumbaParallel => "Python/Numba",
            ProgModel::Cuda => "CUDA",
            ProgModel::Hip => "HIP",
            ProgModel::KokkosCuda => "Kokkos/CUDA",
            ProgModel::KokkosHip => "Kokkos/HIP",
            ProgModel::JuliaCudaJl => "Julia CUDA.jl",
            ProgModel::JuliaAmdGpu => "Julia AMDGPU.jl",
            ProgModel::NumbaCuda => "Numba CUDA",
        }
    }

    /// The portable family this stack belongs to, if any (vendor
    /// references belong to none).
    pub fn family(&self) -> Option<ModelFamily> {
        match self {
            ProgModel::KokkosOpenMp | ProgModel::KokkosCuda | ProgModel::KokkosHip => {
                Some(ModelFamily::Kokkos)
            }
            ProgModel::JuliaThreads | ProgModel::JuliaCudaJl | ProgModel::JuliaAmdGpu => {
                Some(ModelFamily::Julia)
            }
            ProgModel::NumbaParallel | ProgModel::NumbaCuda => Some(ModelFamily::PythonNumba),
            _ => None,
        }
    }
}

impl fmt::Display for ProgModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A portable programming model (a Table III column): one codebase, many
/// architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// C++ Kokkos.
    Kokkos,
    /// Julia (Threads + CUDA.jl + AMDGPU.jl).
    Julia,
    /// Python/Numba.
    PythonNumba,
}

impl ModelFamily {
    /// Table III's column order.
    pub const ALL: [ModelFamily; 3] = [
        ModelFamily::Kokkos,
        ModelFamily::Julia,
        ModelFamily::PythonNumba,
    ];

    /// The concrete stack this family uses on `arch`.
    pub fn concrete(&self, arch: Arch) -> ProgModel {
        match (self, arch) {
            (ModelFamily::Kokkos, Arch::Epyc7A53 | Arch::AmpereAltra) => ProgModel::KokkosOpenMp,
            (ModelFamily::Kokkos, Arch::A100) => ProgModel::KokkosCuda,
            (ModelFamily::Kokkos, Arch::Mi250x) => ProgModel::KokkosHip,
            (ModelFamily::Julia, Arch::Epyc7A53 | Arch::AmpereAltra) => ProgModel::JuliaThreads,
            (ModelFamily::Julia, Arch::A100) => ProgModel::JuliaCudaJl,
            (ModelFamily::Julia, Arch::Mi250x) => ProgModel::JuliaAmdGpu,
            (ModelFamily::PythonNumba, Arch::Epyc7A53 | Arch::AmpereAltra) => {
                ProgModel::NumbaParallel
            }
            (ModelFamily::PythonNumba, Arch::A100 | Arch::Mi250x) => ProgModel::NumbaCuda,
        }
    }

    /// The paper's column header.
    pub fn label(&self) -> &'static str {
        match self {
            ModelFamily::Kokkos => "Kokkos",
            ModelFamily::Julia => "Julia",
            ModelFamily::PythonNumba => "Python/Numba",
        }
    }
}

impl fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vendor_references() {
        assert_eq!(
            ProgModel::vendor_reference(Arch::Epyc7A53),
            ProgModel::COpenMp
        );
        assert_eq!(ProgModel::vendor_reference(Arch::A100), ProgModel::Cuda);
        assert_eq!(ProgModel::vendor_reference(Arch::Mi250x), ProgModel::Hip);
        assert!(ProgModel::Cuda.is_vendor_reference());
        assert!(!ProgModel::JuliaCudaJl.is_vendor_reference());
    }

    #[test]
    fn candidates_start_with_the_reference() {
        for arch in Arch::ALL {
            let c = ProgModel::candidates(arch);
            assert_eq!(c[0], ProgModel::vendor_reference(arch));
            assert_eq!(c.len(), 4);
            for m in &c {
                assert_eq!(m.is_gpu(), arch.is_gpu(), "{m} on {arch}");
            }
        }
    }

    #[test]
    fn families_cover_every_portable_model() {
        for m in ProgModel::ALL {
            assert_eq!(m.family().is_none(), m.is_vendor_reference(), "{m}");
        }
    }

    #[test]
    fn family_concretisation_matches_tables_i_and_ii() {
        assert_eq!(
            ModelFamily::Kokkos.concrete(Arch::Mi250x),
            ProgModel::KokkosHip
        );
        assert_eq!(
            ModelFamily::Julia.concrete(Arch::A100),
            ProgModel::JuliaCudaJl
        );
        assert_eq!(
            ModelFamily::PythonNumba.concrete(Arch::Mi250x),
            ProgModel::NumbaCuda
        );
        assert_eq!(
            ModelFamily::Julia.concrete(Arch::AmpereAltra),
            ProgModel::JuliaThreads
        );
    }

    #[test]
    fn family_concrete_is_a_member_of_the_family() {
        for f in ModelFamily::ALL {
            for arch in Arch::ALL {
                assert_eq!(f.concrete(arch).family(), Some(f));
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(ProgModel::JuliaAmdGpu.to_string(), "Julia AMDGPU.jl");
        assert_eq!(ModelFamily::PythonNumba.to_string(), "Python/Numba");
    }
}
