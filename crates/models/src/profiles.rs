//! Mechanistic runtime profiles: what each stack's runtime does around
//! the kernel.

use crate::progmodel::ProgModel;
use perfport_pool::{PinPolicy, Schedule};

/// Runtime behaviour of a CPU programming model.
#[derive(Debug, Clone, Copy)]
pub struct CpuModelProfile {
    /// The stack this profile describes.
    pub model: ProgModel,
    /// Thread-affinity policy the stack can express
    /// (`OMP_PROC_BIND=true OMP_PLACES=threads`, `JULIA_EXCLUSIVE=1`;
    /// Numba has no pinning API — the gap the paper calls out).
    pub pin_policy: PinPolicy,
    /// Fork-join cost relative to the vendor OpenMP runtime.
    pub region_overhead_multiplier: f64,
    /// One-time JIT compilation cost, seconds (excluded by the paper's
    /// warm-up protocol, but modelled so the warm-up exclusion is real).
    pub jit_warmup_s: f64,
    /// Loop schedule the stack uses for `parallel for`.
    pub schedule: Schedule,
}

/// Runtime behaviour of a GPU programming model.
#[derive(Debug, Clone, Copy)]
pub struct GpuModelProfile {
    /// The stack this profile describes.
    pub model: ProgModel,
    /// Launch latency relative to the vendor runtime (Numba pays Python
    /// dispatch on every launch).
    pub launch_overhead_multiplier: f64,
    /// One-time JIT/compilation cost, seconds.
    pub jit_warmup_s: f64,
}

/// The CPU profile of a model.
///
/// # Panics
///
/// Panics for GPU models.
pub fn cpu_profile(model: ProgModel) -> CpuModelProfile {
    let p = |pin_policy, region_overhead_multiplier, jit_warmup_s| CpuModelProfile {
        model,
        pin_policy,
        region_overhead_multiplier,
        jit_warmup_s,
        schedule: Schedule::StaticBlock,
    };
    match model {
        ProgModel::COpenMp => p(PinPolicy::Compact, 1.0, 0.0),
        ProgModel::KokkosOpenMp => p(PinPolicy::Compact, 1.2, 0.0),
        // `JULIA_EXCLUSIVE=1` pins threads to cores in strict order.
        ProgModel::JuliaThreads => p(PinPolicy::Compact, 2.0, 3.5),
        // "there is currently no mechanism for setting a thread
        // binding/pinning policy" (paper §III.A).
        ProgModel::NumbaParallel => p(PinPolicy::Unpinned, 4.0, 1.2),
        other => panic!("{other} is not a CPU model"),
    }
}

/// The GPU profile of a model.
///
/// # Panics
///
/// Panics for CPU models.
pub fn gpu_profile(model: ProgModel) -> GpuModelProfile {
    let p = |launch_overhead_multiplier, jit_warmup_s| GpuModelProfile {
        model,
        launch_overhead_multiplier,
        jit_warmup_s,
    };
    match model {
        ProgModel::Cuda | ProgModel::Hip => p(1.0, 0.0),
        ProgModel::KokkosCuda | ProgModel::KokkosHip => p(1.3, 0.0),
        ProgModel::JuliaCudaJl => p(1.5, 4.0),
        ProgModel::JuliaAmdGpu => p(1.5, 5.0),
        ProgModel::NumbaCuda => p(12.0, 1.5),
        other => panic!("{other} is not a GPU model"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Arch;

    #[test]
    fn cpu_profiles_exist_for_all_cpu_models() {
        for arch in [Arch::Epyc7A53, Arch::AmpereAltra] {
            for model in ProgModel::candidates(arch) {
                let p = cpu_profile(model);
                assert_eq!(p.model, model);
                assert!(p.region_overhead_multiplier >= 1.0);
            }
        }
    }

    #[test]
    fn gpu_profiles_exist_for_all_gpu_models() {
        for arch in [Arch::A100, Arch::Mi250x] {
            for model in ProgModel::candidates(arch) {
                let p = gpu_profile(model);
                assert_eq!(p.model, model);
                assert!(p.launch_overhead_multiplier >= 1.0);
            }
        }
    }

    #[test]
    fn only_numba_cannot_pin() {
        assert_eq!(
            cpu_profile(ProgModel::NumbaParallel).pin_policy,
            PinPolicy::Unpinned
        );
        for m in [
            ProgModel::COpenMp,
            ProgModel::KokkosOpenMp,
            ProgModel::JuliaThreads,
        ] {
            assert_ne!(cpu_profile(m).pin_policy, PinPolicy::Unpinned, "{m}");
        }
    }

    #[test]
    fn jit_languages_have_warmup() {
        assert!(cpu_profile(ProgModel::JuliaThreads).jit_warmup_s > 0.0);
        assert!(cpu_profile(ProgModel::NumbaParallel).jit_warmup_s > 0.0);
        assert_eq!(cpu_profile(ProgModel::COpenMp).jit_warmup_s, 0.0);
        assert!(gpu_profile(ProgModel::JuliaCudaJl).jit_warmup_s > 0.0);
        assert_eq!(gpu_profile(ProgModel::Cuda).jit_warmup_s, 0.0);
    }

    #[test]
    fn numba_pays_python_dispatch_per_launch() {
        let numba = gpu_profile(ProgModel::NumbaCuda);
        let cuda = gpu_profile(ProgModel::Cuda);
        assert!(numba.launch_overhead_multiplier > 5.0 * cuda.launch_overhead_multiplier);
    }

    #[test]
    #[should_panic(expected = "not a CPU model")]
    fn gpu_model_in_cpu_profile_panics() {
        let _ = cpu_profile(ProgModel::Cuda);
    }

    #[test]
    #[should_panic(expected = "not a GPU model")]
    fn cpu_model_in_gpu_profile_panics() {
        let _ = gpu_profile(ProgModel::JuliaThreads);
    }
}
