//! The four target architectures of the study.

use perfport_machines::{CpuMachine, GpuMachine};
use std::fmt;

/// One of the paper's four hardware targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// Crusher CPU: AMD EPYC 7A53, 64 cores / 4 NUMA domains.
    Epyc7A53,
    /// Wombat CPU: Ampere Altra, 80 Arm cores.
    AmpereAltra,
    /// Crusher GPU: AMD MI250X (one GCD).
    Mi250x,
    /// Wombat GPU: NVIDIA A100.
    A100,
}

impl Arch {
    /// All four targets, CPU first (the paper's presentation order).
    pub const ALL: [Arch; 4] = [Arch::Epyc7A53, Arch::AmpereAltra, Arch::Mi250x, Arch::A100];

    /// `true` for the GPU targets.
    pub fn is_gpu(&self) -> bool {
        matches!(self, Arch::Mi250x | Arch::A100)
    }

    /// The CPU description, if this is a CPU target.
    pub fn cpu_machine(&self) -> Option<CpuMachine> {
        match self {
            Arch::Epyc7A53 => Some(CpuMachine::epyc_7a53()),
            Arch::AmpereAltra => Some(CpuMachine::ampere_altra()),
            _ => None,
        }
    }

    /// The GPU description, if this is a GPU target.
    pub fn gpu_machine(&self) -> Option<GpuMachine> {
        match self {
            Arch::Mi250x => Some(GpuMachine::mi250x_gcd()),
            Arch::A100 => Some(GpuMachine::a100()),
            _ => None,
        }
    }

    /// The subscript label used in the paper's Table III, e.g.
    /// `e_{Epyc 7A53}`.
    pub fn table_label(&self) -> &'static str {
        match self {
            Arch::Epyc7A53 => "Epyc 7A53",
            Arch::AmpereAltra => "Ampere Altra",
            Arch::Mi250x => "MI250x",
            Arch::A100 => "A100",
        }
    }

    /// The hosting OLCF system.
    pub fn system(&self) -> &'static str {
        match self {
            Arch::Epyc7A53 | Arch::Mi250x => "Crusher",
            Arch::AmpereAltra | Arch::A100 => "Wombat",
        }
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.table_label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_dispatch_is_exclusive() {
        for a in Arch::ALL {
            assert_eq!(a.cpu_machine().is_some(), !a.is_gpu(), "{a}");
            assert_eq!(a.gpu_machine().is_some(), a.is_gpu(), "{a}");
        }
    }

    #[test]
    fn systems_match_the_paper() {
        assert_eq!(Arch::Epyc7A53.system(), "Crusher");
        assert_eq!(Arch::Mi250x.system(), "Crusher");
        assert_eq!(Arch::AmpereAltra.system(), "Wombat");
        assert_eq!(Arch::A100.system(), "Wombat");
    }

    #[test]
    fn labels() {
        assert_eq!(Arch::A100.to_string(), "A100");
        assert_eq!(Arch::Epyc7A53.table_label(), "Epyc 7A53");
    }
}
