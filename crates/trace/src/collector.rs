//! Thread-safe in-memory event collector.

use crate::event::{Event, EventKind, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Process-wide registry handing out small, stable per-thread ids. The
/// OS thread id is neither small nor stable across runs; trace ids
/// start at 0 in registration order, which makes summaries and Chrome
/// timelines readable.
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Returns this thread's stable trace id.
pub fn thread_id() -> u64 {
    TID.with(|t| *t)
}

/// Accumulates [`Event`]s from any number of threads.
///
/// A collector is cheap to create and owns its own epoch: all
/// timestamps are nanoseconds since [`Collector::new`] was called.
/// Recording takes one short-lived mutex acquisition; the instrument
/// sites in the workspace record at region/launch/size-point
/// granularity (not per element), so contention is negligible.
pub struct Collector {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

impl Collector {
    /// Creates an empty collector whose epoch is "now".
    pub fn new() -> Self {
        Collector {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Records one event, stamped with the current time and the calling
    /// thread's stable id.
    pub fn record(
        &self,
        kind: EventKind,
        cat: &'static str,
        name: String,
        args: Vec<(String, Value)>,
    ) {
        let event = Event {
            kind,
            cat: cat.to_string(),
            name,
            ts_ns: self.epoch.elapsed().as_nanos(),
            tid: thread_id(),
            args,
        };
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out everything recorded so far, in recording order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_monotone_timestamps() {
        let c = Collector::new();
        for i in 0..5 {
            c.record(EventKind::Instant, "t", format!("e{i}"), Vec::new());
        }
        let events = c.snapshot();
        assert_eq!(events.len(), 5);
        for w in events.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
        assert_eq!(events[3].name, "e3");
        assert_eq!(events[3].cat, "t");
    }

    #[test]
    fn thread_ids_are_stable_within_a_thread() {
        let a = thread_id();
        let b = thread_id();
        assert_eq!(a, b);
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, other);
    }
}
