//! Plain-text hierarchical summary of a trace: spans aggregated by
//! call path with count / total / mean / min / max durations, followed
//! by counter statistics.

use crate::event::{Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

#[derive(Default)]
struct SpanStats {
    count: u64,
    total_ns: u128,
    min_ns: u128,
    max_ns: u128,
}

impl SpanStats {
    fn add(&mut self, dur_ns: u128) {
        if self.count == 0 {
            self.min_ns = dur_ns;
            self.max_ns = dur_ns;
        } else {
            self.min_ns = self.min_ns.min(dur_ns);
            self.max_ns = self.max_ns.max(dur_ns);
        }
        self.count += 1;
        self.total_ns += dur_ns;
    }
}

#[derive(Default)]
struct CounterStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    last: f64,
}

impl CounterStats {
    fn add(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.last = v;
    }
}

fn fmt_dur(ns: u128) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// Renders a hierarchical text summary of `events`.
///
/// Spans are keyed by their *path* — the stack of enclosing span names
/// on the same thread — so the same span name in different contexts
/// aggregates separately. Unclosed spans (still open when the session
/// finished) are reported, not silently dropped.
pub fn render(events: &[Event]) -> String {
    // Per-thread span stacks, keyed path -> aggregated stats.
    // Path components are "cat:name" so categories stay visible.
    let mut stacks: BTreeMap<u64, Vec<(String, u128, Vec<String>)>> = BTreeMap::new();
    let mut spans: BTreeMap<Vec<String>, SpanStats> = BTreeMap::new();
    let mut counters: BTreeMap<String, CounterStats> = BTreeMap::new();
    let mut unclosed = 0u64;
    let mut unmatched_ends = 0u64;

    for e in events {
        match e.kind {
            EventKind::SpanBegin => {
                let stack = stacks.entry(e.tid).or_default();
                let mut path: Vec<String> =
                    stack.last().map(|(_, _, p)| p.clone()).unwrap_or_default();
                path.push(format!("{}:{}", e.cat, e.name));
                stack.push((e.name.clone(), e.ts_ns, path));
            }
            EventKind::SpanEnd => {
                let stack = stacks.entry(e.tid).or_default();
                // Tolerate interleaving by popping the nearest matching
                // open span on this thread.
                match stack.iter().rposition(|(name, _, _)| *name == e.name) {
                    Some(idx) => {
                        let (_, start, path) = stack.remove(idx);
                        spans
                            .entry(path)
                            .or_default()
                            .add(e.ts_ns.saturating_sub(start));
                    }
                    None => unmatched_ends += 1,
                }
            }
            EventKind::Counter => {
                // Single-valued counters use the key "value" and keep the
                // plain `cat:name`; multi-series counters (counter_set)
                // get one statistics row per series, `cat:name.key`.
                let mut recorded = false;
                for (k, v) in &e.args {
                    let Some(x) = v.as_f64() else { continue };
                    let key = if k == "value" {
                        format!("{}:{}", e.cat, e.name)
                    } else {
                        format!("{}:{}.{}", e.cat, e.name, k)
                    };
                    counters.entry(key).or_default().add(x);
                    recorded = true;
                }
                if !recorded {
                    counters
                        .entry(format!("{}:{}", e.cat, e.name))
                        .or_default()
                        .add(f64::NAN);
                }
            }
            EventKind::Instant => {}
        }
    }
    for stack in stacks.values() {
        unclosed += stack.len() as u64;
    }

    let mut out = String::new();
    let _ = writeln!(out, "trace summary: {} events", events.len());
    let _ = writeln!(out);

    if spans.is_empty() {
        let _ = writeln!(out, "spans: none");
    } else {
        let _ = writeln!(
            out,
            "{:<52} {:>7} {:>12} {:>12} {:>12} {:>12}",
            "span", "count", "total", "mean", "min", "max"
        );
        for (path, s) in &spans {
            let depth = path.len() - 1;
            let label = format!("{}{}", "  ".repeat(depth), path.last().unwrap());
            let mean = s.total_ns / s.count as u128;
            let _ = writeln!(
                out,
                "{:<52} {:>7} {:>12} {:>12} {:>12} {:>12}",
                label,
                s.count,
                fmt_dur(s.total_ns),
                fmt_dur(mean),
                fmt_dur(s.min_ns),
                fmt_dur(s.max_ns)
            );
        }
    }

    if !counters.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<52} {:>7} {:>12} {:>12} {:>12} {:>12}",
            "counter", "count", "mean", "min", "max", "last"
        );
        for (name, c) in &counters {
            let _ = writeln!(
                out,
                "{:<52} {:>7} {:>12} {:>12} {:>12} {:>12}",
                name,
                c.count,
                fmt_num(c.sum / c.count as f64),
                fmt_num(c.min),
                fmt_num(c.max),
                fmt_num(c.last)
            );
        }
    }

    if unclosed > 0 || unmatched_ends > 0 {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "warning: {unclosed} unclosed span(s), {unmatched_ends} unmatched end(s)"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;

    fn ev(kind: EventKind, name: &str, ts_ns: u128, tid: u64) -> Event {
        Event {
            kind,
            cat: "t".to_string(),
            name: name.to_string(),
            ts_ns,
            tid,
            args: Vec::new(),
        }
    }

    #[test]
    fn nested_spans_aggregate_by_path() {
        let events = vec![
            ev(EventKind::SpanBegin, "outer", 0, 0),
            ev(EventKind::SpanBegin, "inner", 100, 0),
            ev(EventKind::SpanEnd, "inner", 600, 0),
            ev(EventKind::SpanBegin, "inner", 700, 0),
            ev(EventKind::SpanEnd, "inner", 900, 0),
            ev(EventKind::SpanEnd, "outer", 1_000, 0),
        ];
        let text = render(&events);
        assert!(text.contains("t:outer"), "{text}");
        assert!(text.contains("  t:inner"), "{text}");
        // inner ran twice for 500 + 200 = 700ns total.
        let inner_line = text
            .lines()
            .find(|l| l.trim_start().starts_with("t:inner"))
            .unwrap();
        assert!(inner_line.contains("700ns"), "{inner_line}");
        assert!(!text.contains("warning"), "{text}");
    }

    #[test]
    fn counters_report_mean_min_max() {
        let mut events = Vec::new();
        for (i, v) in [1.0, 3.0, 2.0].into_iter().enumerate() {
            let mut e = ev(EventKind::Counter, "imbalance", i as u128, 0);
            e.args.push(("value".to_string(), Value::F64(v)));
            events.push(e);
        }
        let text = render(&events);
        let line = text.lines().find(|l| l.starts_with("t:imbalance")).unwrap();
        assert!(line.contains('3'), "{line}");
        assert!(line.contains('1'), "{line}");
        assert!(line.contains('2'), "{line}");
    }

    #[test]
    fn unclosed_spans_are_flagged_not_dropped() {
        let events = vec![ev(EventKind::SpanBegin, "open", 0, 0)];
        let text = render(&events);
        assert!(text.contains("warning: 1 unclosed"), "{text}");
    }

    #[test]
    fn same_name_on_different_threads_does_not_cross_match() {
        let events = vec![
            ev(EventKind::SpanBegin, "work", 0, 0),
            ev(EventKind::SpanBegin, "work", 50, 1),
            ev(EventKind::SpanEnd, "work", 100, 1),
            ev(EventKind::SpanEnd, "work", 400, 0),
        ];
        let text = render(&events);
        let line = text.lines().find(|l| l.starts_with("t:work")).unwrap();
        // Two completions: 50ns (tid 1) and 400ns (tid 0).
        assert!(line.contains("2"), "{line}");
        assert!(line.contains("400ns"), "{line}");
        assert!(line.contains("50ns"), "{line}");
    }

    #[test]
    fn empty_trace_renders() {
        let text = render(&[]);
        assert!(text.contains("0 events"));
        assert!(text.contains("spans: none"));
    }
}
