//! Minimal JSON support: enough to emit trace files and to read a
//! Chrome trace back in (`trace_report`). No external dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number: finite values roundtrip, and
/// non-finite values (not representable in JSON) degrade to `null`.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Integral values print without the trailing ".0" that Rust's
        // Display would add, matching what other tools emit.
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

/// A JSON parse error with a byte offset for context.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode when paired,
                            // replace when lone.
                            let ch = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.unwrap_or('\u{fffd}'));
                            // hex4 leaves pos past the digits; undo the
                            // unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"traceEvents":[{"ph":"B","ts":1.5,"args":{"ok":true,"n":null}},[1,-2,3e2]],"s":"a\"b\né"}"#;
        let v = parse(doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            events[0].get("args").unwrap().get("ok").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(events[1].as_array().unwrap()[2].as_f64(), Some(300.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\né"));
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "quote\" back\\slash \n tab\t control\u{1} é";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(3.25), "3.25");
        assert_eq!(number(f64::NAN), "null");
    }
}
