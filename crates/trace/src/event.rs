//! The event model: what one recorded observation looks like.

use std::fmt;

/// The kind of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened (`ph: "B"` in Chrome terms).
    SpanBegin,
    /// A span closed (`ph: "E"`).
    SpanEnd,
    /// A counter sample (`ph: "C"`).
    Counter,
    /// An instantaneous marker (`ph: "i"`).
    Instant,
}

impl EventKind {
    /// The Chrome `trace_event` phase letter.
    pub fn phase(self) -> &'static str {
        match self {
            EventKind::SpanBegin => "B",
            EventKind::SpanEnd => "E",
            EventKind::Counter => "C",
            EventKind::Instant => "i",
        }
    }

    /// Parses a Chrome phase letter.
    pub fn from_phase(ph: &str) -> Option<Self> {
        match ph {
            "B" => Some(EventKind::SpanBegin),
            "E" => Some(EventKind::SpanEnd),
            "C" => Some(EventKind::Counter),
            "i" | "I" => Some(EventKind::Instant),
            _ => None,
        }
    }
}

/// An argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl Value {
    /// Numeric view (integers widen to `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One recorded observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// Subsystem category (`"pool"`, `"gpu"`, `"runner"`, `"study"`).
    pub cat: String,
    /// Event name (span name, counter name).
    pub name: String,
    /// Nanoseconds since the collector's epoch.
    pub ts_ns: u128,
    /// Stable small integer identifying the recording thread.
    pub tid: u64,
    /// Attached arguments (span-end stats, counter value).
    pub args: Vec<(String, Value)>,
}

impl Event {
    /// Looks up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&Value> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}
