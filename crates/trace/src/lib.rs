//! Structured tracing for the perfport workspace.
//!
//! The paper's evaluation is only as convincing as the evidence behind
//! each number: region fork-join costs, per-worker chunk imbalance,
//! simulated launch/coalescing behaviour, warm-up exclusion. This crate
//! captures that intermediate evidence as **spans** (nested, timed
//! regions) and **counters** (named samples), without perturbing the
//! measurements themselves:
//!
//! - **Zero cost when disabled.** Every instrumentation site starts
//!   with one relaxed atomic load; when no collector is installed the
//!   site does nothing else — no allocation, no formatting, no lock.
//! - **Observation only.** Recording never feeds back into modelled
//!   timings: results are bit-identical with tracing on and off (the
//!   end-to-end suite asserts this).
//! - **Three exporters.** JSONL event logs for ad-hoc grepping, Chrome
//!   `trace_event` JSON for `chrome://tracing`/Perfetto, and a plain
//!   hierarchical text summary ([`summary::render`]).
//!
//! # Quickstart
//!
//! ```
//! use perfport_trace as trace;
//!
//! let session = trace::TraceSession::start();
//! {
//!     let mut sp = trace::span("demo", "outer");
//!     sp.arg("n", 42u64);
//!     let _inner = trace::span("demo", "inner");
//!     trace::counter("demo", "items", 42.0);
//! }
//! let events = session.finish();
//! assert_eq!(events.len(), 5); // 2 begins + 2 ends + 1 counter
//! let chrome = trace::export::chrome(&events);
//! assert!(chrome.contains("\"traceEvents\""));
//! println!("{}", trace::summary::render(&events));
//! ```

pub mod collector;
pub mod event;
pub mod export;
pub mod json;
pub mod summary;

pub use collector::Collector;
pub use event::{Event, EventKind, Value};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Global enable flag; checked with one relaxed load on every
/// instrumentation site before anything else happens.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed collector. A `Mutex<Option<Arc<..>>>` instead of a
/// `OnceLock` so a session can be torn down and a new one installed
/// (each bench invocation is its own session).
static GLOBAL: Mutex<Option<Arc<Collector>>> = Mutex::new(None);

/// Whether a collector is currently installed. Instrumentation sites
/// can use this to skip preparing expensive arguments.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `collector` as the global recording sink, replacing (and
/// returning) any previous one.
pub fn install(collector: Arc<Collector>) -> Option<Arc<Collector>> {
    let mut slot = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let old = slot.replace(collector);
    ENABLED.store(true, Ordering::Relaxed);
    old
}

/// Removes the global collector and disables tracing. Returns the
/// collector so its events can be exported.
pub fn uninstall() -> Option<Arc<Collector>> {
    let mut slot = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::Relaxed);
    slot.take()
}

fn current() -> Option<Arc<Collector>> {
    if !enabled() {
        return None;
    }
    GLOBAL
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .map(Arc::clone)
}

/// An installed-collector session with RAII teardown: the common
/// pattern for tests and binaries.
///
/// `start` installs a fresh collector; `finish` (or drop) uninstalls it
/// and hands back the recorded events.
pub struct TraceSession {
    collector: Arc<Collector>,
    finished: bool,
}

impl TraceSession {
    /// Installs a fresh global collector.
    pub fn start() -> Self {
        let collector = Arc::new(Collector::new());
        install(Arc::clone(&collector));
        TraceSession {
            collector,
            finished: false,
        }
    }

    /// Uninstalls the collector and returns everything it recorded, in
    /// recording order.
    pub fn finish(mut self) -> Vec<Event> {
        self.finished = true;
        uninstall();
        self.collector.snapshot()
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if !self.finished {
            uninstall();
        }
    }
}

/// Opens a span: records a begin event now and an end event when the
/// returned guard drops. When tracing is disabled this is a no-op that
/// performs a single atomic load.
pub fn span(cat: &'static str, name: impl Into<String>) -> SpanGuard {
    match current() {
        Some(collector) => {
            let name = name.into();
            collector.record(EventKind::SpanBegin, cat, name.clone(), Vec::new());
            SpanGuard {
                inner: Some(SpanInner {
                    collector,
                    cat,
                    name,
                    args: Vec::new(),
                }),
            }
        }
        None => SpanGuard { inner: None },
    }
}

/// Records a counter sample.
pub fn counter(cat: &'static str, name: impl Into<String>, value: f64) {
    if let Some(collector) = current() {
        collector.record(
            EventKind::Counter,
            cat,
            name.into(),
            vec![("value".to_string(), Value::F64(value))],
        );
    }
}

/// Records one counter event carrying several named series — a
/// multi-series counter track in Chrome terms (all keys plot on one
/// track), one JSONL line, and per-key statistics in the text summary
/// (`cat:name.key`; a key named `"value"` keeps the plain `cat:name`).
///
/// This is the namespace hardware-counter deltas use: `perfport-obs`
/// emits `("hw", "counters", [("cycles", …), ("instructions", …), …])`
/// per measured scope, and all three exporters carry it with no extra
/// plumbing.
pub fn counter_set(cat: &'static str, name: impl Into<String>, values: &[(&str, f64)]) {
    if let Some(collector) = current() {
        let args = values
            .iter()
            .map(|&(k, v)| (k.to_string(), Value::F64(v)))
            .collect();
        collector.record(EventKind::Counter, cat, name.into(), args);
    }
}

/// Records an instantaneous event with arguments.
pub fn instant(cat: &'static str, name: impl Into<String>, args: Vec<(String, Value)>) {
    if let Some(collector) = current() {
        collector.record(EventKind::Instant, cat, name.into(), args);
    }
}

struct SpanInner {
    collector: Arc<Collector>,
    cat: &'static str,
    name: String,
    args: Vec<(String, Value)>,
}

/// RAII handle for an open span. Arguments attached with [`arg`]
/// travel on the span's end event (they are usually only known once the
/// work has run: imbalance, counters, throughput).
///
/// [`arg`]: SpanGuard::arg
#[must_use = "a span ends when this guard drops"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// Whether this guard is actually recording (tracing enabled at
    /// creation). Use to skip preparing expensive argument values.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches an argument to the span's end event.
    pub fn arg(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        if let Some(inner) = &mut self.inner {
            inner.args.push((key.into(), value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            inner
                .collector
                .record(EventKind::SpanEnd, inner.cat, inner.name, inner.args);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global tracer is process-wide state; serialize the tests that
    // touch it.
    static GLOBAL_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_sites_record_nothing() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        let mut sp = span("t", "nothing");
        assert!(!sp.is_recording());
        sp.arg("ignored", 1u64);
        counter("t", "ignored", 1.0);
        drop(sp);
        // Installing afterwards must observe an empty world.
        let session = TraceSession::start();
        assert!(session.finish().is_empty());
    }

    #[test]
    fn session_collects_spans_and_counters() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let session = TraceSession::start();
        {
            let mut sp = span("cat", "outer");
            sp.arg("answer", 42u64);
            {
                let _inner = span("cat", "inner");
                counter("cat", "work", 7.0);
            }
        }
        let events = session.finish();
        assert!(!enabled());
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::SpanBegin, // outer
                EventKind::SpanBegin, // inner
                EventKind::Counter,   // work
                EventKind::SpanEnd,   // inner
                EventKind::SpanEnd,   // outer
            ]
        );
        let outer_end = &events[4];
        assert_eq!(outer_end.name, "outer");
        assert_eq!(outer_end.args[0].0, "answer");
        assert_eq!(outer_end.args[0].1, Value::U64(42));
    }

    #[test]
    fn timestamps_are_monotone_per_thread() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let session = TraceSession::start();
        for i in 0..10 {
            let mut sp = span("t", format!("s{i}"));
            sp.arg("i", i as u64);
        }
        let events = session.finish();
        let times: Vec<u128> = events.iter().map(|e| e.ts_ns).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "single-thread events must be ordered");
    }

    #[test]
    fn concurrent_recording_is_safe_and_complete() {
        let _guard = GLOBAL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let session = TraceSession::start();
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..50 {
                        let mut sp = span("mt", format!("t{t}"));
                        sp.arg("i", i as u64);
                    }
                });
            }
        });
        let events = session.finish();
        assert_eq!(events.len(), 4 * 50 * 2);
        // Each thread's events carry a consistent, distinct tid.
        let mut tids: Vec<u64> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 4);
    }
}
