//! Exporters: JSONL event logs and Chrome `trace_event` JSON, plus the
//! inverse (`import_chrome`) used by the `trace_report` tool.

use crate::event::{Event, EventKind, Value};
use crate::json::{self, Json};
use std::fmt::Write as _;

fn value_json(v: &Value) -> String {
    match v {
        Value::I64(n) => format!("{n}"),
        Value::U64(n) => format!("{n}"),
        Value::F64(n) => json::number(*n),
        Value::Bool(b) => format!("{b}"),
        Value::Str(s) => format!("\"{}\"", json::escape(s)),
    }
}

fn args_json(args: &[(String, Value)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json::escape(k), value_json(v));
    }
    out.push('}');
    out
}

/// One event per line as a self-describing JSON object. Greppable and
/// streamable; field order is fixed.
pub fn jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(
            out,
            "{{\"kind\":\"{}\",\"cat\":\"{}\",\"name\":\"{}\",\"ts_ns\":{},\"tid\":{},\"args\":{}}}",
            e.kind.phase(),
            json::escape(&e.cat),
            json::escape(&e.name),
            e.ts_ns,
            e.tid,
            args_json(&e.args),
        );
    }
    out
}

/// Chrome `trace_event` JSON (object form), loadable in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Spans map to `B`/`E` duration pairs, counters to `C`, instants to
/// `i`. Timestamps are microseconds (fractional, preserving the
/// nanosecond clock) since the collector epoch; all events share
/// `pid` 1 and use the collector's stable thread ids.
pub fn chrome(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ts_us = e.ts_ns as f64 / 1_000.0;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            json::escape(&e.name),
            json::escape(&e.cat),
            e.kind.phase(),
            json::number(ts_us),
            e.tid,
        );
        match e.kind {
            // Chrome renders a counter track from the args object.
            EventKind::Counter => {
                let _ = write!(out, ",\"args\":{}", args_json(&e.args));
            }
            EventKind::Instant => {
                let _ = write!(out, ",\"s\":\"t\",\"args\":{}", args_json(&e.args));
            }
            EventKind::SpanBegin | EventKind::SpanEnd => {
                if !e.args.is_empty() {
                    let _ = write!(out, ",\"args\":{}", args_json(&e.args));
                }
            }
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// An import failure: either malformed JSON or a shape that is not a
/// Chrome trace.
#[derive(Debug)]
pub enum ImportError {
    /// The document did not parse as JSON.
    Parse(json::ParseError),
    /// The document parsed but is not a usable trace.
    Shape(String),
}

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImportError::Parse(e) => write!(f, "{e}"),
            ImportError::Shape(msg) => write!(f, "not a chrome trace: {msg}"),
        }
    }
}

impl std::error::Error for ImportError {}

fn json_to_value(j: &Json) -> Value {
    match j {
        Json::Bool(b) => Value::Bool(*b),
        Json::Number(n) => {
            // Chrome traces do not distinguish int from float; recover
            // the integer flavour when the value is exactly integral.
            if n.fract() == 0.0 && n.abs() < 9e15 {
                if *n >= 0.0 {
                    Value::U64(*n as u64)
                } else {
                    Value::I64(*n as i64)
                }
            } else {
                Value::F64(*n)
            }
        }
        Json::String(s) => Value::Str(s.clone()),
        other => Value::Str(format!("{other:?}")),
    }
}

/// Parses a Chrome trace (object form `{"traceEvents":[...]}` or bare
/// array form) back into [`Event`]s. Unknown phases are skipped rather
/// than rejected, so traces from other tools still import.
pub fn import_chrome(input: &str) -> Result<Vec<Event>, ImportError> {
    let doc = json::parse(input).map_err(ImportError::Parse)?;
    let items = match doc.get("traceEvents") {
        Some(array) => array
            .as_array()
            .ok_or_else(|| ImportError::Shape("traceEvents is not an array".to_string()))?,
        None => doc.as_array().ok_or_else(|| {
            ImportError::Shape("expected an object with traceEvents or a bare array".to_string())
        })?,
    };
    let mut events = Vec::with_capacity(items.len());
    for item in items {
        let Some(ph) = item.get("ph").and_then(Json::as_str) else {
            continue;
        };
        let Some(kind) = EventKind::from_phase(ph) else {
            continue;
        };
        let name = item
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let cat = item
            .get("cat")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let ts_us = item.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
        let tid = item.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let mut args = Vec::new();
        if let Some(Json::Object(map)) = item.get("args") {
            for (k, v) in map {
                args.push((k.clone(), json_to_value(v)));
            }
        }
        events.push(Event {
            kind,
            cat,
            name,
            ts_ns: (ts_us * 1_000.0).max(0.0) as u128,
            tid,
            args,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event {
                kind: EventKind::SpanBegin,
                cat: "pool".to_string(),
                name: "region".to_string(),
                ts_ns: 1_000,
                tid: 0,
                args: vec![],
            },
            Event {
                kind: EventKind::Counter,
                cat: "pool".to_string(),
                name: "imbalance".to_string(),
                ts_ns: 1_500,
                tid: 0,
                args: vec![("value".to_string(), Value::F64(1.25))],
            },
            Event {
                kind: EventKind::SpanEnd,
                cat: "pool".to_string(),
                name: "region".to_string(),
                ts_ns: 2_000,
                tid: 0,
                args: vec![
                    ("n".to_string(), Value::U64(4096)),
                    ("sched".to_string(), Value::Str("static".to_string())),
                ],
            },
        ]
    }

    #[test]
    fn chrome_is_valid_json_with_trace_events() {
        let text = chrome(&sample());
        let doc = json::parse(&text).unwrap();
        let items = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].get("ph").unwrap().as_str(), Some("B"));
        // 1_000 ns = 1 µs
        assert_eq!(items[0].get("ts").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn chrome_round_trips_through_import() {
        let original = sample();
        let imported = import_chrome(&chrome(&original)).unwrap();
        assert_eq!(imported.len(), original.len());
        for (a, b) in imported.iter().zip(&original) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.name, b.name);
            assert_eq!(a.cat, b.cat);
            assert_eq!(a.ts_ns, b.ts_ns);
            assert_eq!(a.tid, b.tid);
        }
        // End-event args survive (order normalised by key).
        let end = &imported[2];
        assert_eq!(end.arg("n"), Some(&Value::U64(4096)));
        assert_eq!(end.arg("sched"), Some(&Value::Str("static".to_string())));
    }

    #[test]
    fn jsonl_emits_one_parseable_line_per_event() {
        let text = jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            json::parse(line).unwrap();
        }
    }

    #[test]
    fn import_rejects_non_traces() {
        assert!(import_chrome("not json").is_err());
        assert!(import_chrome("{\"traceEvents\": 5}").is_err());
        assert!(import_chrome("{\"other\": []}").is_err());
    }
}
