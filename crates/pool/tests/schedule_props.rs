//! Property tests for the loop schedules: whatever the schedule and
//! team shape, every index of `0..n` is executed exactly once, static
//! chunk assignments are disjoint, and all schedules agree on totals.

use perfport_pool::{Chunk, Schedule, StaticChunks, ThreadPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Static schedules assign every index to exactly one (thread, chunk)
    /// and the chunks are mutually disjoint, including ragged tails.
    #[test]
    fn static_chunks_partition_the_index_space(
        n in 0usize..5000,
        threads in 1usize..17,
        chunk in 1usize..64,
        use_chunked in proptest::bool::ANY,
    ) {
        let schedule = if use_chunked {
            Schedule::StaticChunked { chunk }
        } else {
            Schedule::StaticBlock
        };
        let mut seen = vec![0u32; n];
        let mut chunks: Vec<Chunk> = Vec::new();
        for t in 0..threads {
            for c in StaticChunks::new(schedule, n, threads, t) {
                prop_assert!(!c.is_empty(), "{schedule:?} yielded an empty chunk");
                prop_assert!(c.end <= n, "{schedule:?} overran the index space");
                for i in c.range() {
                    seen[i] += 1;
                }
                chunks.push(c);
            }
        }
        prop_assert!(
            seen.iter().all(|&count| count == 1),
            "{schedule:?} missed or duplicated an index (n={n}, threads={threads})"
        );
        chunks.sort_by_key(|c| c.start);
        for pair in chunks.windows(2) {
            prop_assert!(
                pair[0].end <= pair[1].start,
                "{schedule:?} produced overlapping chunks {:?} and {:?}",
                pair[0],
                pair[1]
            );
        }
    }

    /// The two static assignment views agree: iterating `StaticChunks`
    /// yields exactly as many iterations per thread as the pool reports
    /// in its region stats.
    #[test]
    fn static_chunks_match_pool_accounting(
        n in 0usize..2000,
        threads in 1usize..9,
        chunk in 1usize..32,
    ) {
        let schedule = Schedule::StaticChunked { chunk };
        let expected: Vec<usize> = (0..threads)
            .map(|t| StaticChunks::new(schedule, n, threads, t).map(|c| c.len()).sum())
            .collect();
        let pool = ThreadPool::new(threads);
        let stats = pool.parallel_for_each(n, schedule, |_| {});
        prop_assert_eq!(&stats.items_per_thread, &expected);
        prop_assert_eq!(stats.total_items(), n);
    }

    /// Every schedule — static or work-stealing — covers each index
    /// exactly once through the real pool, and their totals agree.
    #[test]
    fn all_schedules_cover_exactly_once_through_the_pool(
        n in 0usize..3000,
        threads in 1usize..9,
        chunk in 1usize..32,
    ) {
        let pool = ThreadPool::new(threads);
        for schedule in [
            Schedule::StaticBlock,
            Schedule::StaticChunked { chunk },
            Schedule::Dynamic { chunk },
            Schedule::Guided { min_chunk: chunk },
        ] {
            let counts: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            let stats = pool.parallel_for_each(n, schedule, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            prop_assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "{schedule:?} missed or duplicated an index (n={n}, threads={threads})"
            );
            prop_assert_eq!(
                stats.total_items(),
                n,
                "{:?} stats disagree with the index space",
                schedule
            );
            prop_assert_eq!(stats.items_per_thread.len(), threads);
        }
    }
}
