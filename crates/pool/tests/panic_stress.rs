//! Panic-propagation stress: a worker panic must surface to the caller
//! as a panic, and the pool must stay fully usable afterwards — no
//! wedged workers, no lost messages, no corrupted region accounting.
//!
//! Run this suite both ways (the behaviour must not depend on test
//! parallelism):
//!
//! ```text
//! cargo test -p perfport-pool --test panic_stress
//! RUST_TEST_THREADS=1 cargo test -p perfport-pool --test panic_stress
//! ```

use perfport_pool::{Schedule, ThreadPool};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Alternates panicking and clean regions on one pool many times; the
/// pool must recover after every panic.
#[test]
fn pool_survives_repeated_worker_panics() {
    let pool = ThreadPool::new(4);
    let completed = AtomicUsize::new(0);
    for round in 0..50 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for_each(64, Schedule::Dynamic { chunk: 3 }, |i| {
                if i == round {
                    panic!("induced panic in round {round}");
                }
            });
        }));
        assert!(result.is_err(), "round {round}: panic did not propagate");

        let stats = pool.parallel_for_each(128, Schedule::StaticBlock, |_| {
            completed.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(stats.total_items(), 128, "round {round}: pool wedged");
    }
    assert_eq!(completed.load(Ordering::Relaxed), 50 * 128);
}

/// Panics from several workers in the same region collapse into one
/// propagated panic, and the join still completes.
#[test]
fn simultaneous_panics_join_cleanly() {
    let pool = ThreadPool::new(8);
    for _ in 0..20 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_region(&|_tid| {
                panic!("every worker panics");
            });
        }));
        assert!(result.is_err());
        // All eight workers must be back in their receive loops.
        let stats = pool.parallel_for_each(8, Schedule::StaticBlock, |_| {});
        assert_eq!(stats.items_per_thread.len(), 8);
        assert_eq!(stats.total_items(), 8);
    }
}

/// A panic in one region does not leak into the accounting of later
/// regions (`regions_run` keeps counting, stats stay exact).
#[test]
fn accounting_is_exact_across_panics() {
    let pool = ThreadPool::new(3);
    let before = pool.regions_run();
    let _ = catch_unwind(AssertUnwindSafe(|| {
        pool.parallel_for_each(10, Schedule::StaticBlock, |i| {
            if i == 5 {
                panic!("boom");
            }
        });
    }));
    let stats = pool.parallel_for_each(300, Schedule::Guided { min_chunk: 2 }, |_| {});
    assert_eq!(stats.total_items(), 300);
    assert!((stats.imbalance() - 1.0).abs() < 3.0, "stats corrupted");
    // Both the panicked and the clean region were counted as run.
    assert_eq!(pool.regions_run(), before + 2);
}

/// Panics race with heavy concurrent use from multiple pools without
/// deadlock (regression stress for the join protocol's panic path).
#[test]
fn many_pools_panicking_concurrently() {
    std::thread::scope(|s| {
        for p in 0..4 {
            s.spawn(move || {
                let pool = ThreadPool::new(2 + p % 3);
                for round in 0..10 {
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        pool.parallel_for_each(32, Schedule::Dynamic { chunk: 1 }, |i| {
                            if i % 7 == round % 7 {
                                panic!("pool {p} round {round}");
                            }
                        });
                    }));
                    let stats = pool.parallel_for_each(32, Schedule::StaticBlock, |_| {});
                    assert_eq!(stats.total_items(), 32);
                }
            });
        }
    });
}
