//! Work-queue stress: concurrent external submission, drain-while-
//! submitting, and panic propagation. Mirrors `panic_stress.rs` — a
//! poisoned queue must fail loudly (panicking `submit`/`drain`) instead
//! of deadlocking, and both the queue (after `clear_poison`) and the
//! pool must stay fully usable afterwards.
//!
//! Run this suite both ways (the behaviour must not depend on test
//! parallelism):
//!
//! ```text
//! cargo test -p perfport-pool --test queue_stress
//! RUST_TEST_THREADS=1 cargo test -p perfport-pool --test queue_stress
//! ```

use perfport_pool::{Schedule, ThreadPool, WorkQueue};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Many external threads submit concurrently while the main thread
/// drains: every task runs exactly once, none are lost.
#[test]
fn concurrent_external_submitters() {
    const SUBMITTERS: usize = 6;
    const PER_THREAD: usize = 200;
    let pool = ThreadPool::new(4);
    let queue = WorkQueue::new();
    let counts: Arc<Vec<AtomicUsize>> = Arc::new(
        (0..SUBMITTERS * PER_THREAD)
            .map(|_| AtomicUsize::new(0))
            .collect(),
    );
    std::thread::scope(|s| {
        for t in 0..SUBMITTERS {
            let queue = queue.clone();
            let counts = Arc::clone(&counts);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let counts = Arc::clone(&counts);
                    queue.submit(move || {
                        counts[t * PER_THREAD + i].fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        // Drain races the submitters: whatever one drain call misses
        // (submitted after its final empty observation), later calls
        // pick up. Keep draining until every submitted task has run.
        let mut ran = 0;
        while ran < SUBMITTERS * PER_THREAD {
            ran += queue.drain(&pool);
            std::thread::yield_now();
        }
    });
    assert_eq!(queue.pending(), 0);
    assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
}

/// A drain that is already running picks up tasks submitted mid-drain
/// as long as workers are popping; tasks landing after the final empty
/// observation are served by the next drain, never lost.
#[test]
fn drain_while_submitting() {
    let pool = ThreadPool::new(3);
    let queue = WorkQueue::new();
    let hits = Arc::new(AtomicUsize::new(0));
    for round in 0..20 {
        let before = hits.load(Ordering::Relaxed);
        // Seed tasks that themselves submit follow-ups (submission
        // genuinely concurrent with the drain's popping).
        for _ in 0..8 {
            let q = queue.clone();
            let hits = Arc::clone(&hits);
            queue.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                for _ in 0..3 {
                    let hits = Arc::clone(&hits);
                    q.submit(move || {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        let mut ran = queue.drain(&pool);
        while ran < 8 * 4 {
            ran += queue.drain(&pool);
        }
        assert_eq!(ran, 8 * 4, "round {round}: task lost or duplicated");
        assert_eq!(hits.load(Ordering::Relaxed), before + 8 * 4);
        assert!(queue.is_empty() && queue.pending() == 0);
    }
}

/// A panicking task propagates out of `drain`, poisons the queue, and
/// later `submit`/`drain` calls fail loudly — no deadlock, no silent
/// drop. `clear_poison` restores service and the pool stays usable
/// throughout.
#[test]
fn task_panic_poisons_the_queue_loudly() {
    let pool = ThreadPool::new(4);
    let queue = WorkQueue::new();
    let ran = Arc::new(AtomicUsize::new(0));
    for round in 0..25 {
        for i in 0..16 {
            let ran = Arc::clone(&ran);
            queue.submit(move || {
                if i == 7 {
                    panic!("induced task panic in round {round}");
                }
                ran.fetch_add(1, Ordering::Relaxed);
            });
        }
        let result = catch_unwind(AssertUnwindSafe(|| queue.drain(&pool)));
        assert!(result.is_err(), "round {round}: panic did not propagate");
        assert!(queue.is_poisoned(), "round {round}: queue not poisoned");

        // Loud failure, not deadlock: both entry points panic fast.
        assert!(catch_unwind(AssertUnwindSafe(|| queue.submit(|| {}))).is_err());
        assert!(catch_unwind(AssertUnwindSafe(|| queue.drain(&pool))).is_err());
        assert!(catch_unwind(AssertUnwindSafe(|| queue.drain_serial())).is_err());

        // Acknowledge and resume: leftover tasks still run.
        queue.clear_poison();
        queue.drain(&pool);
        assert!(queue.is_empty() && !queue.is_poisoned());

        // The pool itself survived the panic round (panic_stress.rs
        // invariant, re-checked through the queue's usage pattern).
        let stats = pool.parallel_for_each(64, Schedule::Dynamic { chunk: 3 }, |_| {});
        assert_eq!(stats.total_items(), 64, "round {round}: pool wedged");
    }
    // Every non-panicking task ran exactly once overall (15 per round
    // across the poisoned drain and the post-clear drain).
    assert_eq!(ran.load(Ordering::Relaxed), 25 * 15);
}

/// Simultaneous panics from several tasks in one drain collapse into one
/// propagated panic and a single coherent poisoned state.
#[test]
fn simultaneous_task_panics_join_cleanly() {
    let pool = ThreadPool::new(8);
    let queue = WorkQueue::new();
    for _ in 0..10 {
        for _ in 0..8 {
            queue.submit(|| panic!("every task panics"));
        }
        assert!(catch_unwind(AssertUnwindSafe(|| queue.drain(&pool))).is_err());
        assert!(queue.is_poisoned());
        queue.clear_poison();
        // Whatever tasks the panic round left queued are abandoned by
        // clearing: run them (each panics again) or clear the backlog.
        while !queue.is_empty() {
            let _ = catch_unwind(AssertUnwindSafe(|| queue.drain_serial()));
            queue.clear_poison();
        }
        assert_eq!(queue.drain(&pool), 0);
    }
    let stats = pool.parallel_for_each(8, Schedule::StaticBlock, |_| {});
    assert_eq!(stats.total_items(), 8);
}

/// Queues race with heavy concurrent use from multiple pools without
/// deadlock (the queue-flavoured sibling of panic_stress's multi-pool
/// test).
#[test]
fn many_queues_panicking_concurrently() {
    std::thread::scope(|s| {
        for p in 0..4 {
            s.spawn(move || {
                let pool = ThreadPool::new(2 + p % 3);
                let queue = WorkQueue::new();
                for round in 0..10 {
                    for i in 0..12 {
                        queue.submit(move || {
                            if i % 5 == round % 5 {
                                panic!("queue {p} round {round}");
                            }
                        });
                    }
                    let _ = catch_unwind(AssertUnwindSafe(|| queue.drain(&pool)));
                    queue.clear_poison();
                    while !queue.is_empty() {
                        let _ = catch_unwind(AssertUnwindSafe(|| queue.drain_serial()));
                        queue.clear_poison();
                    }
                    let done = queue.drain(&pool);
                    assert_eq!(done, 0, "queue {p} round {round}: backlog survived");
                }
            });
        }
    });
}
