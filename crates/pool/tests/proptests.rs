//! Property-based tests for scheduling invariants: every schedule must be
//! an exact partition of the iteration space, for any loop size, team
//! size, and chunk parameter.

use perfport_pool::{Schedule, StaticChunks, ThreadPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn check_static_partition(schedule: Schedule, n: usize, threads: usize) {
    let mut hits = vec![0u8; n];
    for t in 0..threads {
        for c in StaticChunks::new(schedule, n, threads, t) {
            assert!(c.end <= n, "chunk escapes the range");
            for i in c.range() {
                hits[i] += 1;
            }
        }
    }
    assert!(hits.iter().all(|&h| h == 1), "{schedule:?} not a partition");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn static_block_partitions(n in 0usize..5000, threads in 1usize..65) {
        check_static_partition(Schedule::StaticBlock, n, threads);
    }

    #[test]
    fn static_chunked_partitions(
        n in 0usize..5000,
        threads in 1usize..65,
        chunk in 1usize..200,
    ) {
        check_static_partition(Schedule::StaticChunked { chunk }, n, threads);
    }

    /// Static block chunks are contiguous, ordered by thread id, and their
    /// sizes never differ by more than one.
    #[test]
    fn static_block_shape(n in 0usize..5000, threads in 1usize..65) {
        let mut end = 0;
        let mut sizes = Vec::new();
        for t in 0..threads {
            let chunks: Vec<_> = StaticChunks::new(Schedule::StaticBlock, n, threads, t).collect();
            prop_assert!(chunks.len() <= 1);
            if let Some(c) = chunks.first() {
                prop_assert_eq!(c.start, end);
                end = c.end;
                sizes.push(c.len());
            }
        }
        prop_assert_eq!(end, n);
        if let (Some(max), Some(min)) = (sizes.iter().max(), sizes.iter().min()) {
            prop_assert!(max - min <= 1);
        }
    }

    /// Running a loop on a real pool covers each index exactly once under
    /// every schedule family.
    #[test]
    fn pool_execution_partitions(
        n in 0usize..2000,
        threads in 1usize..9,
        chunk in 1usize..64,
        which in 0usize..4,
    ) {
        let schedule = match which {
            0 => Schedule::StaticBlock,
            1 => Schedule::StaticChunked { chunk },
            2 => Schedule::Dynamic { chunk },
            _ => Schedule::Guided { min_chunk: chunk },
        };
        let pool = ThreadPool::new(threads);
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let stats = pool.parallel_for_each(n, schedule, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        prop_assert_eq!(stats.total_items(), n);
        prop_assert!(stats.imbalance() >= 1.0 - 1e-12);
    }
}
