//! An OpenMP-like work-sharing runtime.
//!
//! The paper compares four CPU programming models that all reduce to the
//! same execution shape: a persistent team of worker threads, a `parallel
//! for` over an index space, a loop schedule (OpenMP `static`/`dynamic`/
//! `guided`, Julia `@threads :static`, Numba `prange`), and an optional
//! thread-affinity policy (`OMP_PROC_BIND`/`OMP_PLACES`, `JULIA_EXCLUSIVE`;
//! Numba notably has none). This crate is that substrate, built from
//! scratch on `crossbeam` channels and `parking_lot` primitives:
//!
//! * [`ThreadPool`] — a persistent worker team with fork-join semantics and
//!   panic propagation (the "OpenMP runtime").
//! * [`Schedule`] — static (block or round-robin chunked), dynamic, and
//!   guided loop schedules, implemented exactly as the OpenMP 5.x
//!   specification describes them.
//! * [`CpuTopology`] / [`PinPolicy`] — affinity bookkeeping. Placement is
//!   *recorded*, not enforced with `sched_setaffinity` (no `libc`
//!   dependency, and containers routinely mask CPU sets); the analytical
//!   timing models in `perfport-machines` consume the recorded placement to
//!   model NUMA locality, which is the effect the paper attributes to
//!   pinning.
//! * [`RegionStats`] — per-region instrumentation: items and chunks per
//!   thread, load imbalance, fork-join overhead.
//! * [`WorkQueue`] — a submit-from-outside task queue drained by the pool's
//!   team, for serving workloads where work arrives continuously instead of
//!   as one up-front index space.
//! * [`TaskGraph`] — a dependency-driven task executor (message-passing
//!   readiness, no global barriers) with cycle detection, deterministic
//!   ordering, and `WorkQueue`-style panic→poison semantics; [`sched`]
//!   selects between it and the barrier constructs per process.
//! * [`SenseBarrier`] — a reusable sense-reversing barrier.
//! * [`DisjointSlice`] — safe disjoint mutable access for row-parallel
//!   kernels.
//! * [`CachePadded`] / [`CacheInfo`] — false-sharing padding for hot
//!   shared atomics, and cache capacities for cache-aware blocking.

mod barrier;
mod graph;
mod pad;
mod pool;
mod queue;
mod reduce;
pub mod sched;
mod schedule;
mod slice;
mod stats;
mod topology;

pub use barrier::SenseBarrier;
pub use graph::{CycleError, GraphStats, TaskGraph, TaskId};
pub use pad::CachePadded;
pub use pool::{ForContext, ThreadPool};
pub use queue::WorkQueue;
pub use sched::SchedMode;
pub use schedule::{Chunk, Schedule, StaticChunks};
pub use slice::DisjointSlice;
pub use stats::{sched_totals, RegionStats, SchedTotals};
pub use topology::{CacheInfo, CacheSource, CpuTopology, PinPolicy, Placement};
