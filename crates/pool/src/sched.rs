//! Process-wide scheduler-mode dispatch (`PERFPORT_SCHED`).
//!
//! The pool offers two execution disciplines for the hot paths that
//! support both: the classic fork-join **barrier** scheduler
//! (`parallel_for`/`parallel_map`) and the dependency-driven **graph**
//! scheduler ([`crate::TaskGraph`]). Which one a process uses is decided
//! exactly once, the same way the GEMM crate resolves its SIMD ISA:
//!
//! 1. A CLI override (`--sched`) calls [`force`] before first use.
//! 2. Otherwise the `PERFPORT_SCHED` environment variable decides.
//! 3. Otherwise the default is [`SchedMode::Graph`].
//!
//! An unrecognised value is a hard configuration error: the process
//! prints the valid names and exits with status 2, never silently
//! falling back — a benchmark run with a misspelled scheduler would
//! otherwise measure the wrong thing.

use std::sync::OnceLock;

/// Which scheduling discipline multi-path entry points use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedMode {
    /// Fork-join with an implicit end-of-region barrier.
    Barrier,
    /// Dependency-driven task graph; no global barriers.
    Graph,
}

impl SchedMode {
    /// The stable lowercase name used by `--sched`, `PERFPORT_SCHED`,
    /// and provenance manifests.
    pub fn name(self) -> &'static str {
        match self {
            SchedMode::Barrier => "barrier",
            SchedMode::Graph => "graph",
        }
    }

    /// Parses a stable name back to a mode.
    pub fn from_name(name: &str) -> Option<SchedMode> {
        match name {
            "barrier" => Some(SchedMode::Barrier),
            "graph" => Some(SchedMode::Graph),
            _ => None,
        }
    }
}

impl std::fmt::Display for SchedMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Resolves a scheduler request to a mode. `None`, the empty string, and
/// `"auto"` select the default ([`SchedMode::Graph`]).
///
/// # Errors
///
/// A usage message listing the valid names when the request is not
/// recognised.
pub fn resolve(request: Option<&str>) -> Result<SchedMode, String> {
    match request {
        None | Some("") | Some("auto") => Ok(SchedMode::Graph),
        Some(name) => SchedMode::from_name(name)
            .ok_or_else(|| format!("unknown scheduler '{name}' (valid: barrier, graph, auto)")),
    }
}

static ACTIVE: OnceLock<SchedMode> = OnceLock::new();

/// The scheduler this process runs with, resolved once on first call
/// from `PERFPORT_SCHED` (unless [`force`] ran earlier). Exits with
/// status 2 on an unrecognised value.
pub fn active() -> SchedMode {
    *ACTIVE.get_or_init(|| {
        let request = std::env::var("PERFPORT_SCHED").ok();
        match resolve(request.as_deref()) {
            Ok(mode) => {
                perfport_telemetry::event("sched_decision", format!("mode={mode} source=env"));
                mode
            }
            Err(msg) => {
                eprintln!("PERFPORT_SCHED: {msg}");
                std::process::exit(2);
            }
        }
    })
}

/// Pins the process scheduler from a CLI flag. Must run before anything
/// consults [`active`]; takes precedence over `PERFPORT_SCHED`.
///
/// # Panics
///
/// Panics if the scheduler was already resolved to a different mode —
/// the dispatch is once-per-process, so a late override would leave
/// earlier work measured under the wrong label.
pub fn force(mode: SchedMode) {
    let got = *ACTIVE.get_or_init(|| {
        perfport_telemetry::event("sched_decision", format!("mode={mode} source=cli"));
        mode
    });
    assert_eq!(
        got, mode,
        "scheduler already resolved to '{got}'; --sched {mode} came too late"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for mode in [SchedMode::Barrier, SchedMode::Graph] {
            assert_eq!(SchedMode::from_name(mode.name()), Some(mode));
            assert_eq!(format!("{mode}"), mode.name());
        }
        assert_eq!(SchedMode::from_name("openmp"), None);
    }

    #[test]
    fn resolve_defaults_to_graph() {
        assert_eq!(resolve(None), Ok(SchedMode::Graph));
        assert_eq!(resolve(Some("")), Ok(SchedMode::Graph));
        assert_eq!(resolve(Some("auto")), Ok(SchedMode::Graph));
        assert_eq!(resolve(Some("barrier")), Ok(SchedMode::Barrier));
        assert_eq!(resolve(Some("graph")), Ok(SchedMode::Graph));
    }

    #[test]
    fn resolve_rejects_unknown_names_with_the_valid_list() {
        let err = resolve(Some("workstealing")).unwrap_err();
        assert!(err.contains("workstealing"));
        assert!(err.contains("barrier") && err.contains("graph"));
    }
}
