//! Disjoint mutable slice access for row-parallel kernels.
//!
//! A `parallel for` over matrix rows hands every row index to exactly one
//! thread (an invariant the schedules in this crate guarantee and test).
//! [`DisjointSlice`] turns that scheduling invariant into memory safety: it
//! wraps a `&mut [T]` and hands out non-overlapping row windows from
//! multiple threads, with bounds checks ensuring windows cannot overlap
//! unless the caller requests the same row twice — which the safety
//! contract forbids and debug assertions help catch.

use std::cell::UnsafeCell;
use std::marker::PhantomData;

/// A shareable view over a mutable slice that can hand out disjoint
/// mutable windows concurrently.
pub struct DisjointSlice<'a, T> {
    data: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: the type only allows access to disjoint windows (per the `row`
// contract); `T: Send` data may move between threads, and the windows act
// like `&mut T` handed to different threads.
unsafe impl<T: Send> Sync for DisjointSlice<'_, T> {}
unsafe impl<T: Send> Send for DisjointSlice<'_, T> {}

impl<'a, T> DisjointSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointSlice {
            data: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the mutable window `[row * width, (row + 1) * width)`.
    ///
    /// # Safety
    ///
    /// For the lifetime of the returned slice no other live window may
    /// include any index of the same row — i.e. each `row` must be claimed
    /// by at most one thread at a time. The work-sharing schedules in this
    /// crate assign each index to exactly one thread, which discharges this
    /// obligation when `row` comes from a schedule chunk.
    ///
    /// # Panics
    ///
    /// Panics if the window would run past the end of the slice.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn row(&self, row: usize, width: usize) -> &mut [T] {
        let start = row.checked_mul(width).expect("row window offset overflows");
        assert!(
            start + width <= self.len,
            "row window [{start}, {}) out of bounds (len {})",
            start + width,
            self.len
        );
        // SAFETY: bounds checked above; disjointness is the caller's
        // contract.
        unsafe { std::slice::from_raw_parts_mut(self.data.add(start), width) }
    }

    /// Returns a single element as a mutable reference.
    ///
    /// # Safety
    ///
    /// Same contract as [`DisjointSlice::row`] with `width == 1`: no other
    /// live reference to index `i`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn at(&self, i: usize) -> &mut T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        // SAFETY: bounds checked; exclusivity is the caller's contract.
        unsafe { &mut *self.data.add(i) }
    }
}

/// A `Sync` array of per-thread slots; used for instrumentation and
/// reductions where each thread touches only its own index. Each slot is
/// its own `UnsafeCell`, so concurrent access to *different* slots never
/// materialises aliasing references.
pub(crate) struct SlotCell<T>(Box<[UnsafeCell<T>]>);

unsafe impl<T: Send> Sync for SlotCell<T> {}

impl<T: Default> SlotCell<T> {
    pub(crate) fn new(n: usize) -> Self {
        SlotCell((0..n).map(|_| UnsafeCell::new(T::default())).collect())
    }

    /// Writes `value` to `slot`.
    ///
    /// # Safety
    ///
    /// Each slot must be accessed by at most one thread per region, and
    /// reads (`into_inner`) must happen only after all writers joined.
    pub(crate) unsafe fn set(&self, slot: usize, value: T) {
        // SAFETY: slot exclusivity is the caller's contract.
        unsafe { *self.0[slot].get() = value };
    }

    /// Runs `f` with mutable access to `slot`.
    ///
    /// # Safety
    ///
    /// Same contract as [`SlotCell::set`].
    pub(crate) unsafe fn with<R>(&self, slot: usize, f: impl FnOnce(&mut T) -> R) -> R {
        // SAFETY: slot exclusivity is the caller's contract.
        f(unsafe { &mut *self.0[slot].get() })
    }

    pub(crate) fn into_inner(self) -> Vec<T> {
        self.0
            .into_vec()
            .into_iter()
            .map(UnsafeCell::into_inner)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_disjoint_views() {
        let mut data = vec![0u32; 12];
        let ds = DisjointSlice::new(&mut data);
        // SAFETY: rows 0..3 accessed once each.
        unsafe {
            for r in 0..3 {
                let row = ds.row(r, 4);
                for (j, x) in row.iter_mut().enumerate() {
                    *x = (r * 4 + j) as u32;
                }
            }
        }
        assert_eq!(data, (0..12).collect::<Vec<u32>>());
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let n = 64;
        let width = 128;
        let mut data = vec![0usize; n * width];
        let ds = DisjointSlice::new(&mut data);
        std::thread::scope(|s| {
            for t in 0..4 {
                let ds = &ds;
                s.spawn(move || {
                    for r in (t..n).step_by(4) {
                        // SAFETY: r is visited by exactly one thread
                        // (stride-4 partition).
                        let row = unsafe { ds.row(r, width) };
                        for x in row.iter_mut() {
                            *x = r + 1;
                        }
                    }
                });
            }
        });
        for r in 0..n {
            assert!(data[r * width..(r + 1) * width].iter().all(|&x| x == r + 1));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_row_panics() {
        let mut data = vec![0u8; 10];
        let ds = DisjointSlice::new(&mut data);
        // SAFETY: sole access; panics on bounds before any aliasing.
        let _ = unsafe { ds.row(2, 4) };
    }

    #[test]
    fn at_gives_single_elements() {
        let mut data = vec![1i64, 2, 3];
        let ds = DisjointSlice::new(&mut data);
        // SAFETY: indices accessed exclusively.
        unsafe {
            *ds.at(1) = 20;
        }
        assert_eq!(data, vec![1, 20, 3]);
    }

    #[test]
    fn len_and_empty() {
        let mut data = vec![0u8; 5];
        let ds = DisjointSlice::new(&mut data);
        assert_eq!(ds.len(), 5);
        assert!(!ds.is_empty());
        let mut empty: Vec<u8> = vec![];
        let ds = DisjointSlice::new(&mut empty);
        assert!(ds.is_empty());
    }
}
