//! A submit-from-outside work queue on top of the fork-join pool.
//!
//! Every other entry point of this crate assumes work enters through a
//! coordinator-owned parallel region (`parallel_for` and friends): the
//! caller describes the whole index space up front and blocks until the
//! team finishes it. A *serving* workload inverts that shape — tasks
//! arrive continuously from outside the team, and new work must be
//! enqueueable while earlier work is still draining. [`WorkQueue`] is
//! that inversion: any thread may [`submit`] boxed tasks at any time, and
//! [`drain`] turns the pool's whole team loose on the queue until it is
//! observed empty.
//!
//! Two properties the batched-GEMM serving path leans on:
//!
//! * **Submit/drain overlap.** `submit` never blocks on a running drain;
//!   workers pick freshly submitted tasks up within the same drain as
//!   long as they are still popping (tasks may also submit follow-up
//!   tasks, which the same drain executes).
//! * **Loud poisoning.** A panicking task propagates out of [`drain`]
//!   (via the pool's panic protocol) and leaves the queue *poisoned*:
//!   every later `submit`/`drain` panics with a clear message instead of
//!   silently dropping work or deadlocking. [`WorkQueue::clear_poison`]
//!   restores an explicitly acknowledged queue, mirroring
//!   `std::sync::Mutex` semantics.
//!
//! [`submit`]: WorkQueue::submit
//! [`drain`]: WorkQueue::drain

use crate::pool::ThreadPool;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

type Task = Box<dyn FnOnce() + Send + 'static>;

struct QueueInner {
    tasks: Mutex<VecDeque<Task>>,
    /// Tasks ever submitted (monotonic).
    submitted: AtomicUsize,
    /// Tasks that ran to completion (monotonic).
    completed: AtomicUsize,
    /// Set when a task panicked during a drain.
    poisoned: AtomicBool,
}

/// A cloneable handle to a shared task queue drained by a [`ThreadPool`]
/// team (the module-level docs state the ordering and poison contract).
///
/// ```
/// use perfport_pool::{ThreadPool, WorkQueue};
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(4);
/// let queue = WorkQueue::new();
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..100 {
///     let hits = Arc::clone(&hits);
///     queue.submit(move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// assert_eq!(queue.drain(&pool), 100);
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
#[derive(Clone)]
pub struct WorkQueue {
    inner: Arc<QueueInner>,
}

impl Default for WorkQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkQueue {
    /// An empty queue.
    pub fn new() -> Self {
        WorkQueue {
            inner: Arc::new(QueueInner {
                tasks: Mutex::new(VecDeque::new()),
                submitted: AtomicUsize::new(0),
                completed: AtomicUsize::new(0),
                poisoned: AtomicBool::new(false),
            }),
        }
    }

    fn assert_healthy(&self) {
        assert!(
            !self.inner.poisoned.load(Ordering::Acquire),
            "work queue is poisoned: a task panicked during an earlier drain \
             (clear_poison() to acknowledge and reuse)"
        );
    }

    /// Enqueues a task. Callable from any thread, including while another
    /// thread is draining — an in-flight drain picks the task up if its
    /// workers are still popping, otherwise the next drain runs it.
    ///
    /// # Panics
    ///
    /// Panics if the queue is poisoned.
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        self.assert_healthy();
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        let depth = {
            let mut tasks = self.inner.tasks.lock();
            tasks.push_back(Box::new(task));
            tasks.len()
        };
        perfport_telemetry::counter_add("queue/submitted", 1);
        perfport_telemetry::gauge_set("queue/depth", depth as u64);
    }

    /// Pops one task, or `None` when the queue is currently empty.
    fn pop(&self) -> Option<Task> {
        self.inner.tasks.lock().pop_front()
    }

    /// Tasks submitted but not yet completed (queued plus in-flight).
    pub fn pending(&self) -> usize {
        self.inner.submitted.load(Ordering::Relaxed) - self.inner.completed.load(Ordering::Relaxed)
    }

    /// Tasks currently queued (excluding in-flight ones).
    pub fn len(&self) -> usize {
        self.inner.tasks.lock().len()
    }

    /// `true` when nothing is queued (in-flight tasks may still exist).
    pub fn is_empty(&self) -> bool {
        self.inner.tasks.lock().is_empty()
    }

    /// Whether a task panic has poisoned the queue.
    pub fn is_poisoned(&self) -> bool {
        self.inner.poisoned.load(Ordering::Acquire)
    }

    /// Acknowledges a poisoning and makes the queue usable again. Tasks
    /// that were queued when the panic struck remain queued and run on
    /// the next drain.
    pub fn clear_poison(&self) {
        self.inner.poisoned.store(false, Ordering::Release);
    }

    /// Runs queued tasks on the pool's whole team until the queue is
    /// observed empty, then returns how many tasks completed during this
    /// call. Tasks submitted concurrently are executed if a worker is
    /// still popping when they arrive; tasks submitted after the final
    /// empty observation wait for the next drain.
    ///
    /// When this returns, every task it executed has fully finished (the
    /// region join is the happens-before edge), so results written by
    /// those tasks are visible to the caller.
    ///
    /// # Panics
    ///
    /// Propagates the first task panic (after marking the queue
    /// poisoned), and panics immediately if the queue is already
    /// poisoned.
    pub fn drain(&self, pool: &ThreadPool) -> usize {
        perfport_telemetry::event("queue_drain_begin", format!("depth={}", self.len()));
        let ran = AtomicUsize::new(0);
        loop {
            self.assert_healthy();
            if self.is_empty() {
                let ran = ran.into_inner();
                perfport_telemetry::counter_add("queue/drained", ran as u64);
                perfport_telemetry::event("queue_drain_end", format!("ran={ran}"));
                return ran;
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                pool.run_region(&|_tid| {
                    while let Some(task) = self.pop() {
                        task();
                        self.inner.completed.fetch_add(1, Ordering::Relaxed);
                        ran.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }));
            if let Err(panic) = result {
                self.inner.poisoned.store(true, Ordering::Release);
                perfport_telemetry::counter_add("queue/poisoned", 1);
                let msg = perfport_telemetry::panic_message(&*panic);
                perfport_telemetry::event("queue_poison", msg.clone());
                perfport_telemetry::flight_dump("queue_poison", &msg);
                resume_unwind(panic);
            }
        }
    }

    /// [`WorkQueue::drain`] on the calling thread alone — the
    /// deterministic single-worker path (useful when no pool exists or a
    /// serving harness runs with one job).
    ///
    /// # Panics
    ///
    /// Same contract as [`WorkQueue::drain`].
    pub fn drain_serial(&self) -> usize {
        perfport_telemetry::event("queue_drain_begin", format!("depth={} serial", self.len()));
        let mut ran = 0usize;
        loop {
            self.assert_healthy();
            let Some(task) = self.pop() else {
                perfport_telemetry::counter_add("queue/drained", ran as u64);
                perfport_telemetry::event("queue_drain_end", format!("ran={ran} serial"));
                return ran;
            };
            let result = catch_unwind(AssertUnwindSafe(task));
            if let Err(panic) = result {
                self.inner.poisoned.store(true, Ordering::Release);
                perfport_telemetry::counter_add("queue/poisoned", 1);
                let msg = perfport_telemetry::panic_message(&*panic);
                perfport_telemetry::event("queue_poison", msg.clone());
                perfport_telemetry::flight_dump("queue_poison", &msg);
                resume_unwind(panic);
            }
            self.inner.completed.fetch_add(1, Ordering::Relaxed);
            ran += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn drain_runs_every_task_once() {
        let pool = ThreadPool::new(4);
        let queue = WorkQueue::new();
        let counts: Arc<Vec<AtomicUsize>> =
            Arc::new((0..200).map(|_| AtomicUsize::new(0)).collect());
        for i in 0..200 {
            let counts = Arc::clone(&counts);
            queue.submit(move || {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(queue.pending(), 200);
        assert_eq!(queue.drain(&pool), 200);
        assert_eq!(queue.pending(), 0);
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn drain_on_empty_queue_is_a_noop() {
        let pool = ThreadPool::new(2);
        let queue = WorkQueue::new();
        assert_eq!(queue.drain(&pool), 0);
        assert_eq!(queue.drain_serial(), 0);
        assert!(queue.is_empty() && !queue.is_poisoned());
    }

    #[test]
    fn tasks_may_submit_follow_up_tasks() {
        let pool = ThreadPool::new(3);
        let queue = WorkQueue::new();
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let q = queue.clone();
            let hits = Arc::clone(&hits);
            queue.submit(move || {
                hits.fetch_add(1, Ordering::Relaxed);
                let hits = Arc::clone(&hits);
                q.submit(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
        // One drain call handles both generations: the outer loop re-runs
        // a region if follow-ups landed after the workers went idle.
        assert_eq!(queue.drain(&pool), 20);
        assert_eq!(hits.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn drain_serial_runs_on_the_calling_thread() {
        let queue = WorkQueue::new();
        let caller = std::thread::current().id();
        let seen = Arc::new(Mutex::new(Vec::new()));
        for i in 0..5 {
            let seen = Arc::clone(&seen);
            queue.submit(move || {
                seen.lock().push((i, std::thread::current().id()));
            });
        }
        assert_eq!(queue.drain_serial(), 5);
        let seen = seen.lock();
        assert_eq!(
            seen.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert!(seen.iter().all(|(_, t)| *t == caller));
    }
}
