//! A reusable sense-reversing barrier.
//!
//! OpenMP places an implicit barrier at the end of every worksharing
//! construct; the pool uses this barrier to implement that join. The
//! sense-reversing design (one atomic counter plus a phase flag) is the
//! textbook centralised barrier: the last thread to arrive flips the sense,
//! releasing everyone spinning on it, and the flip itself makes the barrier
//! immediately reusable with no reset step.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A reusable barrier for a fixed-size team.
///
/// Waiters first spin briefly (cheap when the team is balanced, which is
/// the common case for a static GEMM schedule) and then fall back to
/// blocking on a condvar, so an imbalanced team does not burn cores.
pub struct SenseBarrier {
    team: usize,
    arrived: AtomicUsize,
    sense: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

/// How many times a waiter polls the sense flag before blocking.
const SPIN_LIMIT: u32 = 1 << 12;

impl SenseBarrier {
    /// Creates a barrier for a team of `team` threads.
    ///
    /// # Panics
    ///
    /// Panics if `team == 0`.
    pub fn new(team: usize) -> Self {
        assert!(team > 0, "barrier team must be non-empty");
        SenseBarrier {
            team,
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Team size the barrier was built for.
    pub fn team(&self) -> usize {
        self.team
    }

    /// Blocks until all `team` threads have called `wait` for this phase.
    /// Returns `true` on exactly one thread per phase (the last arriver),
    /// mirroring `std::sync::Barrier`'s leader result.
    pub fn wait(&self) -> bool {
        let my_sense = !self.sense.load(Ordering::Relaxed);
        // AcqRel: arrivals before the barrier happen-before releases after.
        let n = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if n == self.team {
            self.arrived.store(0, Ordering::Relaxed);
            // Release the new phase; pairs with the Acquire loads below.
            let _guard = self.lock.lock();
            self.sense.store(my_sense, Ordering::Release);
            self.cv.notify_all();
            return true;
        }
        let mut spins = 0;
        while self.sense.load(Ordering::Acquire) != my_sense {
            spins += 1;
            if spins < SPIN_LIMIT {
                std::hint::spin_loop();
            } else {
                let mut guard = self.lock.lock();
                if self.sense.load(Ordering::Acquire) != my_sense {
                    self.cv.wait(&mut guard);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn single_thread_barrier_is_a_noop_leader() {
        let b = SenseBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
        assert_eq!(b.team(), 1);
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        let team = 8;
        let phases = 50;
        let b = Arc::new(SenseBarrier::new(team));
        let leaders = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..team {
                let b = b.clone();
                let leaders = leaders.clone();
                s.spawn(move || {
                    for _ in 0..phases {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), phases);
    }

    #[test]
    fn barrier_separates_phases() {
        // Classic check: no thread may enter phase k+1 while another is
        // still in phase k.
        let team = 6;
        let phases = 100;
        let b = Arc::new(SenseBarrier::new(team));
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..team {
                let b = b.clone();
                let counter = counter.clone();
                s.spawn(move || {
                    for phase in 0..phases {
                        counter.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // After the barrier, everyone must have bumped the
                        // counter for this phase.
                        let seen = counter.load(Ordering::SeqCst);
                        assert!(seen >= (phase + 1) * team, "phase {phase}: saw {seen}");
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), team * phases);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_team_panics() {
        let _ = SenseBarrier::new(0);
    }
}
