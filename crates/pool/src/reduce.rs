//! Work-sharing reductions — the `#pragma omp parallel for reduction`
//! analogue.
//!
//! Each thread folds its chunks into a private accumulator; the
//! coordinator combines the per-thread partials in thread order after
//! the join, so a reduction over a commutative-associative operator is
//! deterministic for a fixed team size and schedule.

use crate::pool::{ForContext, ThreadPool};
use crate::schedule::{Chunk, Schedule};
use crate::slice::SlotCell;
use crate::stats::RegionStats;

impl ThreadPool {
    /// Reduces over `0..n`: `fold` accumulates a chunk into the thread's
    /// private accumulator (seeded with `identity`), and `combine` merges
    /// the per-thread partials in thread order.
    ///
    /// Returns the reduced value and the region statistics.
    pub fn parallel_reduce<T, Fold, Combine>(
        &self,
        n: usize,
        schedule: Schedule,
        identity: T,
        fold: Fold,
        combine: Combine,
    ) -> (T, RegionStats)
    where
        T: Clone + Send + Sync + Default,
        Fold: Fn(ForContext, Chunk, T) -> T + Sync,
        Combine: Fn(T, T) -> T,
    {
        let team = self.num_threads();
        let partials = SlotCell::<Option<T>>::new(team);
        let identity_ref = &identity;
        let stats =
            self.parallel_for_cells(n, schedule, &partials, |ctx, chunk, acc: &mut Option<T>| {
                let current = acc.take().unwrap_or_else(|| identity_ref.clone());
                *acc = Some(fold(ctx, chunk, current));
            });
        let mut result = identity;
        for partial in partials.into_inner().into_iter().flatten() {
            result = combine(result, partial);
        }
        (result, stats)
    }

    /// Sum reduction over per-index values — the common case.
    pub fn parallel_sum<F>(&self, n: usize, schedule: Schedule, value: F) -> (f64, RegionStats)
    where
        F: Fn(usize) -> f64 + Sync,
    {
        self.parallel_reduce(
            n,
            schedule,
            0.0f64,
            |_ctx, chunk, mut acc| {
                for i in chunk.range() {
                    acc += value(i);
                }
                acc
            },
            |a, b| a + b,
        )
    }

    /// Internal: a `parallel_for` where each thread also owns a mutable
    /// cell, threaded through every chunk it executes.
    fn parallel_for_cells<T, F>(
        &self,
        n: usize,
        schedule: Schedule,
        cells: &SlotCell<T>,
        body: F,
    ) -> RegionStats
    where
        T: Default + Clone + Send,
        F: Fn(ForContext, Chunk, &mut T) + Sync,
    {
        self.parallel_for(n, schedule, |ctx, chunk| {
            // SAFETY: each thread touches only its own slot, and the
            // region join orders these accesses before `into_inner`.
            unsafe {
                cells.with(ctx.thread_id, |cell| body(ctx, chunk, cell));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_closed_form() {
        let pool = ThreadPool::new(4);
        for schedule in [
            Schedule::StaticBlock,
            Schedule::Dynamic { chunk: 7 },
            Schedule::Guided { min_chunk: 3 },
        ] {
            let n = 10_001;
            let (sum, stats) = pool.parallel_sum(n, schedule, |i| i as f64);
            assert_eq!(sum, (n as f64 - 1.0) * n as f64 / 2.0, "{schedule:?}");
            assert_eq!(stats.total_items(), n);
        }
    }

    #[test]
    fn reduce_with_custom_monoid() {
        // Max reduction.
        let pool = ThreadPool::new(3);
        let data: Vec<i64> = (0..5000).map(|i| ((i * 37) % 4999) as i64).collect();
        let (max, _) = pool.parallel_reduce(
            data.len(),
            Schedule::StaticBlock,
            i64::MIN,
            |_ctx, chunk, acc| chunk.range().fold(acc, |m, i| m.max(data[i])),
            i64::max,
        );
        assert_eq!(max, *data.iter().max().unwrap());
    }

    #[test]
    fn dot_product_reduction() {
        let pool = ThreadPool::new(4);
        let x: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..1000).map(|i| 2.0 * i as f64).collect();
        let (dot, _) = pool.parallel_reduce(
            x.len(),
            Schedule::Dynamic { chunk: 64 },
            0.0,
            |_ctx, chunk, mut acc| {
                for i in chunk.range() {
                    acc += x[i] * y[i];
                }
                acc
            },
            |a, b| a + b,
        );
        let expect: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_eq!(dot, expect);
    }

    #[test]
    fn reduction_is_deterministic_for_fixed_team_and_static_schedule() {
        let pool = ThreadPool::new(5);
        let run = || {
            pool.parallel_sum(4096, Schedule::StaticBlock, |i| (i as f64).sin())
                .0
        };
        let a = run();
        let b = run();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn empty_reduction_returns_identity() {
        let pool = ThreadPool::new(2);
        let (sum, stats) = pool.parallel_sum(0, Schedule::StaticBlock, |_| 1.0);
        assert_eq!(sum, 0.0);
        assert_eq!(stats.total_items(), 0);
    }
}
