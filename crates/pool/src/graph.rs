//! A dependency-driven task-graph executor on the fork-join pool.
//!
//! Every other entry point of this crate is a *barrier* construct: a
//! `parallel_for` describes one index space and joins the whole team at
//! its end, so a region that packs a panel while the rest of the team
//! waits pays the full fork-join round trip per panel. [`TaskGraph`]
//! replaces that with message-passing readiness, the idiom the gridiron
//! `Automaton` runtimes use: each task names the tasks it depends on,
//! becomes *eligible* the instant its last upstream completion arrives,
//! and eligibility — not a barrier — is the only synchronisation between
//! tasks. One pool region hosts the whole graph; inside it workers pop
//! eligible tasks until every task has settled.
//!
//! Three contracts, mirrored from the rest of the crate:
//!
//! * **Cycle rejection.** [`TaskGraph::validate`] (and [`TaskGraph::run`]
//!   /[`TaskGraph::run_serial`], which call it) reject graphs with
//!   dependency cycles up front via Kahn's algorithm, instead of
//!   deadlocking a worker team at runtime.
//! * **Deterministic ordering.** Eligible tasks are claimed
//!   lowest-[`TaskId`] first from a min-heap, so the serial execution
//!   order ([`TaskGraph::run_serial`]) is a pure function of the graph,
//!   and the parallel claim order is reproducible given the same
//!   interleaving. Result determinism (the bitwise contracts upstream)
//!   comes from the dependency edges, never from scheduling luck.
//! * **Panic → poison.** A panicking task marks every transitive
//!   dependent *skipped* (their inputs never materialised), lets
//!   independent tasks finish, and re-raises the first panic payload to
//!   the caller after the region joins — the same loud-failure shape as
//!   [`crate::WorkQueue`]: no silent dropping, no deadlock.
//!
//! Per-worker idle nanoseconds (time spent parked waiting for a task to
//! become eligible) are measured for every run and exported through
//! [`GraphStats`] and the `pool/idle_ns` trace counter — the graph-mode
//! analogue of the fork-join overhead `parallel_for` reports.

use crate::pool::ThreadPool;
use crate::slice::SlotCell;
use crate::stats;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Identifies one task within its [`TaskGraph`]. Ids are dense and
/// allocated in [`TaskGraph::add`] order; the ordering doubles as the
/// deterministic tie-break among simultaneously eligible tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(usize);

impl TaskId {
    /// The dense index of this task (its [`TaskGraph::add`] rank).
    pub fn index(self) -> usize {
        self.0
    }
}

/// The error [`TaskGraph::validate`] reports for a graph whose
/// dependencies form a cycle: no topological order exists, so running it
/// would deadlock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// Tasks on or downstream of a cycle (every task Kahn's algorithm
    /// could not order).
    pub tasks: Vec<TaskId>,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task graph contains a dependency cycle ({} task(s) unorderable, first: {:?})",
            self.tasks.len(),
            self.tasks.first().map(|t| t.0)
        )
    }
}

impl std::error::Error for CycleError {}

type TaskBody<'env> = Box<dyn FnOnce() + Send + 'env>;

struct Node<'env> {
    body: Option<TaskBody<'env>>,
    deps: Vec<usize>,
}

/// A dependency graph of one-shot tasks, executed by a [`ThreadPool`]
/// team without barriers (see the module docs for the contracts).
///
/// Tasks may borrow from the enclosing scope (`'env`): [`TaskGraph::run`]
/// executes the whole graph inside a single pool region, and the
/// region's join protocol guarantees every borrow outlives every use —
/// the same soundness argument `parallel_for` relies on.
///
/// ```
/// use perfport_pool::{TaskGraph, ThreadPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let log = AtomicUsize::new(0);
/// let mut g = TaskGraph::new();
/// // A diamond: a before b and c, both before d.
/// let a = g.add(&[], || {
///     log.fetch_add(1, Ordering::SeqCst);
/// });
/// let b = g.add(&[a], || {
///     log.fetch_add(10, Ordering::SeqCst);
/// });
/// let c = g.add(&[a], || {
///     log.fetch_add(10, Ordering::SeqCst);
/// });
/// let d = g.add(&[b, c], || {
///     assert_eq!(log.load(Ordering::SeqCst), 21);
/// });
/// assert!(d > c && c > b && b > a);
/// let stats = g.run(&pool);
/// assert_eq!(stats.executed, 4);
/// ```
#[derive(Default)]
pub struct TaskGraph<'env> {
    nodes: Vec<Node<'env>>,
}

impl<'env> TaskGraph<'env> {
    /// An empty graph.
    pub fn new() -> Self {
        TaskGraph { nodes: Vec::new() }
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no tasks have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a task that becomes eligible once every task in `deps` has
    /// completed, and returns its id. Duplicate dependencies are
    /// tolerated (each counts once).
    ///
    /// # Panics
    ///
    /// Panics if a dependency id does not name an already-added task
    /// (edges added here always point backwards, so they can never form
    /// a cycle; [`TaskGraph::add_dependency`] is the general — and
    /// therefore validated — edge constructor).
    pub fn add(&mut self, deps: &[TaskId], body: impl FnOnce() + Send + 'env) -> TaskId {
        let id = self.nodes.len();
        let mut unique: Vec<usize> = Vec::with_capacity(deps.len());
        for d in deps {
            assert!(d.0 < id, "dependency {:?} does not name an earlier task", d);
            if !unique.contains(&d.0) {
                unique.push(d.0);
            }
        }
        self.nodes.push(Node {
            body: Some(Box::new(body)),
            deps: unique,
        });
        TaskId(id)
    }

    /// Adds a dependency edge `dep → task` between two existing tasks
    /// after the fact (e.g. a buffer-reuse constraint discovered while
    /// enumerating later tasks). Unlike [`TaskGraph::add`] this can
    /// express forward edges — and therefore cycles, which
    /// [`TaskGraph::validate`] exists to reject.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range or `task == dep`.
    pub fn add_dependency(&mut self, task: TaskId, dep: TaskId) {
        assert!(task.0 < self.nodes.len(), "unknown task {task:?}");
        assert!(dep.0 < self.nodes.len(), "unknown dependency {dep:?}");
        assert_ne!(task, dep, "a task cannot depend on itself");
        let deps = &mut self.nodes[task.0].deps;
        if !deps.contains(&dep.0) {
            deps.push(dep.0);
        }
    }

    /// Checks the graph admits a topological order (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// [`CycleError`] naming every task on or downstream of a dependency
    /// cycle.
    pub fn validate(&self) -> Result<(), CycleError> {
        let n = self.nodes.len();
        let mut pending: Vec<usize> = self.nodes.iter().map(|node| node.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (id, node) in self.nodes.iter().enumerate() {
            for &d in &node.deps {
                dependents[d].push(id);
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| pending[i] == 0).collect();
        let mut ordered = 0usize;
        while let Some(t) = ready.pop() {
            ordered += 1;
            for &d in &dependents[t] {
                pending[d] -= 1;
                if pending[d] == 0 {
                    ready.push(d);
                }
            }
        }
        if ordered == n {
            return Ok(());
        }
        Err(CycleError {
            tasks: (0..n).filter(|&i| pending[i] > 0).map(TaskId).collect(),
        })
    }

    /// Executes the graph on the pool's whole team inside one parallel
    /// region and returns the run's instrumentation.
    ///
    /// Workers claim eligible tasks lowest-id first; a task's completion
    /// is published to its dependents with release/acquire ordering, so
    /// everything a task wrote is visible to every task that names it as
    /// a dependency (the happens-before edge pipelined users rely on).
    ///
    /// # Panics
    ///
    /// Panics with [`CycleError`]'s message if the graph has a cycle,
    /// and re-raises the first task panic after every reachable task has
    /// settled (dependents of the panicking task are skipped — see the
    /// module docs).
    pub fn run(self, pool: &ThreadPool) -> GraphStats {
        if let Err(cycle) = self.validate() {
            panic!("{cycle}");
        }
        let team = pool.num_threads();
        let rt = Runtime::new(self.nodes);
        let tasks = SlotCell::<usize>::new(team);
        let idle = SlotCell::<Duration>::new(team);
        let started = Instant::now();
        pool.run_region(&|tid| {
            let (my_tasks, my_idle) = rt.worker_loop();
            // SAFETY: each worker writes only its own slot; the
            // coordinator reads after the join.
            unsafe {
                tasks.set(tid, my_tasks);
                idle.set(tid, my_idle);
            }
        });
        let elapsed = started.elapsed();
        let stats = GraphStats {
            executed: rt.executed.load(Ordering::Relaxed),
            skipped: rt.skipped.load(Ordering::Relaxed),
            tasks_per_worker: tasks.into_inner(),
            idle_per_worker: idle.into_inner(),
            elapsed,
        };
        stats.publish();
        if let Some(payload) = rt.panic.lock().take() {
            resume_unwind(payload);
        }
        stats
    }

    /// Executes the graph on the calling thread alone, in the
    /// deterministic lowest-id-first topological order — the serial
    /// reference for graph-mode bitwise contracts.
    ///
    /// # Panics
    ///
    /// Same contract as [`TaskGraph::run`].
    pub fn run_serial(self) -> GraphStats {
        if let Err(cycle) = self.validate() {
            panic!("{cycle}");
        }
        let total = self.nodes.len();
        let rt = Runtime::new(self.nodes);
        let started = Instant::now();
        let (tasks, idle) = rt.worker_loop();
        debug_assert_eq!(tasks, total);
        let stats = GraphStats {
            executed: rt.executed.load(Ordering::Relaxed),
            skipped: rt.skipped.load(Ordering::Relaxed),
            tasks_per_worker: vec![tasks],
            idle_per_worker: vec![idle],
            elapsed: started.elapsed(),
        };
        stats.publish();
        if let Some(payload) = rt.panic.lock().take() {
            resume_unwind(payload);
        }
        stats
    }
}

/// Instrumentation of one [`TaskGraph`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Tasks whose bodies ran to completion.
    pub executed: usize,
    /// Tasks skipped because an upstream task panicked.
    pub skipped: usize,
    /// Tasks settled (executed or skipped) by each worker.
    pub tasks_per_worker: Vec<usize>,
    /// Time each worker spent parked with no eligible task — the
    /// graph-mode analogue of barrier wait.
    pub idle_per_worker: Vec<Duration>,
    /// Wall-clock time of the whole run, including fork and join.
    pub elapsed: Duration,
}

impl GraphStats {
    /// Total idle time across the team.
    pub fn total_idle(&self) -> Duration {
        self.idle_per_worker.iter().sum()
    }

    /// Records the run in the process-wide scheduling totals and emits
    /// the `pool/idle_ns` trace counter.
    fn publish(&self) {
        let idle_ns = self.total_idle().as_nanos().min(u128::from(u64::MAX)) as u64;
        stats::record_idle(idle_ns);
        perfport_telemetry::counter_add("pool/idle_ns", idle_ns);
        perfport_telemetry::observe(
            "graph/run_ns",
            self.elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
        );
        if perfport_trace::enabled() {
            perfport_trace::counter("pool", "idle_ns", idle_ns as f64);
        }
    }
}

/// The shared execution state of one running graph.
struct Runtime<'env> {
    /// Each body is taken exactly once, by the worker that claims the
    /// task (the mutex is uncontended: one lock per task lifetime).
    bodies: Vec<Mutex<Option<TaskBody<'env>>>>,
    /// Unfinished upstream count per task; a task is pushed to `ready`
    /// by whichever completion decrements it to zero.
    pending: Vec<AtomicUsize>,
    /// Set when an upstream task panicked or was itself skipped.
    skip: Vec<AtomicBool>,
    dependents: Vec<Vec<usize>>,
    /// Eligible tasks, popped lowest-id first.
    ready: Mutex<BinaryHeap<Reverse<usize>>>,
    /// Wakes parked workers when tasks become eligible or the run ends.
    cv: Condvar,
    completed: AtomicUsize,
    total: usize,
    executed: AtomicUsize,
    skipped: AtomicUsize,
    /// First panic payload; re-raised by the coordinator after the join.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl<'env> Runtime<'env> {
    fn new(nodes: Vec<Node<'env>>) -> Self {
        let total = nodes.len();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); total];
        let mut pending = Vec::with_capacity(total);
        let mut bodies = Vec::with_capacity(total);
        let mut initial: Vec<usize> = Vec::new();
        for (id, node) in nodes.into_iter().enumerate() {
            for &d in &node.deps {
                dependents[d].push(id);
            }
            if node.deps.is_empty() {
                initial.push(id);
            }
            pending.push(AtomicUsize::new(node.deps.len()));
            bodies.push(Mutex::new(node.body));
        }
        Runtime {
            bodies,
            pending,
            skip: (0..total).map(|_| AtomicBool::new(false)).collect(),
            dependents,
            ready: Mutex::new(initial.into_iter().map(Reverse).collect()),
            cv: Condvar::new(),
            completed: AtomicUsize::new(0),
            total,
            executed: AtomicUsize::new(0),
            skipped: AtomicUsize::new(0),
            panic: Mutex::new(None),
        }
    }

    /// Claims and settles tasks until every task in the graph has
    /// completed; returns this worker's settled-task count and idle
    /// time.
    fn worker_loop(&self) -> (usize, Duration) {
        let mut settled = 0usize;
        let mut idle = Duration::ZERO;
        loop {
            let (task, eligible_left) = {
                let mut ready = self.ready.lock();
                loop {
                    if let Some(Reverse(t)) = ready.pop() {
                        break (t, ready.len());
                    }
                    // Acquire pairs with the Release increment in
                    // `finish`: once every task reads complete, their
                    // writes are visible here.
                    if self.completed.load(Ordering::Acquire) == self.total {
                        return (settled, idle);
                    }
                    let t0 = Instant::now();
                    self.cv.wait(&mut ready);
                    idle += t0.elapsed();
                }
            };
            // Depth of the eligible set right after this claim — how
            // much ready parallelism the executor is sitting on.
            perfport_telemetry::gauge_set("graph/eligible_depth", eligible_left as u64);
            perfport_telemetry::event("task_claim", format!("task={task}"));
            self.settle(task);
            settled += 1;
        }
    }

    /// Runs (or skips) one claimed task and publishes its completion.
    fn settle(&self, task: usize) {
        let failed = if self.skip[task].load(Ordering::Acquire) {
            self.skipped.fetch_add(1, Ordering::Relaxed);
            perfport_telemetry::counter_add("graph/tasks_skipped", 1);
            perfport_telemetry::event("task_skip", format!("task={task} upstream panicked"));
            true
        } else {
            let body = self.bodies[task]
                .lock()
                .take()
                .expect("a task is claimed exactly once");
            let t0 = Instant::now();
            match catch_unwind(AssertUnwindSafe(body)) {
                Ok(()) => {
                    let run_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    self.executed.fetch_add(1, Ordering::Relaxed);
                    perfport_telemetry::counter_add("graph/tasks_executed", 1);
                    perfport_telemetry::observe("graph/task_run_ns", run_ns);
                    perfport_telemetry::event("task_run", format!("task={task} ns={run_ns}"));
                    false
                }
                Err(payload) => {
                    self.skipped.fetch_add(1, Ordering::Relaxed);
                    perfport_telemetry::counter_add("graph/task_panics", 1);
                    let msg = perfport_telemetry::panic_message(&*payload);
                    perfport_telemetry::event("task_panic", format!("task={task} {msg}"));
                    perfport_telemetry::flight_dump("task_panic", &format!("task={task} {msg}"));
                    let mut slot = self.panic.lock();
                    if slot.is_none() {
                        *slot = Some(payload);
                    }
                    true
                }
            }
        };
        // A panicked or skipped task poisons its dependents before the
        // completion decrement can make them eligible.
        if failed {
            for &d in &self.dependents[task] {
                self.skip[d].store(true, Ordering::Release);
            }
        }
        let mut newly_ready: Vec<usize> = Vec::new();
        for &d in &self.dependents[task] {
            // AcqRel: this task's writes happen-before any dependent
            // that this decrement makes eligible.
            if self.pending[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                newly_ready.push(d);
            }
        }
        let done = self.completed.fetch_add(1, Ordering::Release) + 1 == self.total;
        if !newly_ready.is_empty() || done {
            let mut ready = self.ready.lock();
            for d in newly_ready {
                ready.push(Reverse(d));
            }
            drop(ready);
            self.cv.notify_all();
        }
    }
}

impl ThreadPool {
    /// Graph-mode [`ThreadPool::parallel_map`]: runs `f(i)` for every
    /// index as one independent [`TaskGraph`] task and returns the
    /// results **in index order**. Tasks are claimed lowest-index first
    /// and drained without any intermediate barrier; the final join is
    /// the single happens-before edge the ordered collection needs.
    ///
    /// # Panics
    ///
    /// Re-raises the first `f` panic after the graph settles.
    pub fn graph_map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let slots = SlotCell::<Option<T>>::new(n);
        let mut graph = TaskGraph::new();
        for i in 0..n {
            let slots = &slots;
            let f = &f;
            graph.add(&[], move || {
                let v = f(i);
                // SAFETY: each index is one task, claimed by exactly one
                // worker; the coordinator reads after the run joins.
                unsafe { slots.set(i, Some(v)) };
            });
        }
        graph.run(self);
        slots
            .into_inner()
            .into_iter()
            .map(|v| v.expect("every graph task settled exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn empty_graph_is_a_noop() {
        let pool = ThreadPool::new(3);
        let stats = TaskGraph::new().run(&pool);
        assert_eq!(stats.executed, 0);
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.tasks_per_worker, vec![0; 3]);
        let stats = TaskGraph::new().run_serial();
        assert_eq!(stats.executed, 0);
    }

    #[test]
    fn every_task_runs_exactly_once() {
        let pool = ThreadPool::new(4);
        let counts: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let mut g = TaskGraph::new();
        let mut prev: Option<TaskId> = None;
        for (i, c) in counts.iter().enumerate() {
            // Mix independent tasks and short chains.
            let deps: Vec<TaskId> = match (i % 3, prev) {
                (0, _) | (_, None) => vec![],
                (_, Some(p)) => vec![p],
            };
            prev = Some(g.add(&deps, move || {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let stats = g.run(&pool);
        assert_eq!(stats.executed, 100);
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.tasks_per_worker.iter().sum::<usize>(), 100);
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn dependencies_order_execution() {
        // A diamond plus a tail: a → {b, c} → d → e, checked via a
        // value only the correct order produces.
        let pool = ThreadPool::new(4);
        for _ in 0..50 {
            let v = AtomicU64::new(1);
            let mut g = TaskGraph::new();
            let a = g.add(&[], || {
                v.fetch_add(1, Ordering::SeqCst); // 1 → 2
            });
            let b = g.add(&[a], || {
                v.fetch_mul_approx(3); // 2 → 6
            });
            let c = g.add(&[a], || {
                v.fetch_mul_approx(5); // 6 → 30 or 2 → 10 → 30
            });
            let d = g.add(&[b, c], || {
                v.fetch_add(70, Ordering::SeqCst); // 30 → 100
            });
            g.add(&[d], || {
                assert_eq!(v.load(Ordering::SeqCst), 100);
            });
            let stats = g.run(&pool);
            assert_eq!(stats.executed, 5);
        }
    }

    /// Multiply isn't a native atomic op; a CAS loop stands in (the test
    /// only needs commutativity between b and c).
    trait FetchMul {
        fn fetch_mul_approx(&self, by: u64);
    }
    impl FetchMul for AtomicU64 {
        fn fetch_mul_approx(&self, by: u64) {
            let mut cur = self.load(Ordering::SeqCst);
            loop {
                match self.compare_exchange(cur, cur * by, Ordering::SeqCst, Ordering::SeqCst) {
                    Ok(_) => return,
                    Err(now) => cur = now,
                }
            }
        }
    }

    #[test]
    fn serial_order_is_lowest_id_topological() {
        let order = StdMutex::new(Vec::new());
        let mut g = TaskGraph::new();
        // 0 gates 3; 1 and 2 are free. Eligible sets: {0,1,2} → pop 0,
        // then {1,2,3} → pop 1, then {2,3} → pop 2, then 3.
        let t0 = g.add(&[], || order.lock().unwrap().push(0));
        g.add(&[], || order.lock().unwrap().push(1));
        g.add(&[], || order.lock().unwrap().push(2));
        g.add(&[t0], || order.lock().unwrap().push(3));
        g.run_serial();
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cycles_are_rejected_by_validate() {
        let mut g = TaskGraph::new();
        let a = g.add(&[], || {});
        let b = g.add(&[a], || {});
        let c = g.add(&[b], || {});
        assert!(g.validate().is_ok());
        g.add_dependency(a, c); // a → b → c → a
        let err = g.validate().unwrap_err();
        assert_eq!(err.tasks, vec![a, b, c]);
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    #[should_panic(expected = "dependency cycle")]
    fn running_a_cyclic_graph_panics_instead_of_deadlocking() {
        let pool = ThreadPool::new(2);
        let mut g = TaskGraph::new();
        let a = g.add(&[], || {});
        let b = g.add(&[a], || {});
        g.add_dependency(a, b);
        let _ = g.run(&pool);
    }

    #[test]
    fn self_dependency_is_rejected_eagerly() {
        let mut g = TaskGraph::new();
        let a = g.add(&[], || {});
        let r = catch_unwind(AssertUnwindSafe(|| g.add_dependency(a, a)));
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "does not name an earlier task")]
    fn forward_dependencies_in_add_are_rejected() {
        let mut g = TaskGraph::new();
        g.add(&[TaskId(5)], || {});
    }

    #[test]
    fn panic_poisons_dependents_transitively_and_propagates() {
        let pool = ThreadPool::new(3);
        let ran = AtomicUsize::new(0);
        let mut g = TaskGraph::new();
        let boom = g.add(&[], || panic!("boom in task"));
        let child = g.add(&[boom], || {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        g.add(&[child], || {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        // Independent of the panic: must still run.
        g.add(&[], || {
            ran.fetch_add(100, Ordering::Relaxed);
        });
        let result = catch_unwind(AssertUnwindSafe(|| g.run(&pool)));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom in task");
        // The dependents were skipped, the independent task ran.
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        // The pool survives for later work.
        assert_eq!(
            pool.parallel_map(4, crate::Schedule::StaticBlock, |i| i)
                .len(),
            4
        );
    }

    #[test]
    fn serial_run_has_identical_poison_semantics() {
        let ran = AtomicUsize::new(0);
        let mut g = TaskGraph::new();
        let boom = g.add(&[], || panic!("boom serial"));
        g.add(&[boom], || {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        g.add(&[], || {
            ran.fetch_add(100, Ordering::Relaxed);
        });
        let result = catch_unwind(AssertUnwindSafe(|| g.run_serial()));
        assert!(result.is_err());
        assert_eq!(ran.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn graph_map_matches_index_order_for_any_team() {
        for threads in [1, 2, 7] {
            let pool = ThreadPool::new(threads);
            let out = pool.graph_map(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
            let empty: Vec<usize> = pool.graph_map(0, |i| i);
            assert!(empty.is_empty());
        }
    }

    #[test]
    fn graph_map_propagates_panics() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.graph_map(8, |i| {
                assert!(i != 5, "boom");
                i
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn idle_time_is_measured_when_workers_starve() {
        // One long chain on a wide team: all but one worker must park.
        let pool = ThreadPool::new(4);
        let mut g = TaskGraph::new();
        let mut prev = g.add(&[], || std::thread::sleep(Duration::from_millis(2)));
        for _ in 0..4 {
            prev = g.add(&[prev], || std::thread::sleep(Duration::from_millis(2)));
        }
        let stats = g.run(&pool);
        assert_eq!(stats.executed, 5);
        assert_eq!(stats.idle_per_worker.len(), 4);
        assert!(stats.total_idle() > Duration::ZERO);
        assert!(stats.elapsed >= Duration::from_millis(10));
    }

    #[test]
    fn borrowed_environment_is_sound() {
        let pool = ThreadPool::new(3);
        let input: Vec<u64> = (0..100).collect();
        let sum = AtomicU64::new(0);
        let mut g = TaskGraph::new();
        for chunk in [0..50usize, 50..100] {
            let input = &input;
            let sum = &sum;
            g.add(&[], move || {
                let local: u64 = input[chunk].iter().sum();
                sum.fetch_add(local, Ordering::Relaxed);
            });
        }
        g.run(&pool);
        assert_eq!(sum.into_inner(), 99 * 100 / 2);
    }
}
