//! Cache-line padding for hot shared state.
//!
//! The dynamic-schedule cursor and the region join counter are the two
//! atomics every worker hammers during a parallel region. On the
//! coordinator's stack (or inside an `Arc` allocation) they would
//! otherwise share a cache line with neighbouring fields, so every
//! `fetch_add`/`fetch_sub` from one core invalidates lines other cores
//! are reading — classic false sharing. Wrapping them in [`CachePadded`]
//! gives each its own line.

use std::ops::{Deref, DerefMut};

/// Aligns (and therefore pads) `T` to 128 bytes.
///
/// 128 rather than 64 because adjacent-line prefetchers on modern x86
/// (and the 128-byte cache lines on some Arm server cores) pull pairs
/// of 64-byte lines; crossbeam's `CachePadded` makes the same choice.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn alignment_and_size_are_a_full_line_pair() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicUsize>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<AtomicUsize>>(), 128);
        // Two padded atomics side by side can never share a line.
        let pair = [
            CachePadded::new(AtomicUsize::new(0)),
            CachePadded::new(AtomicUsize::new(0)),
        ];
        let a = &*pair[0] as *const AtomicUsize as usize;
        let b = &*pair[1] as *const AtomicUsize as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut padded = CachePadded::new(7usize);
        assert_eq!(*padded, 7);
        *padded = 9;
        assert_eq!(padded.into_inner(), 9);
        let atomic = CachePadded::new(AtomicUsize::new(1));
        atomic.fetch_add(2, Ordering::Relaxed);
        assert_eq!(atomic.load(Ordering::Relaxed), 3);
    }
}
