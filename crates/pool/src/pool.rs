//! The persistent worker team and its fork-join protocol.
//!
//! Like an OpenMP runtime, the pool keeps its team alive across parallel
//! regions: forking a region costs one channel send per worker plus a
//! wake-up, not a thread spawn. Region bodies may borrow from the caller's
//! stack; soundness comes from the strict join protocol — `run_region`
//! does not return until every worker has signalled completion, so the
//! borrowed closure outlives all uses.

use crate::schedule::{Chunk, DynamicCursor, Schedule, StaticChunks};
use crate::slice::SlotCell;
use crate::stats::RegionStats;
use crate::topology::{place, CpuTopology, PinPolicy, Placement};
use crossbeam::channel::{unbounded, Sender};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-thread context handed to every region body.
#[derive(Debug, Clone, Copy)]
pub struct ForContext {
    /// This worker's index within the team, `0..num_threads`.
    pub thread_id: usize,
    /// Team size (`omp_get_num_threads`).
    pub num_threads: usize,
    /// Where the affinity policy put this worker.
    pub placement: Placement,
}

/// Iterations of the coordinator's spin phase before it parks on the
/// condvar. Sized so a small region (tens of microseconds of work per
/// worker) joins without a futex round trip, while a long region costs
/// at most a few microseconds of extra spinning.
const JOIN_SPIN_ITERS: u32 = 4096;

/// Completion state shared between the coordinator and the team for one
/// region.
///
/// The join counter lives on its own cache-line pair: every worker RMWs
/// it once per region, and at small region sizes those RMWs land within
/// nanoseconds of each other — sharing a line with `done_flag` (which
/// the coordinator polls in its spin phase) would make each decrement
/// evict the coordinator's line.
struct RegionState {
    remaining: crate::pad::CachePadded<AtomicUsize>,
    panicked: AtomicBool,
    /// Lock-free completion flag for the coordinator's spin phase.
    done_flag: AtomicBool,
    /// Parked-path completion state, for when spinning times out.
    done: Mutex<bool>,
    cv: Condvar,
}

impl RegionState {
    fn new(team: usize) -> Arc<Self> {
        Arc::new(RegionState {
            remaining: crate::pad::CachePadded::new(AtomicUsize::new(team)),
            panicked: AtomicBool::new(false),
            done_flag: AtomicBool::new(false),
            done: Mutex::new(false),
            cv: Condvar::new(),
        })
    }

    fn finish_one(&self) {
        // AcqRel: the worker's writes happen-before the coordinator's
        // return from `wait`.
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.done_flag.store(true, Ordering::Release);
            let mut done = self.done.lock();
            *done = true;
            self.cv.notify_all();
        }
    }

    /// Bounded spin, then park. Forking a region costs one channel send
    /// per worker; at small loop sizes the *join* used to dominate
    /// because the coordinator always took the mutex + condvar path
    /// (a futex sleep/wake pair). Spinning on the lock-free flag first
    /// makes the fork-join round trip allocation- and syscall-free
    /// whenever the region finishes within the spin budget.
    fn wait(&self) {
        for _ in 0..JOIN_SPIN_ITERS {
            // Acquire pairs with the Release store in `finish_one` (and
            // transitively with every worker's AcqRel decrement), so the
            // workers' writes are visible once the flag reads true.
            if self.done_flag.load(Ordering::Acquire) {
                return;
            }
            std::hint::spin_loop();
        }
        let mut done = self.done.lock();
        while !*done {
            self.cv.wait(&mut done);
        }
    }
}

/// A type-erased pointer to a region body living on the coordinator's
/// stack. The join protocol guarantees the pointee outlives every call.
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
    state: Arc<RegionState>,
}

// SAFETY: `data` points at a `F: Sync` closure that the coordinator keeps
// alive until all workers signalled completion; sending the pointer to
// worker threads is exactly the `&F: Send` capability `F: Sync` grants.
unsafe impl Send for Job {}

enum Msg {
    Run(Job),
    Shutdown,
}

/// Calls the closure behind the erased pointer. Split out so each
/// monomorphisation carries the concrete `F`.
///
/// # Safety
///
/// `data` must point to a live `F`.
unsafe fn call_body<F: Fn(usize) + Sync>(data: *const (), thread_id: usize) {
    let f = unsafe { &*(data as *const F) };
    f(thread_id);
}

/// A persistent team of worker threads with OpenMP-style fork-join
/// parallel regions and work-sharing loops.
///
/// ```
/// use perfport_pool::{Schedule, ThreadPool};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let sum = AtomicU64::new(0);
/// pool.parallel_for_each(1000, Schedule::StaticBlock, |i| {
///     sum.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 999 * 1000 / 2);
/// ```
pub struct ThreadPool {
    senders: Vec<Sender<Msg>>,
    handles: Vec<JoinHandle<()>>,
    placements: Vec<Placement>,
    topology: CpuTopology,
    policy: PinPolicy,
    regions_run: AtomicUsize,
}

impl ThreadPool {
    /// Creates a pool of `threads` unpinned workers on a flat topology.
    pub fn new(threads: usize) -> Self {
        Self::with_affinity(
            threads,
            CpuTopology::flat(threads.max(1)),
            PinPolicy::Unpinned,
        )
    }

    /// Creates a pool whose workers are placed on `topology` according to
    /// `policy`. Placement is recorded for the timing models; it is not
    /// enforced with OS affinity calls (see crate docs).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_affinity(threads: usize, topology: CpuTopology, policy: PinPolicy) -> Self {
        assert!(threads > 0, "thread pool must have at least one worker");
        let placements: Vec<Placement> = (0..threads)
            .map(|t| place(&topology, policy, threads, t))
            .collect();
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for tid in 0..threads {
            let (tx, rx) = unbounded::<Msg>();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("perfport-worker-{tid}"))
                .spawn(move || {
                    while let Ok(msg) = rx.recv() {
                        match msg {
                            Msg::Run(job) => {
                                let result = {
                                    // Hardware-counter scope around the
                                    // region body (no-op unless profiling
                                    // is enabled); dropped before
                                    // `finish_one` so the coordinator
                                    // never observes a half-recorded
                                    // region.
                                    let _hw = perfport_obs::thread_scope();
                                    catch_unwind(AssertUnwindSafe(|| {
                                        // SAFETY: the coordinator keeps the
                                        // closure alive until `finish_one` has
                                        // been called by every worker.
                                        unsafe { (job.call)(job.data, tid) }
                                    }))
                                };
                                if let Err(payload) = &result {
                                    // Flight-record the poisoning task
                                    // itself before the coordinator even
                                    // learns about the failure — the dump
                                    // guard is first-trigger-wins, so the
                                    // file on disk ends with this event.
                                    let msg = perfport_telemetry::panic_message(&**payload);
                                    perfport_telemetry::counter_add("pool/worker_panics", 1);
                                    perfport_telemetry::event("task_panic", msg.clone());
                                    perfport_telemetry::flight_dump("task_panic", &msg);
                                    job.state.panicked.store(true, Ordering::Release);
                                }
                                job.state.finish_one();
                            }
                            Msg::Shutdown => break,
                        }
                    }
                })
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        ThreadPool {
            senders,
            handles,
            placements,
            topology,
            policy,
            regions_run: AtomicUsize::new(0),
        }
    }

    /// Team size.
    pub fn num_threads(&self) -> usize {
        self.senders.len()
    }

    /// The topology the team is placed on.
    pub fn topology(&self) -> CpuTopology {
        self.topology
    }

    /// The affinity policy in effect.
    pub fn policy(&self) -> PinPolicy {
        self.policy
    }

    /// Recorded placement of every worker.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Number of parallel regions executed so far.
    pub fn regions_run(&self) -> usize {
        self.regions_run.load(Ordering::Relaxed)
    }

    /// Runs `body(thread_id)` on every worker and waits for all of them —
    /// a bare `#pragma omp parallel`.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic) if any worker's body panicked.
    pub fn run_region<F: Fn(usize) + Sync>(&self, body: &F) {
        let mut sp = perfport_trace::span("pool", "region");
        sp.arg("team", self.senders.len());
        perfport_telemetry::event("region_begin", format!("team={}", self.senders.len()));
        let started = Instant::now();
        let state = RegionState::new(self.senders.len());
        for tx in &self.senders {
            let job = Job {
                data: body as *const F as *const (),
                call: call_body::<F>,
                state: Arc::clone(&state),
            };
            tx.send(job_msg(job)).expect("worker channel closed");
        }
        state.wait();
        let region_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        perfport_telemetry::counter_add("pool/regions", 1);
        perfport_telemetry::observe("pool/region_ns", region_ns);
        self.regions_run.fetch_add(1, Ordering::Relaxed);
        let panicked = state.panicked.load(Ordering::Acquire);
        sp.arg("panicked", panicked);
        if panicked {
            perfport_telemetry::counter_add("pool/regions_poisoned", 1);
            perfport_telemetry::event("region_poison", format!("ns={region_ns}"));
            perfport_telemetry::flight_dump(
                "region_poison",
                "a perfport-pool worker panicked inside a parallel region",
            );
            panic!("a perfport-pool worker panicked inside a parallel region");
        }
        perfport_telemetry::event("region_end", format!("ns={region_ns}"));
    }

    /// Work-sharing loop over `0..n`: `body(ctx, chunk)` is invoked for
    /// every chunk the schedule assigns, each index reaching exactly one
    /// invocation. Returns the region's instrumentation.
    pub fn parallel_for<F>(&self, n: usize, schedule: Schedule, body: F) -> RegionStats
    where
        F: Fn(ForContext, Chunk) + Sync,
    {
        let team = self.num_threads();
        let mut sp = perfport_trace::span("pool", "parallel_for");
        let items = SlotCell::<usize>::new(team);
        let chunks = SlotCell::<usize>::new(team);
        let busy = SlotCell::<Duration>::new(team);
        let cursor = DynamicCursor::new(n);
        let placements = &self.placements;

        let started = Instant::now();
        let task = |tid: usize| {
            let t0 = Instant::now();
            let ctx = ForContext {
                thread_id: tid,
                num_threads: team,
                placement: placements[tid],
            };
            let mut my_items = 0usize;
            let mut my_chunks = 0usize;
            if schedule.is_static() {
                for c in StaticChunks::new(schedule, n, team, tid) {
                    body(ctx, c);
                    my_items += c.len();
                    my_chunks += 1;
                }
            } else {
                while let Some(c) = cursor.grab(schedule, team) {
                    body(ctx, c);
                    my_items += c.len();
                    my_chunks += 1;
                }
            }
            // SAFETY: each worker writes only its own slot, and the
            // coordinator reads only after the join.
            unsafe {
                items.set(tid, my_items);
                chunks.set(tid, my_chunks);
                busy.set(tid, t0.elapsed());
            }
        };
        self.run_region(&task);
        let elapsed = started.elapsed();

        let busy = busy.into_inner();
        let max_busy = busy.iter().copied().max().unwrap_or(Duration::ZERO);
        // A thread that finished early sat at the implicit end barrier for
        // the rest of the region; that wait is what the graph scheduler
        // removes, so it is measured on every run.
        let barrier_wait_per_thread: Vec<Duration> =
            busy.iter().map(|&b| elapsed.saturating_sub(b)).collect();
        let stats = RegionStats {
            items_per_thread: items.into_inner(),
            chunks_per_thread: chunks.into_inner(),
            elapsed,
            fork_join_overhead: elapsed.saturating_sub(max_busy),
            barrier_wait_per_thread,
        };
        let barrier_wait_ns = stats
            .total_barrier_wait()
            .as_nanos()
            .min(u128::from(u64::MAX)) as u64;
        crate::stats::record_barrier_wait(barrier_wait_ns);
        perfport_telemetry::counter_add("pool/barrier_wait_ns", barrier_wait_ns);
        perfport_telemetry::observe("pool/parallel_for_ns", region_ns_u64(elapsed));
        if sp.is_recording() {
            perfport_trace::counter("pool", "barrier_wait_ns", barrier_wait_ns as f64);
            sp.arg("n", n);
            sp.arg("schedule", format!("{schedule:?}"));
            sp.arg("team", team);
            sp.arg(
                "items_min",
                stats.items_per_thread.iter().copied().min().unwrap_or(0),
            );
            sp.arg(
                "items_max",
                stats.items_per_thread.iter().copied().max().unwrap_or(0),
            );
            sp.arg("imbalance", stats.imbalance());
            sp.arg(
                "fork_join_overhead_ns",
                stats.fork_join_overhead.as_nanos() as u64,
            );
            perfport_trace::counter("pool", "imbalance", stats.imbalance());
        }
        stats
    }

    /// Convenience per-index variant of [`ThreadPool::parallel_for`].
    pub fn parallel_for_each<F>(&self, n: usize, schedule: Schedule, body: F) -> RegionStats
    where
        F: Fn(usize) + Sync,
    {
        self.parallel_for(n, schedule, |_, chunk| {
            for i in chunk.range() {
                body(i);
            }
        })
    }

    /// Work-sharing map over `0..n`: runs `f(i)` for every index under
    /// `schedule` and returns the results **in index order**, regardless
    /// of which worker computed which index or in what interleaving.
    ///
    /// This is the collection primitive behind the sharded study runner:
    /// an embarrassingly parallel grid can fan out across the team while
    /// the ordered return value lets the caller emit output bytes
    /// identical to a serial run.
    pub fn parallel_map<T, F>(&self, n: usize, schedule: Schedule, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let slots = SlotCell::<Option<T>>::new(n);
        self.parallel_for_each(n, schedule, |i| {
            let v = f(i);
            // SAFETY: every schedule assigns each index to exactly one
            // chunk (one worker), and the coordinator reads the slots
            // only after the region joined.
            unsafe { slots.set(i, Some(v)) };
        });
        slots
            .into_inner()
            .into_iter()
            .map(|v| v.expect("schedule visited every index exactly once"))
            .collect()
    }
}

/// Wraps a job; separated so `Msg` construction stays next to its
/// definition.
fn job_msg(job: Job) -> Msg {
    Msg::Run(job)
}

/// `Duration` → saturating nanoseconds, for telemetry histograms.
fn region_ns_u64(d: Duration) -> u64 {
    d.as_nanos().min(u128::from(u64::MAX)) as u64
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for tx in &self.senders {
            // Workers may already be gone if a panic tore things down.
            let _ = tx.send(Msg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn region_runs_on_every_worker() {
        let pool = ThreadPool::new(6);
        let mask = AtomicU64::new(0);
        pool.run_region(&|tid| {
            mask.fetch_or(1 << tid, Ordering::Relaxed);
        });
        assert_eq!(mask.load(Ordering::Relaxed), 0b11_1111);
        assert_eq!(pool.regions_run(), 1);
    }

    #[test]
    fn parallel_for_covers_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        for schedule in [
            Schedule::StaticBlock,
            Schedule::StaticChunked { chunk: 3 },
            Schedule::Dynamic { chunk: 5 },
            Schedule::Guided { min_chunk: 2 },
        ] {
            let n = 1237;
            let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            let stats = pool.parallel_for_each(n, schedule, |i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(
                counts.iter().all(|c| c.load(Ordering::Relaxed) == 1),
                "{schedule:?} missed or duplicated an index"
            );
            assert_eq!(stats.total_items(), n, "{schedule:?} stats miscounted");
        }
    }

    #[test]
    fn parallel_for_borrows_stack_data() {
        let pool = ThreadPool::new(3);
        let input: Vec<u64> = (0..1000).collect();
        let sum = AtomicU64::new(0);
        pool.parallel_for(input.len(), Schedule::StaticBlock, |_, chunk| {
            let local: u64 = input[chunk.range()].iter().sum();
            sum.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1000 * 999 / 2);
    }

    #[test]
    fn static_block_stats_are_balanced() {
        let pool = ThreadPool::new(8);
        let stats = pool.parallel_for_each(800, Schedule::StaticBlock, |_| {});
        assert_eq!(stats.items_per_thread, vec![100; 8]);
        assert_eq!(stats.chunks_per_thread, vec![1; 8]);
        assert!((stats.imbalance() - 1.0).abs() < 1e-12);
        assert_eq!(stats.participation(), 1.0);
    }

    #[test]
    fn dynamic_schedule_lets_fast_threads_take_more() {
        let pool = ThreadPool::new(4);
        // Make thread work heavily skewed: index 0 is very slow.
        let stats = pool.parallel_for(256, Schedule::Dynamic { chunk: 1 }, |_, chunk| {
            if chunk.start == 0 {
                std::thread::sleep(Duration::from_millis(30));
            }
        });
        assert_eq!(stats.total_items(), 256);
        // The thread that got stuck on index 0 should have processed far
        // fewer items than the busiest thread.
        let max = *stats.items_per_thread.iter().max().unwrap();
        let min = *stats.items_per_thread.iter().min().unwrap();
        assert!(max > min, "dynamic schedule should be uneven under skew");
    }

    #[test]
    fn context_reports_team_and_placement() {
        let topo = CpuTopology::new(2, 4, 1);
        let pool = ThreadPool::with_affinity(8, topo, PinPolicy::Compact);
        let seen = parking_lot::Mutex::new(HashSet::new());
        pool.parallel_for(8, Schedule::StaticBlock, |ctx, chunk| {
            assert_eq!(ctx.num_threads, 8);
            match ctx.placement {
                Placement::Pinned { core, numa } => {
                    assert_eq!(core, ctx.thread_id);
                    assert_eq!(numa, ctx.thread_id / 4);
                }
                Placement::Floating => panic!("compact policy must pin"),
            }
            seen.lock().insert((ctx.thread_id, chunk.start));
        });
        assert_eq!(seen.lock().len(), 8);
    }

    #[test]
    fn pool_survives_many_regions() {
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.parallel_for_each(64, Schedule::StaticBlock, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200 * 64);
        assert_eq!(pool.regions_run(), 200);
    }

    #[test]
    fn many_tiny_regions_join_correctly() {
        // Small regions finish inside the coordinator's spin budget, so
        // this hammers the lock-free join path; the sleepy regions in
        // `fork_join_overhead_is_measured` cover the parked path.
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..2000 {
            pool.parallel_for_each(4, Schedule::StaticBlock, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 8000);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for_each(16, Schedule::StaticBlock, |i| {
                if i == 7 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must remain usable afterwards.
        let stats = pool.parallel_for_each(8, Schedule::StaticBlock, |_| {});
        assert_eq!(stats.total_items(), 8);
    }

    #[test]
    fn empty_loop_is_fine() {
        let pool = ThreadPool::new(4);
        let stats = pool.parallel_for_each(0, Schedule::Dynamic { chunk: 8 }, |_| {
            panic!("must not run")
        });
        assert_eq!(stats.total_items(), 0);
    }

    #[test]
    fn single_thread_pool_runs_serially() {
        let pool = ThreadPool::new(1);
        let mut order = Vec::new();
        let order_cell = parking_lot::Mutex::new(&mut order);
        pool.parallel_for_each(10, Schedule::StaticBlock, |i| {
            order_cell.lock().push(i);
        });
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn fork_join_overhead_is_measured() {
        let pool = ThreadPool::new(2);
        let stats = pool.parallel_for_each(2, Schedule::StaticBlock, |_| {
            std::thread::sleep(Duration::from_millis(5));
        });
        assert!(stats.elapsed >= Duration::from_millis(5));
        assert!(stats.fork_join_overhead < stats.elapsed);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn parallel_map_returns_results_in_index_order() {
        let pool = ThreadPool::new(4);
        for schedule in [
            Schedule::StaticBlock,
            Schedule::StaticChunked { chunk: 3 },
            Schedule::Dynamic { chunk: 1 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            let out = pool.parallel_map(37, schedule, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
        // Non-Clone, non-Default result types are fine.
        let boxed = pool.parallel_map(5, Schedule::Dynamic { chunk: 2 }, Box::new);
        assert_eq!(
            boxed.iter().map(|b| **b).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        let empty: Vec<usize> = pool.parallel_map(0, Schedule::StaticBlock, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn parallel_map_propagates_panics() {
        let pool = ThreadPool::new(2);
        let _ = pool.parallel_map(8, Schedule::StaticBlock, |i| {
            assert!(i != 5, "boom");
            i
        });
    }
}
