//! CPU topology description and thread-affinity policies.
//!
//! Placement here is *bookkeeping*: the pool records which core each worker
//! would be bound to under a policy, and the analytical timing models use
//! that record to estimate NUMA locality. This mirrors how the paper treats
//! pinning — as a configuration that changes memory locality
//! (`OMP_PROC_BIND=true OMP_PLACES=threads`, `JULIA_EXCLUSIVE=1`) — and
//! cleanly captures the Numba gap (no pinning API at all).

use std::fmt;
use std::sync::OnceLock;

/// Where a [`CacheInfo`]'s capacities came from — recorded so bench
/// manifests can disclose whether packing blocks were sized from the
/// real hierarchy or from the documented defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheSource {
    /// All three levels read from `/sys/devices/system/cpu/cpu0/cache`.
    Sysfs,
    /// The documented [`CacheInfo::DEFAULT`] capacities (non-Linux hosts,
    /// VMs/containers with missing or partial `index*` entries, or an
    /// explicit construction).
    #[default]
    Defaults,
}

impl fmt::Display for CacheSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheSource::Sysfs => write!(f, "sysfs"),
            CacheSource::Defaults => write!(f, "defaults"),
        }
    }
}

/// Per-core / shared cache capacities, used to size the packing blocks of
/// cache-aware kernels (`perfport-gemm::tuned`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheInfo {
    /// L1 data cache per core, bytes.
    pub l1d_bytes: usize,
    /// Private (or core-cluster) L2 per core, bytes.
    pub l2_bytes: usize,
    /// Shared last-level cache, bytes.
    pub l3_bytes: usize,
    /// Where these capacities came from.
    pub source: CacheSource,
}

impl CacheInfo {
    /// Conservative defaults (32 KiB L1d / 512 KiB L2 / 16 MiB LLC) that
    /// hold within a factor of two on every server core the paper uses
    /// (Zen 3, Neoverse N1) and on common build hosts.
    pub const DEFAULT: CacheInfo = CacheInfo {
        l1d_bytes: 32 * 1024,
        l2_bytes: 512 * 1024,
        l3_bytes: 16 * 1024 * 1024,
        source: CacheSource::Defaults,
    };

    /// The build host's caches, read once from sysfs on Linux.
    ///
    /// Detection is all-or-nothing: unless *every* level (L1d, L2, L3)
    /// is present in sysfs, the whole [`CacheInfo::DEFAULT`] set is used
    /// and `source` says so — a partially-populated hierarchy (common in
    /// VMs and containers that virtualise only some `index*` entries)
    /// would otherwise silently mix real and default capacities into one
    /// inconsistent blocking decision.
    pub fn host() -> CacheInfo {
        static HOST: OnceLock<CacheInfo> = OnceLock::new();
        *HOST.get_or_init(|| {
            detect_caches_at(std::path::Path::new("/sys/devices/system/cpu/cpu0/cache"))
        })
    }
}

/// Parses a sysfs cache size string like `"32K"` or `"16384K"`.
fn parse_cache_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' => (&s[..s.len() - 1], 1024),
        b'M' => (&s[..s.len() - 1], 1024 * 1024),
        _ => (s, 1),
    };
    digits.parse::<usize>().ok().map(|v| v * mult)
}

/// Reads the cache hierarchy below `base` (an `.../cpu0/cache` sysfs
/// directory). Returns sysfs capacities only when all three levels were
/// found; anything partial falls back to the full documented defaults
/// (see [`CacheInfo::host`]).
fn detect_caches_at(base: &std::path::Path) -> CacheInfo {
    let mut sizes = [None::<usize>; 3];
    for idx in 0..6 {
        let dir = base.join(format!("index{idx}"));
        let read = |name: &str| std::fs::read_to_string(dir.join(name)).ok();
        let (Some(level), Some(ty), Some(size)) = (read("level"), read("type"), read("size"))
        else {
            continue;
        };
        let Some(bytes) = parse_cache_size(&size) else {
            continue;
        };
        let ty = ty.trim();
        match (level.trim(), ty) {
            ("1", "Data") | ("1", "Unified") => sizes[0] = Some(bytes),
            ("2", "Data") | ("2", "Unified") => sizes[1] = Some(bytes),
            ("3", "Data") | ("3", "Unified") => sizes[2] = Some(bytes),
            _ => {}
        }
    }
    match sizes {
        [Some(l1d), Some(l2), Some(l3)] => CacheInfo {
            l1d_bytes: l1d,
            l2_bytes: l2,
            l3_bytes: l3,
            source: CacheSource::Sysfs,
        },
        _ => CacheInfo::DEFAULT,
    }
}

/// Physical CPU topology relevant to thread placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuTopology {
    /// Number of NUMA domains (e.g. 4 NPS domains on Crusher's EPYC 7A53,
    /// 1 on Wombat's Ampere Altra).
    pub numa_domains: usize,
    /// Physical cores per NUMA domain.
    pub cores_per_domain: usize,
    /// Hardware threads per core (SMT); the paper's runs use one thread per
    /// physical core.
    pub smt: usize,
    /// Cache capacities, for cache-aware blocking.
    pub cache: CacheInfo,
}

impl CpuTopology {
    /// Builds a topology with [`CacheInfo::DEFAULT`] caches; the count
    /// fields must be non-zero.
    pub fn new(numa_domains: usize, cores_per_domain: usize, smt: usize) -> Self {
        assert!(numa_domains > 0 && cores_per_domain > 0 && smt > 0);
        CpuTopology {
            numa_domains,
            cores_per_domain,
            smt,
            cache: CacheInfo::DEFAULT,
        }
    }

    /// A flat single-domain topology with `cores` cores and no SMT.
    pub fn flat(cores: usize) -> Self {
        CpuTopology::new(1, cores, 1)
    }

    /// A flat topology carrying the build host's detected caches.
    pub fn host(cores: usize) -> Self {
        CpuTopology::flat(cores).with_cache(CacheInfo::host())
    }

    /// Replaces the cache description.
    pub fn with_cache(mut self, cache: CacheInfo) -> Self {
        self.cache = cache;
        self
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> usize {
        self.numa_domains * self.cores_per_domain
    }

    /// Total schedulable hardware threads.
    pub fn total_hw_threads(&self) -> usize {
        self.total_cores() * self.smt
    }

    /// NUMA domain that owns physical `core`.
    pub fn domain_of(&self, core: usize) -> usize {
        debug_assert!(core < self.total_cores());
        core / self.cores_per_domain
    }
}

/// Thread-affinity policy, in the spirit of `OMP_PROC_BIND`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PinPolicy {
    /// No binding — the OS migrates threads freely. The only option in
    /// Python/Numba, which the paper identifies as a performance limiter on
    /// the 4-NUMA EPYC.
    #[default]
    Unpinned,
    /// Fill cores in ascending order (`OMP_PROC_BIND=close`,
    /// `JULIA_EXCLUSIVE=1` strict order).
    Compact,
    /// Round-robin threads across NUMA domains first
    /// (`OMP_PROC_BIND=spread`).
    Spread,
}

impl fmt::Display for PinPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PinPolicy::Unpinned => write!(f, "unpinned"),
            PinPolicy::Compact => write!(f, "compact"),
            PinPolicy::Spread => write!(f, "spread"),
        }
    }
}

/// Where one worker thread lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Bound to a specific physical core.
    Pinned {
        /// Physical core index.
        core: usize,
        /// NUMA domain owning that core.
        numa: usize,
    },
    /// Free-floating; the scheduler may run it anywhere.
    Floating,
}

impl Placement {
    /// The NUMA domain, if bound.
    pub fn numa(&self) -> Option<usize> {
        match self {
            Placement::Pinned { numa, .. } => Some(*numa),
            Placement::Floating => None,
        }
    }
}

/// Computes the placement of `thread` in a team of `threads` under
/// `policy` on `topo`.
///
/// Threads beyond the core count wrap around (oversubscription), matching
/// `OMP_PLACES=threads` semantics.
pub fn place(topo: &CpuTopology, policy: PinPolicy, threads: usize, thread: usize) -> Placement {
    debug_assert!(thread < threads);
    let cores = topo.total_cores();
    match policy {
        PinPolicy::Unpinned => Placement::Floating,
        PinPolicy::Compact => {
            let core = thread % cores;
            Placement::Pinned {
                core,
                numa: topo.domain_of(core),
            }
        }
        PinPolicy::Spread => {
            // Distribute round-robin over domains, then within a domain.
            let d = thread % topo.numa_domains;
            let slot = (thread / topo.numa_domains) % topo.cores_per_domain;
            let core = d * topo.cores_per_domain + slot;
            Placement::Pinned { core, numa: d }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn topology_arithmetic() {
        let t = CpuTopology::new(4, 16, 2);
        assert_eq!(t.total_cores(), 64);
        assert_eq!(t.total_hw_threads(), 128);
        assert_eq!(t.domain_of(0), 0);
        assert_eq!(t.domain_of(15), 0);
        assert_eq!(t.domain_of(16), 1);
        assert_eq!(t.domain_of(63), 3);
    }

    #[test]
    fn flat_topology() {
        let t = CpuTopology::flat(80);
        assert_eq!(t.numa_domains, 1);
        assert_eq!(t.total_cores(), 80);
        assert_eq!(t.domain_of(79), 0);
        assert_eq!(t.cache, CacheInfo::DEFAULT);
    }

    #[test]
    fn cache_info_override_and_host_detection() {
        let cache = CacheInfo {
            l1d_bytes: 64 * 1024,
            l2_bytes: 1024 * 1024,
            l3_bytes: 32 * 1024 * 1024,
            source: CacheSource::Defaults,
        };
        let t = CpuTopology::flat(8).with_cache(cache);
        assert_eq!(t.cache, cache);
        // Host detection must always produce sane non-zero capacities in
        // ascending level order (either sysfs values or the defaults).
        let host = CacheInfo::host();
        assert!(host.l1d_bytes >= 8 * 1024);
        assert!(host.l2_bytes >= host.l1d_bytes);
        assert!(host.l3_bytes >= host.l2_bytes);
        assert_eq!(CpuTopology::host(4).cache, host);
        // Either way the struct says where the numbers came from.
        match host.source {
            CacheSource::Sysfs => assert_ne!(host, CacheInfo::DEFAULT),
            CacheSource::Defaults => {
                assert_eq!(host.l1d_bytes, CacheInfo::DEFAULT.l1d_bytes)
            }
        }
    }

    /// Builds a synthetic sysfs cache directory: one `index<i>` entry per
    /// `(level, type, size)` triple.
    fn fake_sysfs(dir: &std::path::Path, entries: &[(&str, &str, &str)]) {
        for (i, (level, ty, size)) in entries.iter().enumerate() {
            let d = dir.join(format!("index{i}"));
            std::fs::create_dir_all(&d).unwrap();
            std::fs::write(d.join("level"), format!("{level}\n")).unwrap();
            std::fs::write(d.join("type"), format!("{ty}\n")).unwrap();
            std::fs::write(d.join("size"), format!("{size}\n")).unwrap();
        }
    }

    #[test]
    fn full_sysfs_hierarchy_is_detected() {
        let dir = std::env::temp_dir().join("perfport-cache-full");
        let _ = std::fs::remove_dir_all(&dir);
        fake_sysfs(
            &dir,
            &[
                ("1", "Data", "48K"),
                ("1", "Instruction", "32K"),
                ("2", "Unified", "1024K"),
                ("3", "Unified", "32M"),
            ],
        );
        let info = detect_caches_at(&dir);
        assert_eq!(info.source, CacheSource::Sysfs);
        assert_eq!(info.l1d_bytes, 48 * 1024);
        assert_eq!(info.l2_bytes, 1024 * 1024);
        assert_eq!(info.l3_bytes, 32 * 1024 * 1024);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_sysfs_falls_back_to_full_defaults() {
        // A container that virtualises only L1/L2 entries: the detector
        // must not hand back a half-real, half-default hierarchy.
        let dir = std::env::temp_dir().join("perfport-cache-partial");
        let _ = std::fs::remove_dir_all(&dir);
        fake_sysfs(&dir, &[("1", "Data", "48K"), ("2", "Unified", "1024K")]);
        let info = detect_caches_at(&dir);
        assert_eq!(info, CacheInfo::DEFAULT);
        assert_eq!(info.source, CacheSource::Defaults);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_sysfs_falls_back_to_full_defaults() {
        let dir = std::env::temp_dir().join("perfport-cache-missing/nope");
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(detect_caches_at(&dir), CacheInfo::DEFAULT);
    }

    #[test]
    fn unparsable_sysfs_size_falls_back_to_full_defaults() {
        let dir = std::env::temp_dir().join("perfport-cache-bad");
        let _ = std::fs::remove_dir_all(&dir);
        fake_sysfs(
            &dir,
            &[
                ("1", "Data", "weird"),
                ("2", "Unified", "1024K"),
                ("3", "Unified", "32M"),
            ],
        );
        assert_eq!(detect_caches_at(&dir), CacheInfo::DEFAULT);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_size_parsing() {
        assert_eq!(parse_cache_size("32K\n"), Some(32 * 1024));
        assert_eq!(parse_cache_size("16384K"), Some(16384 * 1024));
        assert_eq!(parse_cache_size("8M"), Some(8 * 1024 * 1024));
        assert_eq!(parse_cache_size("512"), Some(512));
        assert_eq!(parse_cache_size("weird"), None);
    }

    #[test]
    fn compact_fills_cores_in_order() {
        let t = CpuTopology::new(4, 16, 1);
        for i in 0..64 {
            match place(&t, PinPolicy::Compact, 64, i) {
                Placement::Pinned { core, numa } => {
                    assert_eq!(core, i);
                    assert_eq!(numa, i / 16);
                }
                Placement::Floating => panic!("compact must pin"),
            }
        }
    }

    #[test]
    fn compact_distinct_cores_up_to_core_count() {
        let t = CpuTopology::new(4, 16, 1);
        let cores: HashSet<_> = (0..64)
            .map(|i| match place(&t, PinPolicy::Compact, 64, i) {
                Placement::Pinned { core, .. } => core,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(cores.len(), 64);
    }

    #[test]
    fn spread_round_robins_domains() {
        let t = CpuTopology::new(4, 16, 1);
        let numas: Vec<_> = (0..8)
            .map(|i| place(&t, PinPolicy::Spread, 8, i).numa().unwrap())
            .collect();
        assert_eq!(numas, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // No core is double-booked within the first 64 threads.
        let cores: HashSet<_> = (0..64)
            .map(|i| match place(&t, PinPolicy::Spread, 64, i) {
                Placement::Pinned { core, .. } => core,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(cores.len(), 64);
    }

    #[test]
    fn unpinned_floats() {
        let t = CpuTopology::new(4, 16, 1);
        assert_eq!(place(&t, PinPolicy::Unpinned, 64, 5), Placement::Floating);
        assert_eq!(place(&t, PinPolicy::Unpinned, 64, 5).numa(), None);
    }

    #[test]
    fn oversubscription_wraps() {
        let t = CpuTopology::flat(4);
        match place(&t, PinPolicy::Compact, 8, 6) {
            Placement::Pinned { core, .. } => assert_eq!(core, 2),
            _ => panic!(),
        }
    }

    #[test]
    fn policy_display() {
        assert_eq!(PinPolicy::Unpinned.to_string(), "unpinned");
        assert_eq!(PinPolicy::Compact.to_string(), "compact");
        assert_eq!(PinPolicy::Spread.to_string(), "spread");
    }
}
