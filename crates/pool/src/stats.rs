//! Per-region instrumentation.
//!
//! The CPU timing model in `perfport-machines` needs two things the raw
//! kernel cannot tell it: how evenly the schedule spread the work (load
//! imbalance) and how much time the fork-join protocol itself cost. Both
//! are measured here for every parallel region.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Statistics collected for one `parallel_for` region.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionStats {
    /// Iterations executed by each thread.
    pub items_per_thread: Vec<usize>,
    /// Chunks fetched/assigned per thread.
    pub chunks_per_thread: Vec<usize>,
    /// Wall-clock time of the whole region, including fork and join.
    pub elapsed: Duration,
    /// Wall-clock time spent dispatching to and joining the team, measured
    /// on an empty region of the same shape would be `elapsed` itself; here
    /// it is the region time minus the busiest thread's body time when
    /// available, else zero.
    pub fork_join_overhead: Duration,
    /// Time each thread spent waiting at the region's implicit end
    /// barrier (region elapsed minus that thread's busy time) — the cost
    /// the graph scheduler exists to remove. Empty when the region did
    /// not measure per-thread busy time.
    pub barrier_wait_per_thread: Vec<Duration>,
}

impl RegionStats {
    /// Total iterations executed.
    pub fn total_items(&self) -> usize {
        self.items_per_thread.iter().sum()
    }

    /// Total chunks dispatched.
    pub fn total_chunks(&self) -> usize {
        self.chunks_per_thread.iter().sum()
    }

    /// Load imbalance as `max/mean` over threads that could have worked
    /// (1.0 = perfectly balanced). Returns 1.0 for empty regions.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_items();
        if total == 0 || self.items_per_thread.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.items_per_thread.len() as f64;
        let max = *self.items_per_thread.iter().max().unwrap() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Fraction of threads that executed at least one iteration.
    pub fn participation(&self) -> f64 {
        if self.items_per_thread.is_empty() {
            return 0.0;
        }
        let active = self.items_per_thread.iter().filter(|&&x| x > 0).count();
        active as f64 / self.items_per_thread.len() as f64
    }

    /// Total barrier wait across the team.
    pub fn total_barrier_wait(&self) -> Duration {
        self.barrier_wait_per_thread.iter().sum()
    }
}

/// Nanoseconds the barrier scheduler spent waiting at implicit region-end
/// barriers, summed over every region and thread in this process.
static BARRIER_WAIT_NS: AtomicU64 = AtomicU64::new(0);
/// Nanoseconds graph-scheduler workers spent parked with no eligible
/// task, summed over every graph run and worker in this process.
static IDLE_NS: AtomicU64 = AtomicU64::new(0);

/// Process-wide scheduling-overhead totals, for stamping into bench
/// snapshots (the per-region values flow through [`RegionStats`] and the
/// `pool/barrier_wait_ns` / `pool/idle_ns` trace counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedTotals {
    /// Cumulative barrier-wait nanoseconds (fork-join regions).
    pub barrier_wait_ns: u64,
    /// Cumulative task-idle nanoseconds (graph runs).
    pub idle_ns: u64,
}

impl SchedTotals {
    /// The overhead accumulated between `earlier` and this snapshot.
    ///
    /// The raw counters are process-lifetime monotonic, so a binary
    /// that runs several measurement phases in one process would
    /// over-report if it stamped [`sched_totals`] directly; capture an
    /// epoch at phase start and stamp the delta instead. Saturating,
    /// so a swapped pair degrades to zeros rather than wrapping.
    pub fn delta_since(&self, earlier: SchedTotals) -> SchedTotals {
        SchedTotals {
            barrier_wait_ns: self.barrier_wait_ns.saturating_sub(earlier.barrier_wait_ns),
            idle_ns: self.idle_ns.saturating_sub(earlier.idle_ns),
        }
    }
}

/// Snapshot of the cumulative scheduling-overhead counters.
pub fn sched_totals() -> SchedTotals {
    SchedTotals {
        barrier_wait_ns: BARRIER_WAIT_NS.load(Ordering::Relaxed),
        idle_ns: IDLE_NS.load(Ordering::Relaxed),
    }
}

pub(crate) fn record_barrier_wait(ns: u64) {
    BARRIER_WAIT_NS.fetch_add(ns, Ordering::Relaxed);
}

pub(crate) fn record_idle(ns: u64) {
    IDLE_NS.fetch_add(ns, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(items: Vec<usize>, chunks: Vec<usize>) -> RegionStats {
        RegionStats {
            items_per_thread: items,
            chunks_per_thread: chunks,
            elapsed: Duration::from_millis(1),
            fork_join_overhead: Duration::ZERO,
            barrier_wait_per_thread: Vec::new(),
        }
    }

    #[test]
    fn totals() {
        let s = stats(vec![10, 20, 30], vec![1, 2, 3]);
        assert_eq!(s.total_items(), 60);
        assert_eq!(s.total_chunks(), 6);
    }

    #[test]
    fn balanced_region_has_unit_imbalance() {
        let s = stats(vec![25, 25, 25, 25], vec![1; 4]);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_region_reports_ratio() {
        // max = 40, mean = 20 -> imbalance 2.0
        let s = stats(vec![40, 20, 10, 10], vec![1; 4]);
        assert!((s.imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_region_defaults() {
        let s = stats(vec![0, 0], vec![0, 0]);
        assert_eq!(s.imbalance(), 1.0);
        assert_eq!(s.participation(), 0.0);
        let s = stats(vec![], vec![]);
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn participation_counts_active_threads() {
        let s = stats(vec![5, 0, 3, 0], vec![1, 0, 1, 0]);
        assert!((s.participation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn barrier_wait_totals_sum_per_thread_values() {
        let mut s = stats(vec![1, 1], vec![1, 1]);
        assert_eq!(s.total_barrier_wait(), Duration::ZERO);
        s.barrier_wait_per_thread = vec![Duration::from_micros(3), Duration::from_micros(7)];
        assert_eq!(s.total_barrier_wait(), Duration::from_micros(10));
    }

    #[test]
    fn sched_totals_accumulate_monotonically() {
        let before = sched_totals();
        record_barrier_wait(11);
        record_idle(5);
        let after = sched_totals();
        assert!(after.barrier_wait_ns >= before.barrier_wait_ns + 11);
        assert!(after.idle_ns >= before.idle_ns + 5);
    }

    #[test]
    fn delta_since_isolates_one_phase() {
        let totals = SchedTotals {
            barrier_wait_ns: 100,
            idle_ns: 40,
        };
        let epoch = SchedTotals {
            barrier_wait_ns: 75,
            idle_ns: 40,
        };
        let delta = totals.delta_since(epoch);
        assert_eq!(delta.barrier_wait_ns, 25);
        assert_eq!(delta.idle_ns, 0);
        // A swapped pair saturates to zero instead of wrapping.
        let swapped = epoch.delta_since(totals);
        assert_eq!(swapped, SchedTotals::default());
    }
}
