//! Loop schedules: how a `parallel for` index space is carved into chunks
//! and handed to threads.
//!
//! The three families mirror OpenMP's `schedule(static|dynamic|guided)`
//! clause semantics (OpenMP 5.2 §11.5.3), which is also what Julia
//! `@threads :static` (block static) and Numba `prange` (static chunks over
//! its workqueue backend) boil down to.

use crate::pad::CachePadded;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A contiguous chunk of loop iterations assigned to one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First iteration index (inclusive).
    pub start: usize,
    /// One past the last iteration index.
    pub end: usize,
}

impl Chunk {
    /// Number of iterations in the chunk.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the chunk covers no iterations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// The chunk as an index range.
    #[inline]
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }
}

/// Loop schedule selecting how iterations map to threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// `schedule(static)`: one contiguous block per thread, sizes differing
    /// by at most one iteration. This is the schedule Julia's
    /// `Threads.@threads` uses and the OpenMP default on the paper's
    /// compilers.
    StaticBlock,
    /// `schedule(static, chunk)`: fixed-size chunks dealt round-robin.
    StaticChunked {
        /// Iterations per chunk (>= 1).
        chunk: usize,
    },
    /// `schedule(dynamic, chunk)`: threads grab fixed-size chunks from a
    /// shared counter as they finish previous work.
    Dynamic {
        /// Iterations per grab (>= 1).
        chunk: usize,
    },
    /// `schedule(guided, min_chunk)`: like dynamic but the grabbed chunk is
    /// proportional to the remaining work divided by the team size,
    /// shrinking geometrically to `min_chunk`.
    Guided {
        /// Lower bound on the grabbed chunk size (>= 1).
        min_chunk: usize,
    },
}

impl Schedule {
    /// The OpenMP default used throughout the paper's CPU experiments.
    pub const DEFAULT: Schedule = Schedule::StaticBlock;

    /// `true` for schedules whose assignment is fixed before the loop runs.
    pub fn is_static(&self) -> bool {
        matches!(self, Schedule::StaticBlock | Schedule::StaticChunked { .. })
    }
}

/// Computes the contiguous block owned by `thread` under
/// [`Schedule::StaticBlock`]: the first `n % threads` threads receive one
/// extra iteration, matching `libgomp`/`libomp` behaviour.
pub fn static_block(n: usize, threads: usize, thread: usize) -> Chunk {
    debug_assert!(thread < threads);
    let base = n / threads;
    let extra = n % threads;
    let start = thread * base + thread.min(extra);
    let len = base + usize::from(thread < extra);
    Chunk {
        start,
        end: start + len,
    }
}

/// Iterator over the chunks owned by one thread under a static schedule.
///
/// For [`Schedule::StaticBlock`] it yields a single block; for
/// [`Schedule::StaticChunked`] it yields every `threads`-th chunk of size
/// `chunk` starting at `thread * chunk`.
#[derive(Debug, Clone)]
pub struct StaticChunks {
    n: usize,
    stride: usize,
    chunk: usize,
    next: usize,
    done: bool,
}

impl StaticChunks {
    /// Builds the chunk iterator for `thread` of `threads` over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is not static, `threads == 0`, or
    /// `thread >= threads`.
    pub fn new(schedule: Schedule, n: usize, threads: usize, thread: usize) -> Self {
        assert!(threads > 0, "thread team must be non-empty");
        assert!(thread < threads, "thread index out of range");
        match schedule {
            Schedule::StaticBlock => {
                let block = static_block(n, threads, thread);
                StaticChunks {
                    n: block.end,
                    stride: 0,
                    chunk: block.len().max(1),
                    next: block.start,
                    done: block.is_empty(),
                }
            }
            Schedule::StaticChunked { chunk } => {
                assert!(chunk > 0, "chunk size must be positive");
                StaticChunks {
                    n,
                    stride: threads * chunk,
                    chunk,
                    next: thread * chunk,
                    done: thread * chunk >= n,
                }
            }
            _ => panic!("StaticChunks requires a static schedule"),
        }
    }
}

impl Iterator for StaticChunks {
    type Item = Chunk;

    fn next(&mut self) -> Option<Chunk> {
        if self.done || self.next >= self.n {
            return None;
        }
        let start = self.next;
        let end = (start + self.chunk).min(self.n);
        if self.stride == 0 {
            self.done = true;
        } else {
            self.next = start + self.stride;
        }
        Some(Chunk { start, end })
    }
}

/// Shared state for dynamic and guided schedules: a single atomic cursor
/// over `0..n`, grabbed in chunks.
///
/// The cursor atomic is padded to its own cache-line pair: every worker
/// RMWs it on every grab, and without padding it shares a line with
/// whatever neighbours it on the coordinator's stack (the per-thread
/// stats slots), turning each grab into cross-core invalidation traffic
/// on unrelated data.
#[derive(Debug)]
pub(crate) struct DynamicCursor {
    next: CachePadded<AtomicUsize>,
    n: usize,
}

impl DynamicCursor {
    pub(crate) fn new(n: usize) -> Self {
        DynamicCursor {
            next: CachePadded::new(AtomicUsize::new(0)),
            n,
        }
    }

    /// Grabs the next chunk under `schedule`, or `None` when the index
    /// space is exhausted. `threads` is the team size (used by guided).
    pub(crate) fn grab(&self, schedule: Schedule, threads: usize) -> Option<Chunk> {
        match schedule {
            Schedule::Dynamic { chunk } => {
                debug_assert!(chunk > 0);
                let start = self.next.fetch_add(chunk, Ordering::Relaxed);
                if start >= self.n {
                    return None;
                }
                Some(Chunk {
                    start,
                    end: (start + chunk).min(self.n),
                })
            }
            Schedule::Guided { min_chunk } => {
                debug_assert!(min_chunk > 0);
                // CAS loop: chunk size = ceil(remaining / threads), clamped
                // below by min_chunk — the classic guided self-scheduling
                // formula (Polychronopoulos & Kuck).
                let mut cur = self.next.load(Ordering::Relaxed);
                loop {
                    if cur >= self.n {
                        return None;
                    }
                    let remaining = self.n - cur;
                    let size = remaining.div_ceil(threads).max(min_chunk).min(remaining);
                    match self.next.compare_exchange_weak(
                        cur,
                        cur + size,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            return Some(Chunk {
                                start: cur,
                                end: cur + size,
                            })
                        }
                        Err(seen) => cur = seen,
                    }
                }
            }
            _ => panic!("DynamicCursor requires a dynamic or guided schedule"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn cover_static(schedule: Schedule, n: usize, threads: usize) -> Vec<usize> {
        let mut hits = vec![0usize; n];
        for t in 0..threads {
            for c in StaticChunks::new(schedule, n, threads, t) {
                for i in c.range() {
                    hits[i] += 1;
                }
            }
        }
        hits
    }

    #[test]
    fn static_block_partitions_exactly() {
        for (n, threads) in [(0, 4), (1, 4), (7, 3), (64, 64), (100, 7), (1000, 13)] {
            let hits = cover_static(Schedule::StaticBlock, n, threads);
            assert!(hits.iter().all(|&h| h == 1), "n={n} t={threads}");
        }
    }

    #[test]
    fn static_block_sizes_differ_by_at_most_one() {
        let n = 103;
        let threads = 10;
        let sizes: Vec<usize> = (0..threads)
            .map(|t| static_block(n, threads, t).len())
            .collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
        assert_eq!(sizes.iter().sum::<usize>(), n);
        // Extra iterations go to the lowest-numbered threads.
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn static_block_is_contiguous_and_ordered() {
        let n = 57;
        let threads = 5;
        let mut prev_end = 0;
        for t in 0..threads {
            let b = static_block(n, threads, t);
            assert_eq!(b.start, prev_end);
            prev_end = b.end;
        }
        assert_eq!(prev_end, n);
    }

    #[test]
    fn static_chunked_partitions_exactly() {
        for (n, threads, chunk) in [(100, 4, 8), (99, 7, 1), (5, 8, 2), (0, 3, 4), (64, 2, 64)] {
            let hits = cover_static(Schedule::StaticChunked { chunk }, n, threads);
            assert!(hits.iter().all(|&h| h == 1), "n={n} t={threads} c={chunk}");
        }
    }

    #[test]
    fn static_chunked_round_robin_order() {
        // n=10, threads=2, chunk=3: thread 0 gets [0,3) and [6,9);
        // thread 1 gets [3,6) and [9,10).
        let t0: Vec<Chunk> =
            StaticChunks::new(Schedule::StaticChunked { chunk: 3 }, 10, 2, 0).collect();
        let t1: Vec<Chunk> =
            StaticChunks::new(Schedule::StaticChunked { chunk: 3 }, 10, 2, 1).collect();
        assert_eq!(
            t0,
            vec![Chunk { start: 0, end: 3 }, Chunk { start: 6, end: 9 }]
        );
        assert_eq!(
            t1,
            vec![Chunk { start: 3, end: 6 }, Chunk { start: 9, end: 10 }]
        );
    }

    #[test]
    fn dynamic_cursor_partitions_exactly() {
        let n = 1003;
        let cursor = DynamicCursor::new(n);
        let mut seen = HashSet::new();
        while let Some(c) = cursor.grab(Schedule::Dynamic { chunk: 7 }, 4) {
            for i in c.range() {
                assert!(seen.insert(i), "index {i} assigned twice");
            }
        }
        assert_eq!(seen.len(), n);
    }

    #[test]
    fn guided_chunks_shrink_geometrically() {
        let n = 1024;
        let threads = 4;
        let cursor = DynamicCursor::new(n);
        let mut sizes = Vec::new();
        while let Some(c) = cursor.grab(Schedule::Guided { min_chunk: 4 }, threads) {
            sizes.push(c.len());
        }
        // First grab is remaining/threads = 256.
        assert_eq!(sizes[0], 256);
        // Monotonically non-increasing until the floor.
        assert!(sizes.windows(2).all(|w| w[0] >= w[1] || w[1] == 4));
        // Everything covered exactly once (sizes sum to n).
        assert_eq!(sizes.iter().sum::<usize>(), n);
        // Floor respected except possibly the final remainder chunk.
        for (i, &s) in sizes.iter().enumerate() {
            if i + 1 < sizes.len() {
                assert!(s >= 4);
            }
        }
    }

    #[test]
    fn guided_under_concurrency_covers_everything() {
        let n = 50_000;
        let threads = 8;
        let cursor = std::sync::Arc::new(DynamicCursor::new(n));
        let counts: Vec<_> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let counts = std::sync::Arc::new(counts);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let cursor = cursor.clone();
                let counts = counts.clone();
                s.spawn(move || {
                    while let Some(c) = cursor.grab(Schedule::Guided { min_chunk: 2 }, threads) {
                        for i in c.range() {
                            counts[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunk_helpers() {
        let c = Chunk { start: 3, end: 8 };
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        assert_eq!(c.range(), 3..8);
        assert!(Chunk { start: 4, end: 4 }.is_empty());
    }

    #[test]
    fn schedule_classification() {
        assert!(Schedule::StaticBlock.is_static());
        assert!(Schedule::StaticChunked { chunk: 4 }.is_static());
        assert!(!Schedule::Dynamic { chunk: 1 }.is_static());
        assert!(!Schedule::Guided { min_chunk: 1 }.is_static());
    }

    #[test]
    fn empty_range_yields_no_chunks() {
        assert_eq!(StaticChunks::new(Schedule::StaticBlock, 0, 4, 2).count(), 0);
        let cursor = DynamicCursor::new(0);
        assert_eq!(cursor.grab(Schedule::Dynamic { chunk: 4 }, 2), None);
        assert_eq!(cursor.grab(Schedule::Guided { min_chunk: 4 }, 2), None);
    }

    #[test]
    #[should_panic(expected = "thread index out of range")]
    fn thread_out_of_range_panics() {
        let _ = StaticChunks::new(Schedule::StaticBlock, 10, 4, 4);
    }
}
