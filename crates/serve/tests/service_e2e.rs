//! End-to-end service tests: the joined artifact is byte-identical to
//! the `--shard 0/1` single-shot artifact for every worker count, lease
//! size, and kill/retry schedule — over loopback channels and over real
//! TCP sockets — and dead leases are re-leased to surviving workers.

use perfport_core::{render_study_csv, run_study_sharded, Shard, StudyConfig};
use perfport_serve::comm::{tcp_v1::TcpCommunicator, Communicator, Loopback};
use perfport_serve::coordinator::{self, strip_trailer, CoordinatorConfig};
use perfport_serve::frame::{Frame, Role};
use perfport_serve::local::{run_local, KillPlan};
use perfport_serve::worker::{self, WorkerConfig};
use std::sync::mpsc;
use std::time::Duration;

const IDS: &[&str] = &["fig5c", "fig7a"];

fn cfg(lease_points: usize) -> CoordinatorConfig {
    CoordinatorConfig {
        ids: IDS.iter().map(|s| s.to_string()).collect(),
        quick: true,
        lease_points,
        ttl: Duration::from_secs(30),
        poll: Duration::from_millis(5),
        backoff: Duration::from_millis(10),
        max_retries: 3,
        deadline: Some(Duration::from_secs(120)),
        verbose: false,
    }
}

fn single_shot() -> String {
    let results = run_study_sharded(IDS, &StudyConfig::quick(), Shard::FULL, 1);
    render_study_csv(&results, true)
}

#[test]
fn any_worker_count_and_lease_size_is_byte_identical() {
    let expected = single_shot();
    for workers in [1usize, 2, 4] {
        for lease_points in [1usize, 3, 4] {
            let joined = run_local(&cfg(lease_points), workers, None)
                .unwrap_or_else(|e| panic!("workers={workers} lease={lease_points}: {e}"));
            assert_eq!(
                joined.csv, expected,
                "workers={workers} lease={lease_points}"
            );
            // The rendered artifact strips back to the same bytes.
            assert_eq!(strip_trailer(&joined.render()), expected);
            // Every worker that joined left its provenance manifest.
            assert_eq!(joined.manifests.len(), workers);
            for (ident, p) in &joined.manifests {
                assert!(
                    p.manifest.contains("perfport-manifest/1"),
                    "{ident} manifest: {}",
                    p.manifest
                );
            }
        }
    }
}

#[test]
fn dead_lease_is_re_leased_and_the_join_is_unchanged() {
    let expected = single_shot();
    let mut config = cfg(2);
    config.max_retries = 5;
    let joined = run_local(
        &config,
        3,
        Some(KillPlan {
            worker: 1,
            after_points: 2,
        }),
    )
    .expect("survivors absorb the dead worker's range");
    assert_eq!(joined.csv, expected);
    // The victim completed one 2-point lease before dying mid-lease-2,
    // so its manifest is embedded with the leases it actually finished.
    assert_eq!(joined.manifests["w1"].leases, 1);
    assert!(joined.manifests.contains_key("w0"));
    assert!(joined.manifests.contains_key("w2"));
    let rendered = joined.render();
    assert!(rendered.contains("# worker-manifest w1 leases=1"));
}

#[test]
fn mute_worker_misses_heartbeats_and_its_lease_moves_on() {
    // A worker that hellos, takes a lease, and then goes silent without
    // closing its connection: only the heartbeat TTL can free its
    // range. Drive that worker by hand over a raw loopback pair.
    let expected = single_shot();
    let mut config = cfg(2);
    config.ttl = Duration::from_millis(200);
    config.max_retries = 5;

    let (mute_coord_end, mut mute_worker_end) = Loopback::pair();
    let (live_coord_end, mut live_worker_end) = Loopback::pair();
    let (tx, rx) = mpsc::channel::<Box<dyn Communicator>>();
    tx.send(Box::new(mute_coord_end)).unwrap();
    tx.send(Box::new(live_coord_end)).unwrap();
    drop(tx);

    let mute = std::thread::spawn(move || {
        mute_worker_end
            .send(&Frame::Hello {
                role: Role::Worker,
                ident: "mute".to_string(),
                detail: "{\"schema\": \"perfport-manifest/1\"}".to_string(),
            })
            .unwrap();
        let hello = mute_worker_end.recv().unwrap();
        assert!(matches!(
            hello,
            Frame::Hello {
                role: Role::Coordinator,
                ..
            }
        ));
        let lease = mute_worker_end.recv().unwrap();
        assert!(matches!(lease, Frame::Lease { .. }), "{lease:?}");
        // ... and then say nothing at all, holding the connection open
        // until the coordinator finishes without us.
        loop {
            match mute_worker_end.recv() {
                Ok(Frame::Bye { .. }) | Err(_) => break,
                Ok(_) => {}
            }
        }
    });
    let live = std::thread::spawn(move || {
        worker::run(&mut live_worker_end, &WorkerConfig::new("live")).expect("live worker finishes")
    });

    let joined = coordinator::run(rx, &config).expect("TTL re-lease rescues the run");
    mute.join().unwrap();
    let summary = live.join().unwrap();

    assert_eq!(joined.csv, expected);
    // The live worker ends up computing every point, including the
    // range first leased to the mute worker.
    assert_eq!(summary.points, expected.lines().count() - 1);
    // The mute worker still appears in the provenance trailer — it
    // joined the run even though it finished nothing.
    assert_eq!(joined.manifests["mute"].leases, 0);
    assert!(joined.manifests["live"].leases >= 1);
}

#[test]
fn tcp_transport_is_byte_identical_too() {
    let expected = single_shot();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let (tx, rx) = mpsc::channel::<Box<dyn Communicator>>();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            if tx.send(Box::new(TcpCommunicator::new(stream))).is_err() {
                break;
            }
        }
    });

    let patience = Duration::from_secs(10);
    let workers: Vec<_> = (0..2)
        .map(|i| {
            std::thread::spawn(move || {
                let mut comm =
                    TcpCommunicator::connect(addr, patience).expect("reach the coordinator");
                worker::run(&mut comm, &WorkerConfig::new(format!("tcp{i}")))
            })
        })
        .collect();

    let joined = coordinator::run(rx, &cfg(3)).expect("TCP run succeeds");
    let mut points = 0;
    for handle in workers {
        points += handle
            .join()
            .unwrap()
            .expect("worker session succeeds")
            .points;
    }
    assert_eq!(joined.csv, expected);
    assert_eq!(points, expected.lines().count() - 1);
    assert!(joined.manifests.contains_key("tcp0"));
    assert!(joined.manifests.contains_key("tcp1"));
}
