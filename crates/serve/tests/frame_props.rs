//! Property tests for the wire codec: encoding round-trips bit for
//! bit, and decoding is total — truncated, mutated, oversized, or
//! outright random bytes produce typed [`FrameError`]s, never panics.

use perfport_serve::frame::{DecodeStep, Frame, FrameError, Role, HEADER_LEN, MAX_PAYLOAD};
use proptest::collection;
use proptest::prelude::*;

/// Printable-ASCII strings (lengths in `len`), which is what idents,
/// specs, CSV fragments, and one-line manifests are made of.
fn ascii_text(len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    collection::vec(32u8..127, len).prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

/// Builds one frame of the kind selected by `kind` from the shared
/// field pool, so a single strategy covers the whole enum.
fn build_frame(kind: usize, a: u64, b: u64, c: u64, coord: bool, s1: String, s2: String) -> Frame {
    match kind {
        0 => Frame::Hello {
            role: if coord {
                Role::Coordinator
            } else {
                Role::Worker
            },
            ident: s1,
            detail: s2,
        },
        1 => Frame::Lease {
            lease_id: a,
            start: b,
            end: c,
        },
        2 => Frame::Result {
            lease_id: a,
            start: b,
            end: c,
            csv: s1,
            manifest: s2,
        },
        3 => Frame::Heartbeat {
            lease_id: a,
            done: b,
        },
        _ => Frame::Bye { reason: s1 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_frames_round_trip(
        kind in 0usize..5,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in 0u64..u64::MAX,
        coord in proptest::bool::ANY,
        s1 in ascii_text(0..48),
        s2 in ascii_text(0..256),
    ) {
        let frame = build_frame(kind, a, b, c, coord, s1, s2);
        let bytes = frame.encode();
        prop_assert_eq!(Frame::decode_exact(&bytes), Ok(frame.clone()));
        // The streaming decoder agrees with the datagram decoder.
        match Frame::decode_step(&bytes) {
            Ok(DecodeStep::Ready { frame: streamed, consumed }) => {
                prop_assert_eq!(streamed, frame);
                prop_assert_eq!(consumed, bytes.len());
            }
            other => prop_assert!(false, "decode_step: {:?}", other),
        }
    }

    #[test]
    fn every_prefix_is_truncated_never_a_panic(
        kind in 0usize..5,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in 0u64..u64::MAX,
        coord in proptest::bool::ANY,
        s1 in ascii_text(0..48),
        s2 in ascii_text(0..256),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = build_frame(kind, a, b, c, coord, s1, s2).encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < bytes.len());
        match Frame::decode_exact(&bytes[..cut]) {
            Err(FrameError::Truncated { have, need }) => {
                prop_assert_eq!(have, cut);
                prop_assert!(need > 0);
                prop_assert!(cut + need <= bytes.len());
            }
            other => prop_assert!(false, "cut at {}: {:?}", cut, other),
        }
        // The streaming decoder reports the same shortfall as Incomplete.
        match Frame::decode_step(&bytes[..cut]) {
            Ok(DecodeStep::Incomplete { need }) => prop_assert!(need > 0),
            other => prop_assert!(false, "decode_step cut at {}: {:?}", cut, other),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected_exactly(
        kind in 0usize..5,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in 0u64..u64::MAX,
        coord in proptest::bool::ANY,
        s1 in ascii_text(0..48),
        s2 in ascii_text(0..64),
        junk in collection::vec(0u8..=255, 1..32),
    ) {
        let frame = build_frame(kind, a, b, c, coord, s1, s2);
        let mut bytes = frame.encode();
        let frame_len = bytes.len();
        bytes.extend_from_slice(&junk);
        prop_assert_eq!(
            Frame::decode_exact(&bytes),
            Err(FrameError::TrailingBytes { extra: junk.len() })
        );
        // The streaming decoder instead consumes exactly one frame and
        // leaves the junk for the next decode attempt.
        match Frame::decode_step(&bytes) {
            Ok(DecodeStep::Ready { frame: streamed, consumed }) => {
                prop_assert_eq!(streamed, frame);
                prop_assert_eq!(consumed, frame_len);
            }
            other => prop_assert!(false, "decode_step: {:?}", other),
        }
    }

    #[test]
    fn mutated_frames_never_panic(
        kind in 0usize..5,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        c in 0u64..u64::MAX,
        coord in proptest::bool::ANY,
        s1 in ascii_text(0..48),
        s2 in ascii_text(0..64),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut bytes = build_frame(kind, a, b, c, coord, s1, s2).encode();
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= flip;
        // Totality: any outcome is fine, panicking is not.
        let _ = Frame::decode_exact(&bytes);
        let _ = Frame::decode_step(&bytes);
    }

    #[test]
    fn random_bytes_never_panic(bytes in collection::vec(0u8..=255, 0..96)) {
        let _ = Frame::decode_exact(&bytes);
        let _ = Frame::decode_step(&bytes);
    }

    #[test]
    fn oversized_lengths_are_rejected_before_allocation(
        excess in 1u32..=(u32::MAX - MAX_PAYLOAD),
        version in 0u8..=255,
        tag in 0u8..=255,
    ) {
        // A hostile length field is refused on the header alone — no
        // matter what the rest of the header claims, and long before
        // any payload could be buffered.
        let mut bytes = vec![0u8; HEADER_LEN];
        bytes[0..4].copy_from_slice(&(MAX_PAYLOAD + excess).to_le_bytes());
        bytes[4] = version;
        bytes[5] = tag;
        prop_assert_eq!(
            Frame::decode_step(&bytes),
            Err(FrameError::Oversized { len: MAX_PAYLOAD + excess })
        );
    }

    #[test]
    fn split_streams_reassemble(
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        reason in ascii_text(0..64),
        split_frac in 0.0f64..1.0,
    ) {
        // Two frames over one stream, delivered with an arbitrary split
        // point: the incremental decoder recovers both regardless of
        // where the transport happened to fragment.
        let first = Frame::Heartbeat { lease_id: a, done: b };
        let second = Frame::Bye { reason };
        let mut stream = first.encode();
        stream.extend_from_slice(&second.encode());
        let split = ((stream.len() as f64) * split_frac) as usize;

        let mut buf: Vec<u8> = Vec::new();
        let mut decoded = Vec::new();
        for chunk in [&stream[..split], &stream[split..]] {
            buf.extend_from_slice(chunk);
            loop {
                match Frame::decode_step(&buf) {
                    Ok(DecodeStep::Ready { frame, consumed }) => {
                        decoded.push(frame);
                        buf.drain(..consumed);
                    }
                    Ok(DecodeStep::Incomplete { .. }) => break,
                    Err(e) => {
                        prop_assert!(false, "split at {}: {}", split, e);
                        break;
                    }
                }
            }
        }
        prop_assert_eq!(decoded, vec![first, second]);
        prop_assert!(buf.is_empty());
    }
}
