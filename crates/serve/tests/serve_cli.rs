//! CLI tests for the `serve_coordinator` / `serve_worker` binaries:
//! the `--local` self-test and the real TCP pairing both produce a
//! joined artifact whose body is byte-identical to the single-shot
//! study, usage errors exit 2, and the fault-injection drill exits 3.

use perfport_core::{render_study_csv, run_study_sharded, Shard, StudyConfig};
use std::io::BufRead;
use std::process::{Command, Stdio};

const COORDINATOR: &str = env!("CARGO_BIN_EXE_serve_coordinator");
const WORKER: &str = env!("CARGO_BIN_EXE_serve_worker");

fn single_shot() -> String {
    let results = run_study_sharded(&["fig5c", "fig7a"], &StudyConfig::quick(), Shard::FULL, 1);
    render_study_csv(&results, true)
}

fn strip_comment_lines(rendered: &str) -> String {
    rendered
        .lines()
        .filter(|line| !line.starts_with('#'))
        .map(|line| format!("{line}\n"))
        .collect()
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("perfport-serve-{}-{name}", std::process::id()))
}

#[test]
fn local_self_test_writes_the_joined_artifact() {
    let out = temp_path("local.csv");
    let status = Command::new(COORDINATOR)
        .args([
            "--local",
            "2",
            "--figures",
            "fig5c,fig7a",
            "--quick",
            "--lease",
            "3",
            "--deadline-ms",
            "120000",
            "--out",
        ])
        .arg(&out)
        .stderr(Stdio::null())
        .status()
        .expect("spawn coordinator");
    assert!(status.success());
    let rendered = std::fs::read_to_string(&out).expect("joined artifact written");
    let _ = std::fs::remove_file(&out);
    assert_eq!(strip_comment_lines(&rendered), single_shot());
    assert!(rendered.contains("# perfport-serve/1 join trailer"));
    assert!(rendered.contains("# worker-manifest w0 "));
    assert!(rendered.contains("# worker-manifest w1 "));
}

#[test]
fn local_kill_drill_is_byte_identical() {
    let output = Command::new(COORDINATOR)
        .args([
            "--local=3",
            "--kill-worker=1",
            "--kill-after=2",
            "--figures=fig5c,fig7a",
            "--quick",
            "--lease=2",
            "--retries=5",
            "--deadline-ms=120000",
        ])
        .stderr(Stdio::null())
        .output()
        .expect("spawn coordinator");
    assert!(output.status.success());
    let rendered = String::from_utf8(output.stdout).expect("CSV is UTF-8");
    assert_eq!(strip_comment_lines(&rendered), single_shot());
    // The killed worker's provenance is still embedded.
    assert!(rendered.contains("# worker-manifest w1 "));
}

#[test]
fn tcp_pairing_with_fault_injection_is_byte_identical() {
    let out = temp_path("tcp.csv");
    let mut coordinator = Command::new(COORDINATOR)
        .args([
            "--figures",
            "fig5c,fig7a",
            "--quick",
            "--listen",
            "127.0.0.1:0",
            "--lease",
            "2",
            "--retries",
            "5",
            "--deadline-ms",
            "120000",
            "--out",
        ])
        .arg(&out)
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn coordinator");

    // The coordinator announces its bound ephemeral port on stderr.
    let stderr = coordinator.stderr.take().expect("stderr piped");
    let mut reader = std::io::BufReader::new(stderr);
    let addr = loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read stderr") > 0,
            "coordinator exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("coordinator: listening on ") {
            break rest.to_string();
        }
    };
    // Keep draining stderr so the coordinator never blocks on the pipe.
    std::thread::spawn(move || for _ in reader.lines() {});

    // The doomed worker connects first so it is guaranteed a lease (and
    // therefore a mid-lease death) before the healthy worker can drain
    // the grid.
    let doomed = Command::new(WORKER)
        .args([
            "--connect",
            &addr,
            "--ident",
            "tcp-doomed",
            "--fail-after",
            "1",
        ])
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn doomed worker");
    let healthy = Command::new(WORKER)
        .args(["--connect", &addr, "--ident", "tcp-healthy"])
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn healthy worker");

    let doomed_status = doomed.wait_with_output().expect("doomed worker exits");
    assert_eq!(
        doomed_status.status.code(),
        Some(3),
        "fault injection exits 3"
    );
    assert!(healthy
        .wait_with_output()
        .expect("healthy worker exits")
        .status
        .success());
    assert!(coordinator.wait().expect("coordinator exits").success());

    let rendered = std::fs::read_to_string(&out).expect("joined artifact written");
    let _ = std::fs::remove_file(&out);
    assert_eq!(strip_comment_lines(&rendered), single_shot());
    assert!(rendered.contains("# worker-manifest tcp-healthy "));
    assert!(rendered.contains("# worker-manifest tcp-doomed leases=0 "));
}

#[test]
fn coordinator_usage_errors_exit_2() {
    for args in [
        vec!["--nonsense"],
        vec!["--local", "0"],
        vec!["--local", "2", "--listen", "127.0.0.1:0"],
        vec!["--kill-worker", "1"],
        vec!["--figures"],
        vec!["--figures", ""],
        vec!["--lease", "zero"],
    ] {
        let output = Command::new(COORDINATOR)
            .args(&args)
            .output()
            .expect("spawn coordinator");
        assert_eq!(output.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains("usage:"), "{args:?}: {stderr}");
    }
}

#[test]
fn worker_usage_errors_exit_2() {
    for args in [vec![], vec!["--connect"], vec!["--fail-after", "x"]] {
        let output = Command::new(WORKER)
            .args(&args)
            .output()
            .expect("spawn worker");
        assert_eq!(output.status.code(), Some(2), "{args:?}");
    }
}

#[test]
fn unknown_figure_panel_exits_1_with_a_named_error() {
    let output = Command::new(COORDINATOR)
        .args(["--local", "1", "--figures", "fig9z", "--quick"])
        .output()
        .expect("spawn coordinator");
    assert_eq!(output.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&output.stderr).contains("fig9z"));
}

#[test]
fn unreachable_coordinator_exits_1() {
    let output = Command::new(WORKER)
        .args(["--connect", "127.0.0.1:9", "--patience-ms", "200"])
        .output()
        .expect("spawn worker");
    assert_eq!(output.status.code(), Some(1));
}
