//! The worker side of the protocol: introduce yourself with a
//! provenance manifest, enumerate the same grid the coordinator serves,
//! then loop executing leases — one heartbeat per finished point, one
//! `Result` per finished range — until the coordinator says `Bye`.
//!
//! Heartbeats ride the point boundary on purpose: the worker stays
//! single-threaded (no timer thread racing the compute), and the
//! heartbeat cadence self-tunes to the workload — a lease of k points
//! emits k heartbeats. The coordinator's TTL therefore has to exceed
//! the slowest *single point*, not the whole lease, which `DESIGN.md`
//! states as the protocol's one timing obligation.

use crate::comm::Communicator;
use crate::coordinator::{parse_spec, validate_ids};
use crate::frame::{Frame, Role};
use crate::ServeError;
use perfport_core::{render_study_csv, shard::run_grid_point, study_grid, StudyConfig};

/// Options for one worker session.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Stable worker name; keys this worker's manifest in the joined
    /// artifact's trailer, so give every worker of a run a unique one.
    pub ident: String,
    /// Fault injection for the dead-lease drill: after computing this
    /// many points (across leases), the worker abandons its connection
    /// mid-lease — no `Result`, no `Bye` — exactly like a crashed
    /// machine. `None` disables.
    pub fail_after: Option<usize>,
    /// Emit progress lines on stderr.
    pub verbose: bool,
}

impl WorkerConfig {
    /// A quiet worker named `ident` with no fault injection.
    pub fn new(ident: impl Into<String>) -> WorkerConfig {
        WorkerConfig {
            ident: ident.into(),
            fail_after: None,
            verbose: false,
        }
    }
}

/// What a completed worker session did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Leases completed (`Result` frames sent).
    pub leases: usize,
    /// Grid points computed.
    pub points: usize,
}

/// The worker's one-line provenance manifest: `perfport-manifest/1`
/// JSON with newlines removed, suitable for `Hello`/`Result` frames and
/// the joined artifact's one-line-per-worker trailer.
pub fn manifest_line() -> String {
    perfport_bench::Manifest::collect(1)
        .to_json(0)
        .replace('\n', "")
}

/// Runs one worker session over an established connection: `Hello`
/// handshake, then the lease loop, until `Bye` or connection loss.
///
/// # Errors
///
/// [`ServeError::Comm`] on transport failure,
/// [`ServeError::Protocol`] when the coordinator misbehaves (bad spec,
/// lease beyond the grid), and [`ServeError::FaultInjected`] when the
/// configured `fail_after` drill triggers.
pub fn run(comm: &mut dyn Communicator, cfg: &WorkerConfig) -> Result<WorkerSummary, ServeError> {
    let manifest = manifest_line();
    let progress = |msg: &str| {
        if cfg.verbose {
            eprintln!("worker {}: {msg}", cfg.ident);
        }
    };
    comm.send(&Frame::Hello {
        role: Role::Worker,
        ident: cfg.ident.clone(),
        detail: manifest.clone(),
    })?;

    let (ids, quick) = match comm.recv()? {
        Frame::Hello {
            role: Role::Coordinator,
            detail,
            ..
        } => parse_spec(&detail).map_err(ServeError::Protocol)?,
        Frame::Bye { reason } => {
            return Err(ServeError::Protocol(format!(
                "coordinator refused the session: {reason}"
            )))
        }
        other => {
            return Err(ServeError::Protocol(format!(
                "expected coordinator hello, got {}",
                other.name()
            )))
        }
    };
    let id_refs = validate_ids(&ids).map_err(ServeError::Protocol)?;
    let study_cfg = if quick {
        StudyConfig::quick()
    } else {
        StudyConfig::default()
    };
    let grid = study_grid(&id_refs, &study_cfg);
    progress(&format!(
        "joined study of {} points across {} panel(s)",
        grid.len(),
        id_refs.len()
    ));

    let mut summary = WorkerSummary {
        leases: 0,
        points: 0,
    };
    loop {
        match comm.recv()? {
            Frame::Lease {
                lease_id,
                start,
                end,
            } => {
                let (start, end) = (start as usize, end as usize);
                if start >= end || end > grid.len() {
                    let detail = format!(
                        "lease {lease_id} range {start}..{end} exceeds the {}-point grid",
                        grid.len()
                    );
                    let _ = comm.send(&Frame::Bye {
                        reason: detail.clone(),
                    });
                    return Err(ServeError::Protocol(detail));
                }
                progress(&format!("lease {lease_id}: points {start}..{end}"));
                let mut results = Vec::with_capacity(end - start);
                for (done, idx) in (start..end).enumerate() {
                    if cfg.fail_after.is_some_and(|limit| summary.points >= limit) {
                        progress(&format!(
                            "fault injected after {} points: abandoning lease {lease_id}",
                            summary.points
                        ));
                        return Err(ServeError::FaultInjected {
                            after: summary.points,
                        });
                    }
                    results.push(run_grid_point(&grid[idx], &study_cfg));
                    summary.points += 1;
                    perfport_telemetry::counter_add("serve/worker_points", 1);
                    comm.send(&Frame::Heartbeat {
                        lease_id,
                        done: (done + 1) as u64,
                    })?;
                }
                comm.send(&Frame::Result {
                    lease_id,
                    start: start as u64,
                    end: end as u64,
                    csv: render_study_csv(&results, false),
                    manifest: manifest.clone(),
                })?;
                summary.leases += 1;
            }
            Frame::Bye { reason } => {
                progress(&format!("bye from coordinator ({reason})"));
                return Ok(summary);
            }
            other => {
                let detail = format!("unexpected {} frame from coordinator", other.name());
                let _ = comm.send(&Frame::Bye {
                    reason: detail.clone(),
                });
                return Err(ServeError::Protocol(detail));
            }
        }
    }
}
