//! The lease-granting coordinator: owns the study grid, hands
//! contiguous index ranges to workers, re-leases ranges whose workers
//! go quiet, and reassembles the joined artifact in canonical order.
//!
//! The state machine (normative version in `DESIGN.md` § "perfport-serve
//! wire protocol"):
//!
//! ```text
//!             grant                    Result (range matches)
//! Pending ───────────────▶ Leased ───────────────────────────▶ Done
//!    ▲                       │
//!    │   deadline missed /   │
//!    │   worker closed/Bye   │  (attempt += 1; attempt > retries
//!    └───────────────────────┘   aborts the run: LeaseExhausted)
//! ```
//!
//! A worker whose lease expires goes on *probation*: it is excluded
//! from new grants until its next frame proves it alive, so an expired
//! range migrates to a different worker instead of bouncing back to
//! the silent one until retries run out.
//!
//! Determinism: the joined artifact is assembled from per-range CSV
//! fragments keyed by range start and emitted in range order, so worker
//! count, lease size, interleaving, and kill/retry schedules never
//! reach the output. Stripping the `#`-prefixed trailer reproduces the
//! `--shard 0/1` single-shot artifact byte for byte — the PR 5 contract
//! lifted over the wire.
//!
//! # Examples
//!
//! Lease ranges split the grid and rejoin to cover it exactly — the
//! split/rejoin satellite doc-example:
//!
//! ```
//! use perfport_serve::coordinator::lease_ranges;
//!
//! let ranges = lease_ranges(10, 4);
//! assert_eq!(ranges, vec![0..4, 4..8, 8..10]);
//! // Rejoining in range order tiles the grid with no gap or overlap,
//! // which is what makes the joined artifact canonical.
//! assert_eq!(ranges.first().unwrap().start, 0);
//! assert!(ranges.windows(2).all(|w| w[0].end == w[1].start));
//! assert_eq!(ranges.last().unwrap().end, 10);
//! ```

use crate::comm::{CommError, Communicator};
use crate::frame::{Frame, Role, PROTOCOL_VERSION};
use crate::ServeError;
use perfport_core::{figure_specs, study_grid, StudyConfig, STUDY_CSV_HEADER};
use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

/// Everything the coordinator needs to run one distributed study.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Figure panel ids whose grid points are served (canonical order
    /// follows this list). Must name registered panels.
    pub ids: Vec<String>,
    /// Run the reduced quick sweep instead of the paper sweep.
    pub quick: bool,
    /// Grid points per lease (the last lease of the grid may be
    /// shorter). The byte-identity contract holds for any value ≥ 1.
    pub lease_points: usize,
    /// Heartbeat time-to-live: a leased range whose worker has not
    /// heartbeat within this window is re-leased.
    pub ttl: Duration,
    /// Per-connection receive poll window of the event loop.
    pub poll: Duration,
    /// Delay before an expired range becomes grantable again, scaled
    /// linearly by its attempt count (bounded backoff).
    pub backoff: Duration,
    /// Re-lease attempts allowed per range before the run aborts.
    pub max_retries: usize,
    /// Overall wall-clock cap for the run (`None`: unbounded). CI sets
    /// this so a wedged run fails instead of hanging.
    pub deadline: Option<Duration>,
    /// Emit progress lines on stderr.
    pub verbose: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> CoordinatorConfig {
        CoordinatorConfig {
            ids: figure_specs().iter().map(|s| s.id.to_string()).collect(),
            quick: false,
            lease_points: 4,
            ttl: Duration::from_secs(30),
            poll: Duration::from_millis(10),
            backoff: Duration::from_millis(250),
            max_retries: 3,
            deadline: None,
            verbose: false,
        }
    }
}

impl CoordinatorConfig {
    /// The study spec string the coordinator's `Hello` carries, e.g.
    /// `"ids=fig5c,fig7a;quick=1"`. Workers parse it with
    /// [`parse_spec`] and enumerate the identical grid.
    pub fn spec_string(&self) -> String {
        format!("ids={};quick={}", self.ids.join(","), u8::from(self.quick))
    }

    /// The study configuration the spec selects.
    pub fn study_config(&self) -> StudyConfig {
        if self.quick {
            StudyConfig::quick()
        } else {
            StudyConfig::default()
        }
    }
}

/// Parses a coordinator `Hello` study spec (see
/// [`CoordinatorConfig::spec_string`]) into `(panel ids, quick)`.
///
/// # Errors
///
/// A message naming the malformed part: missing keys, unknown keys, or
/// a non-boolean quick value. Panel ids are validated separately by
/// [`validate_ids`].
pub fn parse_spec(spec: &str) -> Result<(Vec<String>, bool), String> {
    let mut ids = None;
    let mut quick = None;
    for part in spec.split(';') {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("spec part '{part}' is not key=value"))?;
        match key {
            "ids" => {
                ids = Some(
                    value
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(str::to_string)
                        .collect::<Vec<_>>(),
                )
            }
            "quick" => {
                quick = Some(match value {
                    "0" => false,
                    "1" => true,
                    other => return Err(format!("quick must be 0 or 1, got '{other}'")),
                })
            }
            other => return Err(format!("unknown spec key '{other}'")),
        }
    }
    let ids = ids.ok_or_else(|| "spec is missing ids=".to_string())?;
    let quick = quick.ok_or_else(|| "spec is missing quick=".to_string())?;
    if ids.is_empty() {
        return Err("spec names no figure panels".to_string());
    }
    Ok((ids, quick))
}

/// Checks every id against the figure registry, returning the
/// `&'static str` panel ids the grid enumerator needs.
///
/// # Errors
///
/// Names the first unregistered panel id.
pub fn validate_ids(ids: &[String]) -> Result<Vec<&'static str>, String> {
    let specs = figure_specs();
    ids.iter()
        .map(|id| {
            specs
                .iter()
                .find(|s| s.id == id.as_str())
                .map(|s| s.id)
                .ok_or_else(|| format!("unknown figure panel '{id}'"))
        })
        .collect()
}

/// Splits `total` grid points into contiguous lease ranges of
/// `lease_points` (the final range takes the remainder). Ranges are
/// returned in canonical order; rejoining them in that order tiles
/// `0..total` exactly.
pub fn lease_ranges(total: usize, lease_points: usize) -> Vec<Range<usize>> {
    let step = lease_points.max(1);
    let mut out = Vec::with_capacity(total.div_ceil(step));
    let mut start = 0;
    while start < total {
        let end = (start + step).min(total);
        out.push(start..end);
        start = end;
    }
    out
}

/// Provenance one worker contributed to a joined artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerProvenance {
    /// The worker's one-line `perfport-manifest/1` JSON (latest wins if
    /// a worker reconnects).
    pub manifest: String,
    /// Leases this worker completed (0 for a worker that connected but
    /// never finished a range — it still appears, because provenance of
    /// every machine that touched the run matters).
    pub leases: usize,
}

/// The coordinator's output: the canonical study CSV plus the
/// provenance of every worker that joined the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinedArtifact {
    /// Header + per-point lines in canonical order — byte-identical to
    /// the `--shard 0/1` single-shot artifact.
    pub csv: String,
    /// Per-worker provenance keyed by worker ident (sorted, so the
    /// rendered trailer is deterministic for a given worker set).
    pub manifests: BTreeMap<String, WorkerProvenance>,
}

/// Schema identifier of the joined artifact's trailer.
pub const JOIN_SCHEMA: &str = "perfport-serve/1";

impl JoinedArtifact {
    /// Renders the full artifact: the CSV body followed by a
    /// `#`-prefixed trailer embedding each worker's manifest. Stripping
    /// every line that starts with `#` (see [`strip_trailer`]) recovers
    /// the CSV body exactly.
    pub fn render(&self) -> String {
        let mut out = self.csv.clone();
        out.push_str(&format!(
            "# {JOIN_SCHEMA} join trailer: strip '#'-prefixed lines to recover the --shard 0/1 artifact\n"
        ));
        for (ident, p) in &self.manifests {
            out.push_str(&format!(
                "# worker-manifest {ident} leases={} {}\n",
                p.leases, p.manifest
            ));
        }
        out
    }
}

/// Strips the joined artifact's `#`-prefixed trailer lines, recovering
/// the canonical CSV body. The CSV grammar reserves `#` (no figure id
/// or field starts with it), so this is exact.
pub fn strip_trailer(rendered: &str) -> String {
    rendered
        .lines()
        .filter(|line| !line.starts_with('#'))
        .map(|line| format!("{line}\n"))
        .collect()
}

#[derive(Debug, Clone)]
enum ChunkState {
    Pending {
        not_before: Instant,
        attempt: usize,
    },
    Leased {
        conn: usize,
        lease_id: u64,
        deadline: Instant,
        attempt: usize,
    },
    Done,
}

struct Chunk {
    range: Range<usize>,
    state: ChunkState,
    csv: Option<String>,
}

struct Conn {
    comm: Box<dyn Communicator>,
    ident: Option<String>,
    busy: bool,
    alive: bool,
    /// Set when this worker misses a heartbeat window: a suspect worker
    /// receives no further grants (the range would just bounce back to
    /// the silent peer until retries ran out) until it proves it is
    /// alive by sending any frame.
    suspect: bool,
}

impl Conn {
    fn kill(&mut self) {
        self.alive = false;
        self.busy = false;
    }
}

/// Runs the coordinator event loop over a stream of incoming worker
/// connections (TCP accept loop or loopback harness) until every lease
/// range is `Done`, then assembles the joined artifact.
///
/// The loop is single-threaded by design: every connection is polled
/// with a bounded timeout, so the lease table needs no locking and the
/// state machine is easy to reason about (and to document). Worker
/// connections arriving after the run completes are simply never read.
///
/// # Errors
///
/// [`ServeError::LeaseExhausted`] when a range dies more than
/// `max_retries` times, [`ServeError::NoWorkers`] when the connection
/// source disconnects with work outstanding and no worker alive,
/// [`ServeError::DeadlineExceeded`] past the configured wall-clock cap,
/// and [`ServeError::BadSpec`] for unregistered panel ids.
pub fn run(
    conn_rx: Receiver<Box<dyn Communicator>>,
    cfg: &CoordinatorConfig,
) -> Result<JoinedArtifact, ServeError> {
    let id_refs = validate_ids(&cfg.ids).map_err(ServeError::BadSpec)?;
    let study_cfg = cfg.study_config();
    let total = study_grid(&id_refs, &study_cfg).len();
    let spec = cfg.spec_string();

    let started = Instant::now();
    let mut chunks: Vec<Chunk> = lease_ranges(total, cfg.lease_points)
        .into_iter()
        .map(|range| Chunk {
            range,
            state: ChunkState::Pending {
                not_before: started,
                attempt: 0,
            },
            csv: None,
        })
        .collect();
    let mut conns: Vec<Conn> = Vec::new();
    let mut manifests: BTreeMap<String, WorkerProvenance> = BTreeMap::new();
    let mut next_lease_id: u64 = 0;
    let mut points_done: usize = 0;

    let progress = |msg: &str| {
        if cfg.verbose {
            eprintln!("coordinator: {msg}");
        }
    };
    progress(&format!(
        "serving {} grid points as {} lease(s) of ≤{} points",
        total,
        chunks.len(),
        cfg.lease_points.max(1)
    ));

    while !chunks.iter().all(|c| matches!(c.state, ChunkState::Done)) {
        if let Some(cap) = cfg.deadline {
            if started.elapsed() > cap {
                return Err(ServeError::DeadlineExceeded);
            }
        }

        // Adopt newly arrived connections.
        while let Ok(comm) = conn_rx.try_recv() {
            progress(&format!("worker connected from {}", comm.peer()));
            conns.push(Conn {
                comm,
                ident: None,
                busy: false,
                alive: true,
                suspect: false,
            });
        }
        perfport_telemetry::gauge_set(
            "serve/workers_connected",
            conns.iter().filter(|c| c.alive).count() as u64,
        );

        // With nobody alive, block on the connection source; if it is
        // gone too, no worker can ever finish the outstanding work.
        if !conns.iter().any(|c| c.alive) {
            match conn_rx.recv_timeout(cfg.poll.max(Duration::from_millis(1))) {
                Ok(comm) => {
                    progress(&format!("worker connected from {}", comm.peer()));
                    conns.push(Conn {
                        comm,
                        ident: None,
                        busy: false,
                        alive: true,
                        suspect: false,
                    });
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => return Err(ServeError::NoWorkers),
            }
        }

        // Poll every live connection once.
        for (i, conn) in conns.iter_mut().enumerate() {
            if !conn.alive {
                continue;
            }
            let frame = match conn.comm.recv_timeout(cfg.poll) {
                Ok(Some(frame)) => frame,
                Ok(None) => continue,
                Err(CommError::Closed) => {
                    progress(&format!(
                        "worker {} disconnected",
                        conn.ident.as_deref().unwrap_or("?")
                    ));
                    release_conn_lease(&mut chunks, i, cfg, conn)?;
                    conn.kill();
                    continue;
                }
                Err(e) => {
                    progress(&format!(
                        "worker {}: {e}; dropping connection",
                        conn.ident.as_deref().unwrap_or("?")
                    ));
                    // On a framing error, tell the peer why before
                    // giving up on the stream (best effort).
                    if let CommError::Frame(fe) = &e {
                        let _ = conn.comm.send(&Frame::Bye {
                            reason: format!("protocol error: {fe} (speaking v{PROTOCOL_VERSION})"),
                        });
                    }
                    release_conn_lease(&mut chunks, i, cfg, conn)?;
                    conn.kill();
                    continue;
                }
            };
            match frame {
                Frame::Hello {
                    role: Role::Worker,
                    ident,
                    detail,
                } => {
                    progress(&format!("hello from worker {ident}"));
                    let entry = manifests.entry(ident.clone()).or_insert(WorkerProvenance {
                        manifest: String::new(),
                        leases: 0,
                    });
                    entry.manifest = detail;
                    conn.ident = Some(ident);
                    let reply = Frame::Hello {
                        role: Role::Coordinator,
                        ident: "coordinator".to_string(),
                        detail: spec.clone(),
                    };
                    if conn.comm.send(&reply).is_err() {
                        conn.kill();
                    }
                }
                Frame::Heartbeat { lease_id, done } => {
                    perfport_telemetry::counter_add("serve/heartbeats", 1);
                    conn.suspect = false;
                    let now = Instant::now();
                    for chunk in chunks.iter_mut() {
                        if let ChunkState::Leased {
                            conn: owner,
                            lease_id: id,
                            deadline,
                            ..
                        } = &mut chunk.state
                        {
                            if *id == lease_id && *owner == i {
                                *deadline = now + cfg.ttl;
                                let _ = done;
                            }
                        }
                    }
                }
                Frame::Result {
                    lease_id,
                    start,
                    end,
                    csv,
                    manifest,
                } => {
                    conn.busy = false;
                    conn.suspect = false;
                    let accepted =
                        accept_result(&mut chunks, lease_id, start as usize..end as usize, csv);
                    match accepted {
                        Ok(fresh_points) => {
                            if fresh_points > 0 {
                                points_done += fresh_points;
                                perfport_telemetry::counter_add("serve/leases_completed", 1);
                                perfport_telemetry::counter_add(
                                    "serve/points_done",
                                    fresh_points as u64,
                                );
                                if let Some(ident) = &conn.ident {
                                    let entry = manifests.entry(ident.clone()).or_insert(
                                        WorkerProvenance {
                                            manifest: manifest.clone(),
                                            leases: 0,
                                        },
                                    );
                                    entry.manifest = manifest;
                                    entry.leases += 1;
                                }
                                progress(&format!(
                                    "lease {lease_id} done ({points_done}/{total} points)"
                                ));
                            }
                        }
                        Err(detail) => {
                            progress(&format!(
                                "worker {} sent a bad result ({detail}); dropping connection",
                                conn.ident.as_deref().unwrap_or("?")
                            ));
                            let _ = conn.comm.send(&Frame::Bye {
                                reason: format!("bad result: {detail}"),
                            });
                            release_conn_lease(&mut chunks, i, cfg, conn)?;
                            conn.kill();
                        }
                    }
                }
                Frame::Bye { reason } => {
                    progress(&format!(
                        "worker {} said bye ({reason})",
                        conn.ident.as_deref().unwrap_or("?")
                    ));
                    release_conn_lease(&mut chunks, i, cfg, conn)?;
                    conn.kill();
                }
                other => {
                    progress(&format!(
                        "unexpected {} frame from {}; dropping connection",
                        other.name(),
                        conn.ident.as_deref().unwrap_or("?")
                    ));
                    let _ = conn.comm.send(&Frame::Bye {
                        reason: format!("unexpected {} frame", other.name()),
                    });
                    release_conn_lease(&mut chunks, i, cfg, conn)?;
                    conn.kill();
                }
            }
        }

        // Expire leases whose workers missed their heartbeat window.
        let now = Instant::now();
        for chunk in chunks.iter_mut() {
            if let ChunkState::Leased {
                conn,
                deadline,
                attempt,
                ..
            } = chunk.state
            {
                if now > deadline {
                    perfport_telemetry::counter_add("serve/leases_expired", 1);
                    progress(&format!(
                        "lease over points {}..{} missed its heartbeat window; re-leasing",
                        chunk.range.start, chunk.range.end
                    ));
                    // The worker may be slow rather than dead: leave its
                    // connection alive (a late Result is still welcome)
                    // but free the range for someone else, and put the
                    // silent worker on probation so the range is not
                    // granted straight back to it.
                    if let Some(c) = conns.get_mut(conn) {
                        c.busy = false;
                        c.suspect = true;
                    }
                    expire_chunk(chunk, attempt, cfg)?;
                }
            }
        }

        // Grant pending ranges to idle, introduced workers.
        let now = Instant::now();
        for (i, conn) in conns.iter_mut().enumerate() {
            if !conn.alive || conn.busy || conn.suspect || conn.ident.is_none() {
                continue;
            }
            let next = chunks.iter().position(|c| {
                matches!(&c.state, ChunkState::Pending { not_before, .. } if *not_before <= now)
            });
            let Some(idx) = next else { break };
            next_lease_id += 1;
            let lease = Frame::Lease {
                lease_id: next_lease_id,
                start: chunks[idx].range.start as u64,
                end: chunks[idx].range.end as u64,
            };
            let attempt = match chunks[idx].state {
                ChunkState::Pending { attempt, .. } => attempt,
                _ => unreachable!("position() matched Pending"),
            };
            if conn.comm.send(&lease).is_err() {
                conn.kill();
                continue;
            }
            perfport_telemetry::counter_add("serve/leases_granted", 1);
            progress(&format!(
                "leased points {}..{} to worker {} (lease {next_lease_id}, attempt {attempt})",
                chunks[idx].range.start,
                chunks[idx].range.end,
                conn.ident.as_deref().unwrap_or("?"),
            ));
            chunks[idx].state = ChunkState::Leased {
                conn: i,
                lease_id: next_lease_id,
                deadline: Instant::now() + cfg.ttl,
                attempt,
            };
            conn.busy = true;
        }
    }

    // Orderly shutdown: every live worker gets a Bye.
    for conn in conns.iter_mut().filter(|c| c.alive) {
        let _ = conn.comm.send(&Frame::Bye {
            reason: "complete".to_string(),
        });
    }
    progress(&format!(
        "complete: {total} points joined from {} worker(s)",
        manifests.len()
    ));

    let mut csv = String::from(STUDY_CSV_HEADER);
    csv.push('\n');
    for chunk in &chunks {
        csv.push_str(chunk.csv.as_ref().expect("every chunk is Done"));
    }
    Ok(JoinedArtifact { csv, manifests })
}

/// Accepts a `Result` frame into the lease table. Returns the number of
/// fresh points it contributed (0 for a duplicate of an already-`Done`
/// range — late results from slow-but-alive workers are idempotent
/// because the study is deterministic).
fn accept_result(
    chunks: &mut [Chunk],
    lease_id: u64,
    range: Range<usize>,
    csv: String,
) -> Result<usize, String> {
    let chunk = chunks
        .iter_mut()
        .find(|c| c.range == range)
        .ok_or_else(|| format!("lease {lease_id} names unknown range {range:?}"))?;
    if matches!(chunk.state, ChunkState::Done) {
        return Ok(0);
    }
    let lines = csv.lines().count();
    if lines != chunk.range.len() {
        return Err(format!(
            "range {range:?} carries {lines} CSV lines, expected {}",
            chunk.range.len()
        ));
    }
    chunk.state = ChunkState::Done;
    chunk.csv = Some(csv);
    Ok(lines)
}

fn expire_chunk(
    chunk: &mut Chunk,
    attempt: usize,
    cfg: &CoordinatorConfig,
) -> Result<(), ServeError> {
    let attempt = attempt + 1;
    if attempt > cfg.max_retries {
        return Err(ServeError::LeaseExhausted {
            start: chunk.range.start,
            end: chunk.range.end,
            attempts: attempt,
        });
    }
    chunk.state = ChunkState::Pending {
        not_before: Instant::now() + cfg.backoff * attempt as u32,
        attempt,
    };
    Ok(())
}

/// Frees whatever range connection `i` currently holds (worker died or
/// was dropped): the range re-enters `Pending` with its attempt count
/// bumped, or the run aborts once retries are exhausted.
fn release_conn_lease(
    chunks: &mut [Chunk],
    i: usize,
    cfg: &CoordinatorConfig,
    conn: &mut Conn,
) -> Result<(), ServeError> {
    conn.busy = false;
    for chunk in chunks.iter_mut() {
        if let ChunkState::Leased { conn, attempt, .. } = chunk.state {
            if conn == i {
                perfport_telemetry::counter_add("serve/leases_expired", 1);
                expire_chunk(chunk, attempt, cfg)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_ranges_tile_any_grid() {
        for total in [0usize, 1, 2, 7, 68] {
            for lease in [1usize, 2, 3, 5, 100] {
                let ranges = lease_ranges(total, lease);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "total={total} lease={lease}");
                    assert!(r.len() <= lease && !r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, total);
            }
        }
        // A zero lease size is clamped to 1 rather than looping forever.
        assert_eq!(lease_ranges(3, 0).len(), 3);
    }

    #[test]
    fn spec_round_trips() {
        let cfg = CoordinatorConfig {
            ids: vec!["fig5c".to_string(), "fig7a".to_string()],
            quick: true,
            ..CoordinatorConfig::default()
        };
        let spec = cfg.spec_string();
        assert_eq!(spec, "ids=fig5c,fig7a;quick=1");
        let (ids, quick) = parse_spec(&spec).unwrap();
        assert_eq!(ids, vec!["fig5c", "fig7a"]);
        assert!(quick);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "ids=fig5c",
            "quick=1",
            "ids=fig5c;quick=maybe",
            "ids=;quick=1",
            "ids=fig5c;quick=1;extra=2",
            "nonsense",
        ] {
            assert!(parse_spec(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn unknown_panels_are_rejected() {
        assert!(validate_ids(&["fig5c".to_string()]).is_ok());
        let err = validate_ids(&["fig5c".to_string(), "fig9z".to_string()]).unwrap_err();
        assert!(err.contains("fig9z"));
    }

    #[test]
    fn trailer_strips_back_to_the_csv_body() {
        let mut manifests = BTreeMap::new();
        manifests.insert(
            "w0".to_string(),
            WorkerProvenance {
                manifest: "{\"schema\": \"perfport-manifest/1\"}".to_string(),
                leases: 2,
            },
        );
        let artifact = JoinedArtifact {
            csv: format!("{STUDY_CSV_HEADER}\na,b,c\n"),
            manifests,
        };
        let rendered = artifact.render();
        assert!(rendered.contains("# worker-manifest w0 leases=2"));
        assert_eq!(strip_trailer(&rendered), artifact.csv);
    }

    #[test]
    fn duplicate_results_are_idempotent() {
        let mut chunks = vec![Chunk {
            range: 0..2,
            state: ChunkState::Pending {
                not_before: Instant::now(),
                attempt: 0,
            },
            csv: None,
        }];
        assert_eq!(
            accept_result(&mut chunks, 1, 0..2, "x\ny\n".to_string()),
            Ok(2)
        );
        // A slow worker's late duplicate contributes nothing and leaves
        // the stored bytes untouched.
        assert_eq!(
            accept_result(&mut chunks, 2, 0..2, "x\ny\n".to_string()),
            Ok(0)
        );
        assert_eq!(chunks[0].csv.as_deref(), Some("x\ny\n"));
        // Wrong line counts and unknown ranges are protocol errors.
        assert!(accept_result(&mut chunks, 3, 0..2, "x\n".to_string()).is_ok());
        let mut fresh = vec![Chunk {
            range: 4..6,
            state: ChunkState::Pending {
                not_before: Instant::now(),
                attempt: 0,
            },
            csv: None,
        }];
        assert!(accept_result(&mut fresh, 4, 4..6, "x\n".to_string()).is_err());
        assert!(accept_result(&mut fresh, 5, 0..2, "x\ny\n".to_string()).is_err());
    }
}
