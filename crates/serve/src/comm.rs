//! Frame transports: the [`Communicator`] trait plus its two
//! implementations — an in-process [`Loopback`] pair for tests and the
//! `--local` self-test mode, and [`tcp_v1`] for real sockets.
//!
//! Both ends of either transport speak exactly the same
//! [`Frame`] codec: the loopback encodes and
//! decodes every message through the byte-level codec (it is a codec
//! test as much as a transport), so protocol behaviour observed over
//! loopback transfers to TCP unchanged.
//!
//! # Examples
//!
//! A loopback round trip — the satellite doc-example contract:
//!
//! ```
//! use perfport_serve::comm::{Communicator, Loopback};
//! use perfport_serve::frame::{Frame, Role};
//!
//! let (mut coord_end, mut worker_end) = Loopback::pair();
//! worker_end
//!     .send(&Frame::Hello {
//!         role: Role::Worker,
//!         ident: "w0".to_string(),
//!         detail: "{}".to_string(),
//!     })
//!     .unwrap();
//! match coord_end.recv().unwrap() {
//!     Frame::Hello { role, ident, .. } => {
//!         assert_eq!(role, Role::Worker);
//!         assert_eq!(ident, "w0");
//!     }
//!     other => panic!("unexpected frame {}", other.name()),
//! }
//!
//! // Dropping one end closes the channel: the peer sees a typed error,
//! // which the coordinator treats as a dead worker (immediate re-lease).
//! drop(worker_end);
//! assert!(coord_end.recv().is_err());
//! ```

use crate::frame::{DecodeStep, Frame, FrameError};
use std::fmt;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// A transport-level failure while sending or receiving frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer is gone: orderly close, dropped loopback end, TCP
    /// EOF/reset. The coordinator maps this to an immediate re-lease.
    Closed,
    /// An I/O error other than closure (message carries the OS detail).
    Io(String),
    /// The peer's bytes failed to decode; the connection is unusable
    /// because framing has lost sync.
    Frame(FrameError),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Closed => write!(f, "connection closed by peer"),
            CommError::Io(detail) => write!(f, "transport error: {detail}"),
            CommError::Frame(e) => write!(f, "framing error: {e}"),
        }
    }
}

impl std::error::Error for CommError {}

impl From<FrameError> for CommError {
    fn from(e: FrameError) -> CommError {
        CommError::Frame(e)
    }
}

/// A bidirectional, ordered frame channel between one worker and the
/// coordinator. Implementations must preserve frame order and must
/// surface peer death as [`CommError::Closed`] rather than blocking
/// forever — the lease state machine's failure detection depends on it.
pub trait Communicator: Send {
    /// Sends one frame, blocking until it is handed to the transport.
    ///
    /// # Errors
    ///
    /// [`CommError::Closed`] when the peer is gone, [`CommError::Io`]
    /// for other transport failures.
    fn send(&mut self, frame: &Frame) -> Result<(), CommError>;

    /// Waits up to `timeout` for the next frame. `Ok(None)` means the
    /// timeout elapsed with the peer still alive — the coordinator's
    /// poll loop treats it as "nothing new from this worker".
    ///
    /// # Errors
    ///
    /// [`CommError::Closed`] on peer death, [`CommError::Frame`] when
    /// the stream desynchronizes.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Frame>, CommError>;

    /// Blocks until a frame arrives (or the peer dies).
    ///
    /// # Errors
    ///
    /// Same as [`Communicator::recv_timeout`], minus the timeout case.
    fn recv(&mut self) -> Result<Frame, CommError> {
        loop {
            if let Some(frame) = self.recv_timeout(Duration::from_millis(500))? {
                return Ok(frame);
            }
        }
    }

    /// A short human-readable peer description for logs.
    fn peer(&self) -> String;
}

/// In-process transport: a pair of connected endpoints over byte
/// channels. Frames are encoded on send and decoded on receive, so the
/// loopback exercises the full wire codec.
pub struct Loopback {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    label: &'static str,
}

impl Loopback {
    /// Creates a connected endpoint pair `(a, b)`: everything sent on
    /// `a` is received by `b` and vice versa. Dropping either end makes
    /// the peer observe [`CommError::Closed`].
    pub fn pair() -> (Loopback, Loopback) {
        let (atx, brx) = mpsc::channel();
        let (btx, arx) = mpsc::channel();
        (
            Loopback {
                tx: atx,
                rx: arx,
                label: "loopback:a",
            },
            Loopback {
                tx: btx,
                rx: brx,
                label: "loopback:b",
            },
        )
    }
}

impl Communicator for Loopback {
    fn send(&mut self, frame: &Frame) -> Result<(), CommError> {
        perfport_telemetry::counter_add("serve/frames_tx", 1);
        self.tx.send(frame.encode()).map_err(|_| CommError::Closed)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Frame>, CommError> {
        match self.rx.recv_timeout(timeout) {
            Ok(bytes) => {
                perfport_telemetry::counter_add("serve/frames_rx", 1);
                Ok(Some(Frame::decode_exact(&bytes)?))
            }
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(CommError::Closed),
        }
    }

    fn peer(&self) -> String {
        self.label.to_string()
    }
}

/// Version 1 of the TCP transport: one [`Frame`] stream per
/// `TcpStream`, decoded incrementally through
/// [`Frame::decode_step`](crate::frame::Frame::decode_step) so frames
/// split across segments reassemble correctly.
pub mod tcp_v1 {
    use super::*;
    use std::io::{ErrorKind, Read, Write};
    use std::net::{TcpStream, ToSocketAddrs};

    /// A [`Communicator`] over one TCP connection.
    pub struct TcpCommunicator {
        stream: TcpStream,
        buf: Vec<u8>,
        peer: String,
    }

    impl TcpCommunicator {
        /// Wraps an accepted or connected stream. Disables Nagle so
        /// heartbeats are timely; failure to do so is non-fatal.
        pub fn new(stream: TcpStream) -> TcpCommunicator {
            let _ = stream.set_nodelay(true);
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "tcp:unknown".to_string());
            TcpCommunicator {
                stream,
                buf: Vec::new(),
                peer,
            }
        }

        /// Connects to a coordinator, retrying every 100 ms for up to
        /// `patience` (workers routinely start before the coordinator's
        /// listener is up).
        ///
        /// # Errors
        ///
        /// [`CommError::Io`] with the last OS error once patience runs
        /// out.
        pub fn connect(
            addr: impl ToSocketAddrs,
            patience: Duration,
        ) -> Result<TcpCommunicator, CommError> {
            let deadline = Instant::now() + patience;
            loop {
                match TcpStream::connect(&addr) {
                    Ok(stream) => return Ok(TcpCommunicator::new(stream)),
                    Err(e) if Instant::now() < deadline => {
                        let _ = e;
                        std::thread::sleep(Duration::from_millis(100));
                    }
                    Err(e) => return Err(CommError::Io(format!("connect: {e}"))),
                }
            }
        }
    }

    fn closed_kind(kind: ErrorKind) -> bool {
        matches!(
            kind,
            ErrorKind::BrokenPipe
                | ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::UnexpectedEof
                | ErrorKind::NotConnected
        )
    }

    impl Communicator for TcpCommunicator {
        fn send(&mut self, frame: &Frame) -> Result<(), CommError> {
            perfport_telemetry::counter_add("serve/frames_tx", 1);
            self.stream.write_all(&frame.encode()).map_err(|e| {
                if closed_kind(e.kind()) {
                    CommError::Closed
                } else {
                    CommError::Io(format!("send: {e}"))
                }
            })
        }

        fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Frame>, CommError> {
            let deadline = Instant::now() + timeout;
            loop {
                match Frame::decode_step(&self.buf)? {
                    DecodeStep::Ready { frame, consumed } => {
                        self.buf.drain(..consumed);
                        perfport_telemetry::counter_add("serve/frames_rx", 1);
                        return Ok(Some(frame));
                    }
                    DecodeStep::Incomplete { .. } => {}
                }
                let now = Instant::now();
                if now >= deadline {
                    return Ok(None);
                }
                // Short read timeout so a frame arriving mid-wait is
                // still picked up promptly within the poll window.
                let wait = (deadline - now)
                    .min(Duration::from_millis(50))
                    .max(Duration::from_millis(1));
                self.stream
                    .set_read_timeout(Some(wait))
                    .map_err(|e| CommError::Io(format!("set_read_timeout: {e}")))?;
                let mut chunk = [0u8; 4096];
                match self.stream.read(&mut chunk) {
                    Ok(0) => return Err(CommError::Closed),
                    Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) if closed_kind(e.kind()) => return Err(CommError::Closed),
                    Err(e) => return Err(CommError::Io(format!("recv: {e}"))),
                }
            }
        }

        fn peer(&self) -> String {
            format!("tcp:{}", self.peer)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Role;

    #[test]
    fn loopback_round_trips_frames_in_order() {
        let (mut a, mut b) = Loopback::pair();
        for i in 0..5u64 {
            a.send(&Frame::Heartbeat {
                lease_id: i,
                done: i,
            })
            .unwrap();
        }
        for i in 0..5u64 {
            assert_eq!(
                b.recv().unwrap(),
                Frame::Heartbeat {
                    lease_id: i,
                    done: i
                }
            );
        }
    }

    #[test]
    fn loopback_timeout_and_close_are_distinct() {
        let (mut a, b) = Loopback::pair();
        assert_eq!(a.recv_timeout(Duration::from_millis(10)), Ok(None));
        drop(b);
        assert_eq!(
            a.recv_timeout(Duration::from_millis(10)),
            Err(CommError::Closed)
        );
        assert_eq!(
            a.send(&Frame::Bye {
                reason: "x".to_string()
            }),
            Err(CommError::Closed)
        );
    }

    #[test]
    fn tcp_v1_round_trips_split_frames() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut comm = tcp_v1::TcpCommunicator::new(stream);
            let frame = comm.recv().unwrap();
            comm.send(&frame).unwrap();
            // Hold the connection open until the client has read the
            // echo back.
            let _ = comm.recv_timeout(Duration::from_millis(500));
        });
        let mut client = tcp_v1::TcpCommunicator::connect(addr, Duration::from_secs(5)).unwrap();
        let frame = Frame::Hello {
            role: Role::Worker,
            ident: "w9".to_string(),
            detail: "x".repeat(10_000), // spans multiple 4 KiB reads
        };
        client.send(&frame).unwrap();
        assert_eq!(client.recv().unwrap(), frame);
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn tcp_v1_reports_closure() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // immediate close
        });
        let mut client = tcp_v1::TcpCommunicator::connect(addr, Duration::from_secs(5)).unwrap();
        server.join().unwrap();
        assert_eq!(client.recv(), Err(CommError::Closed));
    }
}
