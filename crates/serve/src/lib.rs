//! Distributed study service: a lease-based shard coordinator and
//! workers speaking a versioned, length-prefixed TCP protocol.
//!
//! The paper's study grid (Figs. 4–7) is embarrassingly parallel across
//! grid points, and `perfport_core::shard` already guarantees that
//! concatenating shard outputs reproduces the single-shot artifact byte
//! for byte. This crate lifts that contract over the wire: a
//! [`coordinator`] enumerates the grid, leases contiguous index ranges
//! to [`worker`]s, re-leases ranges whose workers miss heartbeats, and
//! reassembles the per-point CSV in canonical panel → curve → size
//! order. The acceptance contract is PR 5's, across machines instead of
//! threads:
//!
//! > For any worker count, any lease size, and any kill/retry schedule,
//! > stripping the `#`-prefixed trailer from the joined artifact yields
//! > bytes identical to the `--shard 0/1` single-shot artifact.
//!
//! Each worker stamps its `perfport-manifest/1` (ISA, caches,
//! scheduler, telemetry mode) into its `Result` frames; the coordinator
//! embeds every worker's manifest into the joined artifact's trailer,
//! so cross-machine provenance survives the join.
//!
//! The wire protocol — [`frame::Frame`]`::{Hello, Lease, Result,
//! Heartbeat, Bye}` over the [`comm::Communicator`] trait, with an
//! in-process loopback transport for tests and [`comm::tcp_v1`] for
//! real sockets — is specified, not just implemented: `DESIGN.md`
//! § "perfport-serve wire protocol" carries the normative frame
//! grammar, the lease lifecycle state machine, the heartbeat/re-lease
//! rules, and the byte-identity proof obligation. The `serve_coordinator`
//! and `serve_worker` binaries are the deployable faces; the
//! coordinator's `--local N` flag runs the whole service in-process as
//! a self-test.
//!
//! # Examples
//!
//! End to end over loopback, one worker, grid of one quick panel:
//!
//! ```
//! use perfport_serve::coordinator::{strip_trailer, CoordinatorConfig};
//! use perfport_serve::local::run_local;
//!
//! let cfg = CoordinatorConfig {
//!     ids: vec!["fig5c".to_string()],
//!     quick: true,
//!     lease_points: 1,
//!     ..CoordinatorConfig::default()
//! };
//! let joined = run_local(&cfg, 1, None).unwrap();
//! let rendered = joined.render();
//! // The trailer carries the worker's provenance manifest...
//! assert!(rendered.contains("# worker-manifest w0"));
//! // ...and stripping it recovers the canonical CSV body exactly.
//! assert_eq!(strip_trailer(&rendered), joined.csv);
//! assert!(joined.csv.starts_with("figure,arch,model,precision,n,"));
//! ```

#![deny(missing_docs)]

pub mod comm;
pub mod coordinator;
pub mod frame;
pub mod local;
pub mod worker;

pub use comm::{CommError, Communicator, Loopback};
pub use coordinator::{strip_trailer, CoordinatorConfig, JoinedArtifact};
pub use frame::{Frame, FrameError, Role, PROTOCOL_VERSION};
pub use local::{run_local, KillPlan};
pub use worker::{WorkerConfig, WorkerSummary};

use std::fmt;

/// A service-level failure of a coordinator or worker session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The underlying transport failed.
    Comm(CommError),
    /// The peer violated the protocol (bad spec, out-of-grid lease,
    /// unexpected frame).
    Protocol(String),
    /// A lease range died more than the configured retry budget allows;
    /// the coordinator aborts rather than loop forever.
    LeaseExhausted {
        /// First canonical grid index of the doomed range.
        start: usize,
        /// One past its last canonical grid index.
        end: usize,
        /// How many times the range was attempted.
        attempts: usize,
    },
    /// The connection source closed with work outstanding and no worker
    /// alive: the grid can never complete.
    NoWorkers,
    /// The coordinator's configured wall-clock cap elapsed.
    DeadlineExceeded,
    /// The coordinator configuration names unregistered figure panels.
    BadSpec(String),
    /// The worker's `fail_after` drill fired (expected, during tests
    /// and the CI dead-lease drill).
    FaultInjected {
        /// Points the worker computed before dying.
        after: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Comm(e) => write!(f, "{e}"),
            ServeError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            ServeError::LeaseExhausted {
                start,
                end,
                attempts,
            } => write!(
                f,
                "lease over points {start}..{end} failed {attempts} times; giving up"
            ),
            ServeError::NoWorkers => {
                write!(
                    f,
                    "no workers connected and none can arrive; grid incomplete"
                )
            }
            ServeError::DeadlineExceeded => write!(f, "coordinator deadline exceeded"),
            ServeError::BadSpec(detail) => write!(f, "bad study spec: {detail}"),
            ServeError::FaultInjected { after } => {
                write!(f, "fault injected after {after} points")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CommError> for ServeError {
    fn from(e: CommError) -> ServeError {
        ServeError::Comm(e)
    }
}
