//! Coordinator of the distributed study service.
//!
//! Enumerates the study grid behind `--figures`, leases contiguous
//! point ranges to workers (TCP via `--listen`, or `--local N`
//! in-process workers as a self-test), re-leases dead ranges, and
//! writes the joined artifact — canonical study CSV plus a
//! `#`-prefixed per-worker manifest trailer — to `--out` or stdout.
//!
//! Verification: `grep -v '^#' joined.csv` must be byte-identical to
//! the corresponding figure binary's `--shard 0/1` stdout (see
//! `EXPERIMENTS.md` § "Distributed study").

use perfport_serve::comm::{tcp_v1::TcpCommunicator, Communicator};
use perfport_serve::coordinator::{self, CoordinatorConfig};
use perfport_serve::local::{run_local, KillPlan};
use std::net::TcpListener;
use std::sync::mpsc;
use std::time::Duration;

const USAGE: &str = "usage: serve_coordinator [--figures <id,id,...>] [--quick] \
[--listen <addr>] [--local <n>] [--kill-worker <i>] [--kill-after <points>] \
[--lease <points>] [--ttl-ms <ms>] [--backoff-ms <ms>] [--retries <n>] \
[--deadline-ms <ms>] [--out <path>]";

struct Args {
    cfg: CoordinatorConfig,
    listen: Option<String>,
    local: Option<usize>,
    kill_worker: Option<usize>,
    kill_after: usize,
    out: Option<std::path::PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cfg: CoordinatorConfig {
            verbose: true,
            ..CoordinatorConfig::default()
        },
        listen: None,
        local: None,
        kill_worker: None,
        kill_after: 1,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    let value = |flag: &str, v: Option<String>, it: &mut dyn Iterator<Item = String>| {
        v.or_else(|| it.next())
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--quick" => args.cfg.quick = true,
            "--figures" => {
                let v = value("--figures", inline, &mut it)?;
                args.cfg.ids = v
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if args.cfg.ids.is_empty() {
                    return Err("--figures names no panels".to_string());
                }
            }
            "--listen" => args.listen = Some(value("--listen", inline, &mut it)?),
            "--local" => {
                args.local = Some(parse_count("--local", &value("--local", inline, &mut it)?)?)
            }
            "--kill-worker" => {
                args.kill_worker = Some(parse_index(
                    "--kill-worker",
                    &value("--kill-worker", inline, &mut it)?,
                )?)
            }
            "--kill-after" => {
                args.kill_after =
                    parse_count("--kill-after", &value("--kill-after", inline, &mut it)?)?
            }
            "--lease" => {
                args.cfg.lease_points = parse_count("--lease", &value("--lease", inline, &mut it)?)?
            }
            "--ttl-ms" => {
                args.cfg.ttl = Duration::from_millis(parse_count(
                    "--ttl-ms",
                    &value("--ttl-ms", inline, &mut it)?,
                )? as u64)
            }
            "--backoff-ms" => {
                args.cfg.backoff = Duration::from_millis(parse_index(
                    "--backoff-ms",
                    &value("--backoff-ms", inline, &mut it)?,
                )? as u64)
            }
            "--retries" => {
                args.cfg.max_retries =
                    parse_index("--retries", &value("--retries", inline, &mut it)?)?
            }
            "--deadline-ms" => {
                args.cfg.deadline = Some(Duration::from_millis(parse_count(
                    "--deadline-ms",
                    &value("--deadline-ms", inline, &mut it)?,
                )? as u64))
            }
            "--out" => args.out = Some(std::path::PathBuf::from(value("--out", inline, &mut it)?)),
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.listen.is_some() && args.local.is_some() {
        return Err("--listen and --local are mutually exclusive".to_string());
    }
    if args.kill_worker.is_some() && args.local.is_none() {
        return Err(
            "--kill-worker needs --local (use serve_worker --fail-after over TCP)".to_string(),
        );
    }
    Ok(args)
}

fn parse_count(flag: &str, s: &str) -> Result<usize, String> {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("invalid {flag} value '{s}'")),
    }
}

fn parse_index(flag: &str, s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|_| format!("invalid {flag} value '{s}'"))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };

    let joined = if let Some(workers) = args.local {
        let kill = args.kill_worker.map(|worker| KillPlan {
            worker,
            after_points: args.kill_after,
        });
        eprintln!(
            "coordinator: local self-test with {workers} in-process worker(s){}",
            kill.map(|k| format!(", killing w{} after {} point(s)", k.worker, k.after_points))
                .unwrap_or_default()
        );
        run_local(&args.cfg, workers, kill)
    } else {
        let addr = args.listen.as_deref().unwrap_or("127.0.0.1:4957");
        let listener = match TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: cannot listen on {addr}: {e}");
                std::process::exit(1);
            }
        };
        match listener.local_addr() {
            Ok(bound) => eprintln!("coordinator: listening on {bound}"),
            Err(_) => eprintln!("coordinator: listening on {addr}"),
        }
        let (tx, rx) = mpsc::channel::<Box<dyn Communicator>>();
        // The accept thread feeds the single-threaded event loop; it
        // dies with the process once the run completes.
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                if tx.send(Box::new(TcpCommunicator::new(stream))).is_err() {
                    break;
                }
            }
        });
        coordinator::run(rx, &args.cfg)
    };

    let joined = match joined {
        Ok(joined) => joined,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let rendered = joined.render();
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!(
                "coordinator: wrote joined artifact ({} workers) to {}",
                joined.manifests.len(),
                path.display()
            );
        }
        None => print!("{rendered}"),
    }
}
