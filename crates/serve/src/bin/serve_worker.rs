//! Worker of the distributed study service: connects to a
//! `serve_coordinator`, introduces itself with its provenance manifest,
//! and executes leased grid ranges until the coordinator says `Bye`.
//!
//! Exit codes: 0 on an orderly `Bye`, 1 on transport/protocol failure,
//! 2 on usage errors, 3 when the `--fail-after` dead-lease drill fires
//! (so CI can tell an injected death from an accidental one).

use perfport_serve::comm::tcp_v1::TcpCommunicator;
use perfport_serve::worker::{self, WorkerConfig};
use perfport_serve::ServeError;
use std::time::Duration;

const USAGE: &str = "usage: serve_worker --connect <addr> [--ident <name>] \
[--fail-after <points>] [--patience-ms <ms>]";

struct Args {
    connect: String,
    cfg: WorkerConfig,
    patience: Duration,
}

fn parse_args() -> Result<Args, String> {
    let mut connect = None;
    let mut cfg = WorkerConfig::new(format!("worker-{}", std::process::id()));
    cfg.verbose = true;
    let mut patience = Duration::from_secs(10);
    let mut it = std::env::args().skip(1);
    let value = |flag: &str, v: Option<String>, it: &mut dyn Iterator<Item = String>| {
        v.or_else(|| it.next())
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg, None),
        };
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--connect" => connect = Some(value("--connect", inline, &mut it)?),
            "--ident" => cfg.ident = value("--ident", inline, &mut it)?,
            "--fail-after" => {
                let v = value("--fail-after", inline, &mut it)?;
                cfg.fail_after = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("invalid --fail-after value '{v}'"))?,
                );
            }
            "--patience-ms" => {
                let v = value("--patience-ms", inline, &mut it)?;
                patience = Duration::from_millis(
                    v.parse::<u64>()
                        .map_err(|_| format!("invalid --patience-ms value '{v}'"))?,
                );
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let connect = connect.ok_or_else(|| "--connect <addr> is required".to_string())?;
    Ok(Args {
        connect,
        cfg,
        patience,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let mut comm = match TcpCommunicator::connect(args.connect.as_str(), args.patience) {
        Ok(comm) => comm,
        Err(e) => {
            eprintln!("error: cannot reach coordinator at {}: {e}", args.connect);
            std::process::exit(1);
        }
    };
    match worker::run(&mut comm, &args.cfg) {
        Ok(summary) => {
            eprintln!(
                "worker {}: done ({} leases, {} points)",
                args.cfg.ident, summary.leases, summary.points
            );
        }
        Err(ServeError::FaultInjected { after }) => {
            eprintln!(
                "worker {}: fault injected after {after} point(s), dying mid-lease",
                args.cfg.ident
            );
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("worker {}: {e}", args.cfg.ident);
            std::process::exit(1);
        }
    }
}
