//! `--local N` self-test mode: the whole coordinator/worker service in
//! one process, over loopback [`Communicator`]s — same frames, same
//! state machine, no sockets. This is how the test suite (and CI's
//! drill) exercises kill/retry schedules deterministically.

use crate::comm::{Communicator, Loopback};
use crate::coordinator::{self, CoordinatorConfig, JoinedArtifact};
use crate::worker::{self, WorkerConfig};
use crate::ServeError;
use std::sync::mpsc;

/// Fault plan for the in-process dead-lease drill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPlan {
    /// Zero-based index of the worker to kill (`w<index>`).
    pub worker: usize,
    /// Points the victim computes before abandoning its connection
    /// mid-lease (see [`WorkerConfig::fail_after`]).
    pub after_points: usize,
}

/// Runs a full coordinator + `workers` in-process worker threads over
/// loopback channels and returns the joined artifact. With a
/// [`KillPlan`], the victim worker dies mid-lease and the coordinator
/// must re-lease its range — the joined artifact is byte-identical
/// either way.
///
/// # Errors
///
/// Whatever [`coordinator::run`] returns; in particular, killing the
/// only worker yields [`ServeError::NoWorkers`](crate::ServeError)
/// because nobody is left to adopt the re-leased range.
pub fn run_local(
    cfg: &CoordinatorConfig,
    workers: usize,
    kill: Option<KillPlan>,
) -> Result<JoinedArtifact, ServeError> {
    let (tx, rx) = mpsc::channel::<Box<dyn Communicator>>();
    let mut handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let (coord_end, worker_end) = Loopback::pair();
        tx.send(Box::new(coord_end))
            .expect("receiver outlives the send loop");
        let wcfg = WorkerConfig {
            ident: format!("w{i}"),
            fail_after: kill.filter(|k| k.worker == i).map(|k| k.after_points),
            verbose: cfg.verbose,
        };
        handles.push(std::thread::spawn(move || {
            let mut comm = worker_end;
            // A worker error here is part of the drill (fault injection)
            // or follows a coordinator abort; the coordinator's own
            // verdict is the authoritative one either way.
            let _ = worker::run(&mut comm, &wcfg);
        }));
    }
    // Dropping the sender lets the coordinator detect "no workers will
    // ever arrive" if the whole team dies with work outstanding.
    drop(tx);
    let result = coordinator::run(rx, cfg);
    for handle in handles {
        // Workers exit on Bye or on their closed connection once the
        // coordinator returns (it drops every conn), so joins are brief.
        let _ = handle.join();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfport_core::{render_study_csv, run_study_sharded, Shard, StudyConfig};
    use std::time::Duration;

    fn quick_cfg(ids: &[&str]) -> CoordinatorConfig {
        CoordinatorConfig {
            ids: ids.iter().map(|s| s.to_string()).collect(),
            quick: true,
            lease_points: 2,
            ttl: Duration::from_secs(30),
            poll: Duration::from_millis(5),
            backoff: Duration::from_millis(10),
            max_retries: 3,
            deadline: Some(Duration::from_secs(120)),
            verbose: false,
        }
    }

    fn single_shot(ids: &[&str]) -> String {
        let results = run_study_sharded(ids, &StudyConfig::quick(), Shard::FULL, 1);
        render_study_csv(&results, true)
    }

    #[test]
    fn one_local_worker_reproduces_the_single_shot_artifact() {
        let cfg = quick_cfg(&["fig5c"]);
        let joined = run_local(&cfg, 1, None).expect("local run succeeds");
        assert_eq!(joined.csv, single_shot(&["fig5c"]));
        assert_eq!(joined.manifests.len(), 1);
        assert!(joined.manifests.contains_key("w0"));
        assert!(joined.manifests["w0"].leases >= 1);
    }

    #[test]
    fn killing_the_only_worker_is_a_no_workers_error() {
        let mut cfg = quick_cfg(&["fig5c"]);
        cfg.max_retries = 5;
        let err = run_local(
            &cfg,
            1,
            Some(KillPlan {
                worker: 0,
                after_points: 0,
            }),
        )
        .expect_err("nobody left to serve the grid");
        assert!(matches!(err, ServeError::NoWorkers));
    }
}
