//! The `perfport-serve` wire frames: length-prefixed, versioned,
//! little-endian — see `DESIGN.md` § "perfport-serve wire protocol" for
//! the normative grammar.
//!
//! Every frame travels as an 8-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length N, u32 LE (0 ..= MAX_PAYLOAD)
//! 4       1     protocol version (PROTOCOL_VERSION = 1)
//! 5       1     frame tag (1=Hello 2=Lease 3=Result 4=Heartbeat 5=Bye)
//! 6       2     reserved, must be zero
//! 8       N     payload (per-tag field layout, ints LE, strings
//!               u32-length-prefixed UTF-8)
//! ```
//!
//! Decoding is **total**: any byte sequence either yields a frame or a
//! typed [`FrameError`] — truncation, oversize, bad version/tag/reserved
//! bits, malformed payloads, and trailing garbage are all errors, never
//! panics. The property tests in `tests/frame_props.rs` fuzz this
//! contract.
//!
//! # Examples
//!
//! A frame survives the encode/decode round trip bit for bit:
//!
//! ```
//! use perfport_serve::frame::Frame;
//!
//! let frame = Frame::Lease { lease_id: 7, start: 8, end: 12 };
//! let bytes = frame.encode();
//! assert_eq!(Frame::decode_exact(&bytes).unwrap(), frame);
//!
//! // Truncation is a typed error, not a panic.
//! assert!(Frame::decode_exact(&bytes[..bytes.len() - 1]).is_err());
//! ```

use std::fmt;

/// The wire-protocol version this build speaks. Stamped into every
/// frame header; decoders reject anything else with
/// [`FrameError::BadVersion`], which the coordinator answers with a
/// `Bye` naming its own version (the v1 negotiation rule: there is
/// nothing to negotiate *to*, so mismatches part ways loudly).
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed header length in bytes (length + version + tag + reserved).
pub const HEADER_LEN: usize = 8;

/// Upper bound on a frame payload (64 MiB). A length field above this
/// is rejected before any allocation ([`FrameError::Oversized`]), so a
/// corrupt or hostile peer cannot make the decoder reserve memory.
pub const MAX_PAYLOAD: u32 = 1 << 26;

/// Which side of the protocol a `Hello` frame speaks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A worker offering to execute leased grid ranges.
    Worker,
    /// The coordinator that owns the grid and grants leases.
    Coordinator,
}

impl Role {
    fn to_byte(self) -> u8 {
        match self {
            Role::Worker => 0,
            Role::Coordinator => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Role> {
        match b {
            0 => Some(Role::Worker),
            1 => Some(Role::Coordinator),
            _ => None,
        }
    }

    /// The role's lowercase wire name (`"worker"` / `"coordinator"`).
    pub fn name(self) -> &'static str {
        match self {
            Role::Worker => "worker",
            Role::Coordinator => "coordinator",
        }
    }
}

/// One protocol message. See the module docs for the byte layout and
/// `DESIGN.md` for when each frame is legal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Session opener, sent once by each side. The worker's `detail` is
    /// its one-line `perfport-manifest/1` JSON; the coordinator replies
    /// with the study spec (`ids=...;quick=0|1`) so both sides
    /// enumerate the identical grid.
    Hello {
        /// Which side is speaking.
        role: Role,
        /// Stable peer name (`"w0"`, `"coordinator"`); keys the joined
        /// artifact's manifest trailer, so workers should pick unique
        /// idents.
        ident: String,
        /// Role-dependent payload: worker manifest JSON or coordinator
        /// study spec.
        detail: String,
    },
    /// Coordinator → worker: run canonical grid indices `start..end`.
    Lease {
        /// Coordinator-unique lease identifier; echoed by `Heartbeat`
        /// and `Result` so stale deliveries are attributable.
        lease_id: u64,
        /// First canonical grid index of the leased range (inclusive).
        start: u64,
        /// One past the last canonical grid index (exclusive).
        end: u64,
    },
    /// Worker → coordinator: the leased range's finished artifact.
    Result {
        /// The lease being fulfilled.
        lease_id: u64,
        /// Echo of the leased range start (coordinator cross-checks).
        start: u64,
        /// Echo of the leased range end.
        end: u64,
        /// Headerless per-point study CSV, one line per grid index in
        /// canonical order — exactly the bytes `--shard` mode would
        /// print for these indices.
        csv: String,
        /// The worker's one-line `perfport-manifest/1` JSON, embedded
        /// into the joined artifact's trailer.
        manifest: String,
    },
    /// Worker → coordinator liveness: `done` points of the lease are
    /// finished. Each heartbeat pushes the lease deadline out by one
    /// TTL; a lease that misses its deadline is re-leased.
    Heartbeat {
        /// The lease being worked.
        lease_id: u64,
        /// Points completed so far within the lease (monotone, 1-based).
        done: u64,
    },
    /// Orderly goodbye from either side; the receiver must not expect
    /// further frames on this connection.
    Bye {
        /// Human-readable reason (`"complete"`, `"version mismatch"`).
        reason: String,
    },
}

/// A decoding failure. Every variant names what the decoder saw, so a
/// coordinator can log *why* a peer's bytes were refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does; `need` more bytes.
    Truncated {
        /// Bytes available.
        have: usize,
        /// Additional bytes required to finish header or payload.
        need: usize,
    },
    /// The header's length field exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The declared payload length.
        len: u32,
    },
    /// The header's version byte is not [`PROTOCOL_VERSION`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The header's tag byte names no known frame.
    BadTag {
        /// The tag byte received.
        got: u8,
    },
    /// The header's reserved bytes were not zero.
    BadReserved {
        /// The reserved field received.
        got: u16,
    },
    /// The payload of an otherwise well-formed frame did not parse.
    BadPayload {
        /// Which frame kind was being decoded.
        frame: &'static str,
        /// What went wrong (short field-level description).
        detail: String,
    },
    /// `decode_exact` found bytes after a complete frame.
    TrailingBytes {
        /// How many surplus bytes followed the frame.
        extra: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need} more")
            }
            FrameError::Oversized { len } => {
                write!(
                    f,
                    "oversized frame: payload {len} bytes > max {MAX_PAYLOAD}"
                )
            }
            FrameError::BadVersion { got } => {
                write!(
                    f,
                    "protocol version {got} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            FrameError::BadTag { got } => write!(f, "unknown frame tag {got}"),
            FrameError::BadReserved { got } => {
                write!(f, "reserved header bytes must be zero, got {got:#06x}")
            }
            FrameError::BadPayload { frame, detail } => {
                write!(f, "malformed {frame} payload: {detail}")
            }
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after frame")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Outcome of one incremental decode attempt over a byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeStep {
    /// Not enough bytes buffered yet for a whole frame; read at least
    /// `need` more and retry. This is the streaming half of the codec —
    /// TCP readers loop on it.
    Incomplete {
        /// Additional bytes required (lower bound).
        need: usize,
    },
    /// A complete frame, occupying the first `consumed` buffer bytes.
    Ready {
        /// The decoded frame.
        frame: Frame,
        /// Bytes the frame occupied; drain these before retrying.
        consumed: usize,
    },
}

const TAG_HELLO: u8 = 1;
const TAG_LEASE: u8 = 2;
const TAG_RESULT: u8 = 3;
const TAG_HEARTBEAT: u8 = 4;
const TAG_BYE: u8 = 5;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn string(&mut self, s: &str) {
        self.buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    frame: &'static str,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8], frame: &'static str) -> Reader<'a> {
        Reader { buf, pos: 0, frame }
    }

    fn bad(&self, detail: impl Into<String>) -> FrameError {
        FrameError::BadPayload {
            frame: self.frame,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| self.bad(format!("{what}: payload ends early")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn u64(&mut self, what: &str) -> Result<u64, FrameError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn string(&mut self, what: &str) -> Result<String, FrameError> {
        let len = u32::from_le_bytes(self.take(4, what)?.try_into().expect("4-byte slice"));
        let bytes = self.take(len as usize, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.bad(format!("{what}: invalid UTF-8")))
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(self.bad(format!(
                "{} unread payload bytes",
                self.buf.len() - self.pos
            )))
        }
    }
}

impl Frame {
    /// The frame's lowercase wire name (for logs and errors).
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Lease { .. } => "lease",
            Frame::Result { .. } => "result",
            Frame::Heartbeat { .. } => "heartbeat",
            Frame::Bye { .. } => "bye",
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => TAG_HELLO,
            Frame::Lease { .. } => TAG_LEASE,
            Frame::Result { .. } => TAG_RESULT,
            Frame::Heartbeat { .. } => TAG_HEARTBEAT,
            Frame::Bye { .. } => TAG_BYE,
        }
    }

    /// Serializes the frame: header ([`HEADER_LEN`] bytes) + payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Frame::Hello {
                role,
                ident,
                detail,
            } => {
                w.u8(role.to_byte());
                w.string(ident);
                w.string(detail);
            }
            Frame::Lease {
                lease_id,
                start,
                end,
            } => {
                w.u64(*lease_id);
                w.u64(*start);
                w.u64(*end);
            }
            Frame::Result {
                lease_id,
                start,
                end,
                csv,
                manifest,
            } => {
                w.u64(*lease_id);
                w.u64(*start);
                w.u64(*end);
                w.string(csv);
                w.string(manifest);
            }
            Frame::Heartbeat { lease_id, done } => {
                w.u64(*lease_id);
                w.u64(*done);
            }
            Frame::Bye { reason } => w.string(reason),
        }
        let payload = w.buf;
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.push(PROTOCOL_VERSION);
        out.push(self.tag());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Incremental decode over a (possibly still-filling) buffer:
    /// returns [`DecodeStep::Incomplete`] when more bytes are needed, a
    /// frame plus its consumed length when one is complete, or a typed
    /// [`FrameError`] for bytes that can never become a valid frame.
    pub fn decode_step(buf: &[u8]) -> Result<DecodeStep, FrameError> {
        if buf.len() < HEADER_LEN {
            return Ok(DecodeStep::Incomplete {
                need: HEADER_LEN - buf.len(),
            });
        }
        let len = u32::from_le_bytes(buf[0..4].try_into().expect("4-byte slice"));
        if len > MAX_PAYLOAD {
            return Err(FrameError::Oversized { len });
        }
        let version = buf[4];
        if version != PROTOCOL_VERSION {
            return Err(FrameError::BadVersion { got: version });
        }
        let tag = buf[5];
        let reserved = u16::from_le_bytes(buf[6..8].try_into().expect("2-byte slice"));
        if reserved != 0 {
            return Err(FrameError::BadReserved { got: reserved });
        }
        let total = HEADER_LEN + len as usize;
        if buf.len() < total {
            return Ok(DecodeStep::Incomplete {
                need: total - buf.len(),
            });
        }
        let frame = Frame::decode_payload(tag, &buf[HEADER_LEN..total])?;
        Ok(DecodeStep::Ready {
            frame,
            consumed: total,
        })
    }

    /// Decodes a buffer that must hold exactly one frame (the datagram
    /// form used by the loopback transport and the property tests).
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] when the buffer ends early and
    /// [`FrameError::TrailingBytes`] when bytes follow the frame, plus
    /// everything [`Frame::decode_step`] can return.
    pub fn decode_exact(buf: &[u8]) -> Result<Frame, FrameError> {
        match Frame::decode_step(buf)? {
            DecodeStep::Incomplete { need } => Err(FrameError::Truncated {
                have: buf.len(),
                need,
            }),
            DecodeStep::Ready { frame, consumed } if consumed == buf.len() => Ok(frame),
            DecodeStep::Ready { consumed, .. } => Err(FrameError::TrailingBytes {
                extra: buf.len() - consumed,
            }),
        }
    }

    fn decode_payload(tag: u8, payload: &[u8]) -> Result<Frame, FrameError> {
        match tag {
            TAG_HELLO => {
                let mut r = Reader::new(payload, "hello");
                let role_byte = r.u8("role")?;
                let role = Role::from_byte(role_byte)
                    .ok_or_else(|| r.bad(format!("unknown role byte {role_byte}")))?;
                let ident = r.string("ident")?;
                let detail = r.string("detail")?;
                r.finish()?;
                Ok(Frame::Hello {
                    role,
                    ident,
                    detail,
                })
            }
            TAG_LEASE => {
                let mut r = Reader::new(payload, "lease");
                let lease_id = r.u64("lease_id")?;
                let start = r.u64("start")?;
                let end = r.u64("end")?;
                r.finish()?;
                Ok(Frame::Lease {
                    lease_id,
                    start,
                    end,
                })
            }
            TAG_RESULT => {
                let mut r = Reader::new(payload, "result");
                let lease_id = r.u64("lease_id")?;
                let start = r.u64("start")?;
                let end = r.u64("end")?;
                let csv = r.string("csv")?;
                let manifest = r.string("manifest")?;
                r.finish()?;
                Ok(Frame::Result {
                    lease_id,
                    start,
                    end,
                    csv,
                    manifest,
                })
            }
            TAG_HEARTBEAT => {
                let mut r = Reader::new(payload, "heartbeat");
                let lease_id = r.u64("lease_id")?;
                let done = r.u64("done")?;
                r.finish()?;
                Ok(Frame::Heartbeat { lease_id, done })
            }
            TAG_BYE => {
                let mut r = Reader::new(payload, "bye");
                let reason = r.string("reason")?;
                r.finish()?;
                Ok(Frame::Bye { reason })
            }
            got => Err(FrameError::BadTag { got }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello {
                role: Role::Worker,
                ident: "w0".to_string(),
                detail: "{\"schema\": \"perfport-manifest/1\"}".to_string(),
            },
            Frame::Hello {
                role: Role::Coordinator,
                ident: "coordinator".to_string(),
                detail: "ids=fig5c;quick=1".to_string(),
            },
            Frame::Lease {
                lease_id: 1,
                start: 0,
                end: 4,
            },
            Frame::Result {
                lease_id: 1,
                start: 0,
                end: 2,
                csv: "fig5c,AmpereAltra,KokkosOmp,FP32,1024,1.0,2e-1,Compute,0e0,ok\n".to_string(),
                manifest: "{}".to_string(),
            },
            Frame::Heartbeat {
                lease_id: 1,
                done: 3,
            },
            Frame::Bye {
                reason: "complete".to_string(),
            },
        ]
    }

    #[test]
    fn round_trip_every_frame_kind() {
        for frame in samples() {
            let bytes = frame.encode();
            assert_eq!(Frame::decode_exact(&bytes), Ok(frame.clone()), "{frame:?}");
        }
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        for frame in samples() {
            let bytes = frame.encode();
            for cut in 0..bytes.len() {
                match Frame::decode_exact(&bytes[..cut]) {
                    Err(FrameError::Truncated { have, need }) => {
                        assert_eq!(have, cut);
                        assert!(need > 0);
                    }
                    other => panic!("cut at {cut} of {frame:?}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn streaming_decode_consumes_one_frame_and_reports_need() {
        let a = Frame::Heartbeat {
            lease_id: 9,
            done: 1,
        }
        .encode();
        let b = Frame::Bye {
            reason: "x".to_string(),
        }
        .encode();
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        match Frame::decode_step(&buf).unwrap() {
            DecodeStep::Ready { frame, consumed } => {
                assert_eq!(
                    frame,
                    Frame::Heartbeat {
                        lease_id: 9,
                        done: 1
                    }
                );
                assert_eq!(consumed, a.len());
                // The remainder is exactly frame b.
                assert_eq!(
                    Frame::decode_exact(&buf[consumed..]),
                    Ok(Frame::Bye {
                        reason: "x".to_string()
                    })
                );
            }
            other => panic!("{other:?}"),
        }
        match Frame::decode_step(&a[..3]).unwrap() {
            DecodeStep::Incomplete { need } => assert_eq!(need, HEADER_LEN - 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bad_header_fields_are_rejected() {
        let mut bytes = Frame::Bye {
            reason: "ok".to_string(),
        }
        .encode();
        bytes[4] = 2; // future version
        assert_eq!(
            Frame::decode_exact(&bytes),
            Err(FrameError::BadVersion { got: 2 })
        );
        bytes[4] = PROTOCOL_VERSION;
        bytes[5] = 77; // unknown tag
        assert_eq!(
            Frame::decode_exact(&bytes),
            Err(FrameError::BadTag { got: 77 })
        );
        bytes[5] = TAG_BYE;
        bytes[6] = 1; // reserved bits
        assert!(matches!(
            Frame::decode_exact(&bytes),
            Err(FrameError::BadReserved { .. })
        ));
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut bytes = vec![0u8; HEADER_LEN];
        bytes[0..4].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        bytes[4] = PROTOCOL_VERSION;
        bytes[5] = TAG_BYE;
        assert_eq!(
            Frame::decode_exact(&bytes),
            Err(FrameError::Oversized {
                len: MAX_PAYLOAD + 1
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Frame::Heartbeat {
            lease_id: 1,
            done: 1,
        }
        .encode();
        bytes.push(0xFF);
        assert_eq!(
            Frame::decode_exact(&bytes),
            Err(FrameError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn inner_string_lengths_cannot_escape_the_payload() {
        // A hello whose ident length field claims more bytes than the
        // payload holds must fail as BadPayload, not panic or over-read.
        let mut w = Writer::new();
        w.u8(0);
        w.buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let payload = w.buf;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.push(PROTOCOL_VERSION);
        bytes.push(TAG_HELLO);
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            Frame::decode_exact(&bytes),
            Err(FrameError::BadPayload { frame: "hello", .. })
        ));
    }
}
