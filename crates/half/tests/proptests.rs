//! Property-based tests for the software binary16 implementation.

use perfport_half::{f16_bits_to_f32, f32_to_f16_bits, F16};
use proptest::prelude::*;

proptest! {
    /// Widening then narrowing any finite f16 is the identity.
    #[test]
    fn widen_narrow_identity(bits in 0u16..=0xffff) {
        let f = f16_bits_to_f32(bits);
        prop_assume!(!f.is_nan());
        prop_assert_eq!(f32_to_f16_bits(f), bits);
    }

    /// Narrowing is monotone: x <= y implies f16(x) <= f16(y).
    #[test]
    fn narrowing_is_monotone(a in -1e6f32..1e6, b in -1e6f32..1e6) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let fl = F16::from_f32(lo);
        let fh = F16::from_f32(hi);
        prop_assert!(fl <= fh, "{lo} -> {fl:?} vs {hi} -> {fh:?}");
    }

    /// The rounding error of narrowing is at most half an ulp of the result.
    #[test]
    fn narrowing_error_within_half_ulp(x in -60000.0f32..60000.0) {
        let h = F16::from_f32(x);
        let back = h.to_f64();
        // ulp at the magnitude of the result (use the wider neighbour gap
        // at exponent boundaries to stay conservative).
        let exp = back.abs().max(2.0f64.powi(-24)).log2().floor() as i32;
        let ulp = 2.0f64.powf((exp - 10).max(-24) as f64);
        prop_assert!((back - x as f64).abs() <= ulp, "x={x} h={back} ulp={ulp}");
    }

    /// Addition is commutative (bit-for-bit, finite inputs).
    #[test]
    fn addition_commutes(a in -200.0f32..200.0, b in -200.0f32..200.0) {
        let (a, b) = (F16::from_f32(a), F16::from_f32(b));
        prop_assert_eq!((a + b).to_bits(), (b + a).to_bits());
    }

    /// Multiplication is commutative (bit-for-bit, finite inputs).
    #[test]
    fn multiplication_commutes(a in -200.0f32..200.0, b in -200.0f32..200.0) {
        let (a, b) = (F16::from_f32(a), F16::from_f32(b));
        prop_assert_eq!((a * b).to_bits(), (b * a).to_bits());
    }

    /// x + 0 == x and x * 1 == x for all finite x (identity elements).
    #[test]
    fn identity_elements(bits in 0u16..=0xffff) {
        let x = F16::from_bits(bits);
        prop_assume!(x.is_finite());
        prop_assert_eq!(x + F16::ZERO, x);
        prop_assert_eq!(x * F16::ONE, x);
    }

    /// Negation is an involution and flips only the sign bit.
    #[test]
    fn negation_involution(bits in 0u16..=0xffff) {
        let x = F16::from_bits(bits);
        prop_assert_eq!((-(-x)).to_bits(), bits);
        prop_assert_eq!((-x).to_bits(), bits ^ 0x8000);
    }

    /// Multiplication of f16 operands through f32 is exactly the correctly
    /// rounded product (11-bit mantissas multiply exactly in f32's 24 bits).
    #[test]
    fn multiplication_correctly_rounded(a in 0u16..=0x7bff, b in 0u16..=0x7bff) {
        let (x, y) = (F16::from_bits(a), F16::from_bits(b));
        let got = x * y;
        let exact = x.to_f64() * y.to_f64();
        let expect = F16::from_f64(exact);
        if got.is_nan() {
            prop_assert!(expect.is_nan());
        } else {
            prop_assert_eq!(got.to_bits(), expect.to_bits());
        }
    }

    /// abs() clears the sign and preserves magnitude.
    #[test]
    fn abs_properties(bits in 0u16..=0xffff) {
        let x = F16::from_bits(bits);
        let a = x.abs();
        prop_assert!(!a.is_sign_negative());
        prop_assert_eq!(a.to_bits(), bits & 0x7fff);
    }

    /// total_cmp is antisymmetric and consistent with PartialOrd on
    /// comparable values.
    #[test]
    fn total_cmp_consistency(a in 0u16..=0xffff, b in 0u16..=0xffff) {
        let (x, y) = (F16::from_bits(a), F16::from_bits(b));
        prop_assert_eq!(x.total_cmp(y), y.total_cmp(x).reverse());
        if let Some(ord) = x.partial_cmp(&y) {
            if x.to_bits() != y.to_bits() && ord != std::cmp::Ordering::Equal {
                prop_assert_eq!(x.total_cmp(y), ord);
            }
        }
    }

    /// from_f64 and from_f32 agree for values representable in f32.
    #[test]
    fn f64_path_matches_f32_path(x in -65000.0f32..65000.0) {
        prop_assert_eq!(F16::from_f64(x as f64).to_bits(), F16::from_f32(x).to_bits());
    }
}
