//! Software IEEE 754 binary16 ("half precision") arithmetic.
//!
//! The paper studies FP16 support across programming models (Julia on AMD
//! GPUs, Numba's missing `float16` random generation, Julia's maturing
//! native FP16 on CPUs). None of the machines this reproduction runs on are
//! guaranteed to have hardware half-precision, and stable Rust has no `f16`
//! primitive, so this crate provides a bit-exact software implementation:
//!
//! * conversions to/from `f32`/`f64` with round-to-nearest-even,
//! * subnormal, infinity, and NaN handling,
//! * arithmetic implemented by converting through `f32` (the same strategy
//!   used by production soft-half libraries and by LLVM's `__gnu_h2f_ieee`
//!   lowering on hardware without native FP16),
//! * deterministic uniform random generation mirroring what the paper's
//!   Julia implementation supports (and Numba does not).
//!
//! The exported [`F16`] type implements enough of the numeric surface to be
//! used as a GEMM scalar in `perfport-gemm` and as a device element type in
//! `perfport-gpusim`.

mod bits;
mod f16;

pub use bits::{f16_bits_to_f32, f32_to_f16_bits};
pub use f16::F16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_surface_round_trip() {
        let x = F16::from_f32(1.5);
        assert_eq!(x.to_f32(), 1.5);
        assert_eq!(F16::from_f32(f16_bits_to_f32(x.to_bits())), x);
        assert_eq!(f32_to_f16_bits(1.5), x.to_bits());
    }
}
