//! Bit-level conversions between IEEE 754 binary32 and binary16.
//!
//! Layout of a binary16 value:
//!
//! ```text
//! 15   14..10    9..0
//! sign exponent  mantissa        bias = 15
//! ```
//!
//! All conversions use round-to-nearest, ties-to-even — the default rounding
//! mode on every platform the paper targets.

/// Number of mantissa bits in binary16.
pub(crate) const MAN_BITS: u32 = 10;
/// Number of mantissa bits in binary32.
const F32_MAN_BITS: u32 = 23;
/// Exponent bias of binary16.
pub(crate) const EXP_BIAS: i32 = 15;
/// Exponent bias of binary32.
const F32_EXP_BIAS: i32 = 127;
/// Bit pattern of positive infinity in binary16.
pub(crate) const INF_BITS: u16 = 0x7c00;
/// Canonical quiet NaN in binary16.
pub(crate) const NAN_BITS: u16 = 0x7e00;

/// Converts a binary32 value to binary16 bits with round-to-nearest-even.
///
/// Overflow saturates to infinity, underflow rounds through the subnormal
/// range down to (signed) zero, and NaNs are quieted while preserving the
/// top mantissa payload bits.
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> F32_MAN_BITS) & 0xff) as i32;
    let man = bits & 0x007f_ffff;

    if exp == 0xff {
        if man == 0 {
            return sign | INF_BITS;
        }
        // Quiet the NaN and keep the high payload bits; force the quiet bit
        // so a payload of zero cannot collapse into infinity.
        return sign | NAN_BITS | ((man >> (F32_MAN_BITS - MAN_BITS)) as u16);
    }

    let unbiased = exp - F32_EXP_BIAS;

    if unbiased >= 16 {
        // Magnitude is at least 2^16 > f16::MAX even after rounding.
        return sign | INF_BITS;
    }

    if unbiased >= -14 {
        // Result is a normal binary16 number (modulo rounding overflow,
        // which the carry out of `+ 1` below handles: mantissa overflow
        // increments the exponent and can correctly reach infinity).
        let e = (unbiased + EXP_BIAS) as u16;
        let m = (man >> (F32_MAN_BITS - MAN_BITS)) as u16;
        let out = sign | (e << MAN_BITS) | m;
        let round = man & 0x1fff;
        if round > 0x1000 || (round == 0x1000 && (m & 1) == 1) {
            return out + 1;
        }
        return out;
    }

    if unbiased < -25 {
        // Magnitude is below half of the smallest subnormal: rounds to zero.
        return sign;
    }

    // Subnormal range: value = full_man * 2^(unbiased - 23), and the target
    // unit in the last place is 2^-24, so the result mantissa is
    // full_man >> (-(unbiased) - 1).
    let full_man = man | 0x0080_0000;
    let shift = (-unbiased - 1) as u32;
    debug_assert!((14..=24).contains(&shift));
    let m = (full_man >> shift) as u16;
    let rem = full_man & ((1u32 << shift) - 1);
    let half = 1u32 << (shift - 1);
    let out = sign | m;
    if rem > half || (rem == half && (m & 1) == 1) {
        // May carry into the exponent field, correctly producing the
        // smallest normal number.
        return out + 1;
    }
    out
}

/// Converts binary16 bits to the exactly representable binary32 value.
///
/// Every finite binary16 value is exactly representable in binary32, so
/// this direction is lossless.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> MAN_BITS) & 0x1f) as u32;
    let man = (h & 0x03ff) as u32;

    let bits = match exp {
        0 => {
            if man == 0 {
                sign // signed zero
            } else {
                // Subnormal: value = man * 2^-24. Normalise so the leading
                // set bit becomes the implicit bit.
                let p = 31 - man.leading_zeros(); // position of MSB, 0..=9
                let e32 = (p as i32 - 24 + F32_EXP_BIAS) as u32;
                let m32 = (man << (F32_MAN_BITS - p)) & 0x007f_ffff;
                sign | (e32 << F32_MAN_BITS) | m32
            }
        }
        31 => {
            if man == 0 {
                sign | 0x7f80_0000
            } else {
                // Preserve the payload in the top mantissa bits, quiet bit
                // carried along from bit 9.
                sign | 0x7f80_0000 | (man << (F32_MAN_BITS - MAN_BITS))
            }
        }
        _ => {
            let e32 = (exp as i32 - EXP_BIAS + F32_EXP_BIAS) as u32;
            sign | (e32 << F32_MAN_BITS) | (man << (F32_MAN_BITS - MAN_BITS))
        }
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(x: f32) -> f32 {
        f16_bits_to_f32(f32_to_f16_bits(x))
    }

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let x = i as f32;
            assert_eq!(rt(x), x, "integer {i} must be exact in f16");
        }
    }

    #[test]
    fn max_finite_value() {
        // f16::MAX = 65504.
        assert_eq!(rt(65504.0), 65504.0);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7bff);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(f32_to_f16_bits(65536.0), INF_BITS);
        assert_eq!(f32_to_f16_bits(1e30), INF_BITS);
        assert_eq!(f32_to_f16_bits(-1e30), 0x8000 | INF_BITS);
    }

    #[test]
    fn rounding_overflow_at_max_boundary() {
        // 65520 is the midpoint between 65504 (max finite) and 65536; ties
        // to even rounds *up* to infinity because the max-finite mantissa is
        // odd (0x3ff).
        assert_eq!(f32_to_f16_bits(65520.0), INF_BITS);
        // Just under the midpoint stays finite.
        assert_eq!(f32_to_f16_bits(65519.996), 0x7bff);
    }

    #[test]
    fn smallest_normal_and_subnormals() {
        let min_normal = 6.103_515_6e-5; // 2^-14
        assert_eq!(rt(min_normal), min_normal);
        assert_eq!(f32_to_f16_bits(min_normal), 0x0400);

        let min_subnormal = 5.960_464_477_539_063e-8_f64 as f32; // 2^-24
        assert_eq!(f32_to_f16_bits(min_subnormal), 0x0001);
        assert_eq!(f16_bits_to_f32(0x0001), min_subnormal);
    }

    #[test]
    fn underflow_to_zero() {
        // Half of the smallest subnormal ties to even = zero.
        let half_min = (2.0f64.powi(-25)) as f32;
        assert_eq!(f32_to_f16_bits(half_min), 0x0000);
        assert_eq!(f32_to_f16_bits(-half_min), 0x8000);
        // Slightly above the midpoint rounds to the smallest subnormal.
        let above = (2.0f64.powi(-25) * 1.001) as f32;
        assert_eq!(f32_to_f16_bits(above), 0x0001);
        // Anything below 2^-25 is a clean zero.
        assert_eq!(f32_to_f16_bits(1e-12), 0x0000);
    }

    #[test]
    fn signed_zero_preserved() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f16_bits_to_f32(0x8000).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn nan_is_quieted_and_stays_nan() {
        let h = f32_to_f16_bits(f32::NAN);
        assert_eq!(h & 0x7c00, 0x7c00);
        assert_ne!(h & 0x03ff, 0, "NaN must not collapse to infinity");
        assert!(f16_bits_to_f32(h).is_nan());
        // Signalling NaN with a tiny payload must not become infinity.
        let snan = f32::from_bits(0x7f80_0001);
        let h = f32_to_f16_bits(snan);
        assert_ne!(h & 0x03ff, 0);
        assert!(f16_bits_to_f32(h).is_nan());
    }

    #[test]
    fn infinity_round_trips() {
        assert_eq!(f16_bits_to_f32(INF_BITS), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(0x8000 | INF_BITS), f32::NEG_INFINITY);
        assert_eq!(f32_to_f16_bits(f32::INFINITY), INF_BITS);
    }

    #[test]
    fn ties_to_even_in_normal_range() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16
        // (1 + 2^-10); even mantissa (0) wins -> 1.0.
        let x = 1.0 + 2.0f32.powi(-11);
        assert_eq!(rt(x), 1.0);
        // (1 + 2^-10) + 2^-11 is halfway between two values whose lower
        // mantissa bit is 1 and 0; rounds up to the even one.
        let y = 1.0 + 2.0f32.powi(-10) + 2.0f32.powi(-11);
        assert_eq!(rt(y), 1.0 + 2.0 * 2.0f32.powi(-10));
    }

    #[test]
    fn every_f16_bit_pattern_round_trips_through_f32() {
        for h in 0..=u16::MAX {
            let f = f16_bits_to_f32(h);
            let back = f32_to_f16_bits(f);
            if f.is_nan() {
                assert_eq!(back & 0x7c00, 0x7c00);
                assert_ne!(back & 0x03ff, 0);
            } else {
                assert_eq!(back, h, "bit pattern {h:#06x} failed round trip");
            }
        }
    }

    #[test]
    fn conversion_matches_nearest_f16_by_exhaustive_search() {
        // For a sample of f32 values, verify that the chosen f16 is at least
        // as close as both neighbouring candidates (correct rounding).
        let samples = [
            0.1f32,
            0.2,
            0.3,
            1.0 / 3.0,
            2.0 / 3.0,
            0.7,
            std::f32::consts::PI,
            std::f32::consts::E,
            123.456,
            1000.001,
            0.00012345,
            6e-5,
            3e-5,
            1e-6,
            60000.0,
        ];
        for &s in &samples {
            for &x in &[s, -s] {
                let h = f32_to_f16_bits(x);
                let chosen = f16_bits_to_f32(h) as f64;
                let err = (chosen - x as f64).abs();
                // Compare against neighbours one ulp away.
                for delta in [-1i32, 1] {
                    let n = h.wrapping_add(delta as u16);
                    // Skip non-finite neighbours and sign flips.
                    if n & 0x7c00 == 0x7c00 || (n ^ h) & 0x8000 != 0 {
                        continue;
                    }
                    let cand = f16_bits_to_f32(n) as f64;
                    let cand_err = (cand - x as f64).abs();
                    assert!(
                        err <= cand_err,
                        "{x} rounded to {chosen} but {cand} is closer"
                    );
                }
            }
        }
    }
}
