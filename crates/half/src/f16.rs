//! The [`F16`] value type and its numeric trait implementations.

use crate::bits::{f16_bits_to_f32, f32_to_f16_bits, INF_BITS, NAN_BITS};
use rand::distributions::{Distribution, Standard};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, Sub, SubAssign};

/// An IEEE 754 binary16 floating-point number, stored as its bit pattern.
///
/// ```
/// use perfport_half::F16;
///
/// let x = F16::from_f32(1.5);
/// let y = F16::from_f32(2048.0);
/// assert_eq!((x + x).to_f32(), 3.0);
/// // Half precision rounds: 2048 + 1 is not representable.
/// assert_eq!((y + F16::ONE).to_f32(), 2048.0);
/// ```
///
/// Arithmetic converts through `f32` and rounds the result back to binary16
/// (round-to-nearest-even). For the basic operations `+ - * /` on half
/// operands this matches correctly rounded binary16 arithmetic except for a
/// handful of double-rounding corner cases in addition that production
/// soft-float half libraries share; multiplication and division of binary16
/// operands are exact in binary32 before the final rounding.
#[derive(Clone, Copy, Default, Serialize, Deserialize)]
#[repr(transparent)]
pub struct F16(u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3c00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xbc00);
    /// Largest finite value, `65504`.
    pub const MAX: F16 = F16(0x7bff);
    /// Smallest finite value, `-65504`.
    pub const MIN: F16 = F16(0xfbff);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, `2^-24`.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon, `2^-10`.
    pub const EPSILON: F16 = F16(0x1400);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(INF_BITS);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0x8000 | INF_BITS);
    /// Canonical quiet NaN.
    pub const NAN: F16 = F16(NAN_BITS);

    /// Number of significant binary digits (including the implicit bit).
    pub const MANTISSA_DIGITS: u32 = 11;

    /// Builds a value from its raw bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32`, rounding to nearest-even.
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        F16(f32_to_f16_bits(x))
    }

    /// Converts from `f64`, rounding to nearest-even.
    ///
    /// The conversion goes through `f32`; since binary32 has more than twice
    /// the precision and a vastly wider exponent range than binary16, the
    /// intermediate rounding only matters for values that are already ties
    /// at binary32 precision, which cannot flip a binary16 rounding
    /// decision for inputs exactly representable in binary64 halfway cases.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        F16(f32_to_f16_bits(x as f32))
    }

    /// Widens to the exactly representable `f32`.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// Widens a slice element-wise into `dst` (exact; `f32` represents
    /// every `f16` value). The bulk form GEMM pack routines use to
    /// convert whole contiguous panels at once.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    #[inline]
    pub fn widen_slice(src: &[F16], dst: &mut [f32]) {
        assert_eq!(src.len(), dst.len(), "widen_slice length mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            *d = s.to_f32();
        }
    }

    /// Widens to the exactly representable `f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        f16_bits_to_f32(self.0) as f64
    }

    /// `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7c00) == 0x7c00 && (self.0 & 0x03ff) != 0
    }

    /// `true` if the value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7fff) == INF_BITS
    }

    /// `true` if the value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7c00) != 0x7c00
    }

    /// `true` for subnormal values (non-zero, exponent field zero).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7c00) == 0 && (self.0 & 0x03ff) != 0
    }

    /// `true` if the sign bit is set (includes `-0` and negative NaNs).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// Absolute value (clears the sign bit, NaN payload preserved).
    #[inline]
    pub fn abs(self) -> Self {
        F16(self.0 & 0x7fff)
    }

    /// Fused multiply-add `self * a + b`, computed exactly in `f64` and
    /// rounded once — the semantics of a hardware FMA instruction.
    #[inline]
    pub fn mul_add(self, a: F16, b: F16) -> Self {
        F16::from_f64(self.to_f64() * a.to_f64() + b.to_f64())
    }

    /// Square root, correctly rounded via `f64`.
    #[inline]
    pub fn sqrt(self) -> Self {
        F16::from_f64(self.to_f64().sqrt())
    }

    /// The larger of two values; NaN loses against any number, mirroring
    /// `f32::max`.
    #[inline]
    pub fn max(self, other: F16) -> Self {
        F16::from_f32(self.to_f32().max(other.to_f32()))
    }

    /// The smaller of two values; NaN loses against any number.
    #[inline]
    pub fn min(self, other: F16) -> Self {
        F16::from_f32(self.to_f32().min(other.to_f32()))
    }

    /// Total order over bit patterns (IEEE 754 `totalOrder`), used by tests
    /// that need a deterministic sort including NaNs.
    #[inline]
    pub fn total_cmp(self, other: F16) -> Ordering {
        // Flip negative values so the integer order matches numeric order.
        fn key(bits: u16) -> i32 {
            let b = bits as i32;
            if b & 0x8000 != 0 {
                !b & 0xffff
            } else {
                b | 0x1_0000
            }
        }
        key(self.0).cmp(&key(other.0))
    }
}

macro_rules! via_f32 {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            #[inline]
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
        impl $assign_trait for F16 {
            #[inline]
            fn $assign_method(&mut self, rhs: F16) {
                *self = *self $op rhs;
            }
        }
    };
}

via_f32!(Add, add, AddAssign, add_assign, +);
via_f32!(Sub, sub, SubAssign, sub_assign, -);
via_f32!(Mul, mul, MulAssign, mul_assign, *);
via_f32!(Div, div, DivAssign, div_assign, /);

impl Rem for F16 {
    type Output = F16;
    #[inline]
    fn rem(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() % rhs.to_f32())
    }
}

impl Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

impl PartialEq for F16 {
    #[inline]
    fn eq(&self, other: &F16) -> bool {
        // IEEE semantics: NaN != NaN, +0 == -0.
        self.to_f32() == other.to_f32()
    }
}

impl PartialOrd for F16 {
    #[inline]
    fn partial_cmp(&self, other: &F16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl Sum for F16 {
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ZERO, |a, b| a + b)
    }
}

impl Product for F16 {
    fn product<I: Iterator<Item = F16>>(iter: I) -> F16 {
        iter.fold(F16::ONE, |a, b| a * b)
    }
}

impl From<f32> for F16 {
    fn from(x: f32) -> F16 {
        F16::from_f32(x)
    }
}

impl From<F16> for f32 {
    fn from(x: F16) -> f32 {
        x.to_f32()
    }
}

impl From<F16> for f64 {
    fn from(x: F16) -> f64 {
        x.to_f64()
    }
}

impl From<u8> for F16 {
    fn from(x: u8) -> F16 {
        F16::from_f32(x as f32)
    }
}

impl From<i8> for F16 {
    fn from(x: i8) -> F16 {
        F16::from_f32(x as f32)
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}f16", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

/// Uniform sampling in `[0, 1)` — the capability the paper calls out as
/// missing for `numpy.float16` (forcing the Numba experiment to fill inputs
/// with ones) but present in Julia.
impl Distribution<F16> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> F16 {
        // Generate with 11 significant bits so every draw is exact in f16
        // and the distribution over representable values is uniform in value
        // (matching `rand(Float16)` in Julia).
        let v = rng.gen_range(0u16..2048);
        F16::from_f32(v as f32 / 2048.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::NEG_ONE.to_f32(), -1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
    }

    #[test]
    fn basic_arithmetic() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(2.25);
        assert_eq!((a + b).to_f32(), 3.75);
        assert_eq!((b - a).to_f32(), 0.75);
        assert_eq!((a * b).to_f32(), 3.375);
        assert_eq!((b / F16::from_f32(0.75)).to_f32(), 3.0);
        assert_eq!((-a).to_f32(), -1.5);
        assert_eq!((b % a).to_f32(), 0.75);
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let mut x = F16::from_f32(0.5);
        x += F16::ONE;
        assert_eq!(x.to_f32(), 1.5);
        x *= F16::from_f32(4.0);
        assert_eq!(x.to_f32(), 6.0);
        x -= F16::ONE;
        assert_eq!(x.to_f32(), 5.0);
        x /= F16::from_f32(2.0);
        assert_eq!(x.to_f32(), 2.5);
    }

    #[test]
    fn addition_rounds_to_half_precision() {
        // 2048 + 1 is not representable in f16 (11-bit mantissa): ties to
        // even keeps 2048.
        let big = F16::from_f32(2048.0);
        assert_eq!((big + F16::ONE).to_f32(), 2048.0);
        // 2048 + 2 is representable.
        assert_eq!((big + F16::from_f32(2.0)).to_f32(), 2050.0);
    }

    #[test]
    fn overflow_in_arithmetic_goes_to_infinity() {
        let x = F16::MAX;
        assert!((x + x).is_infinite());
        assert!((x * F16::from_f32(2.0)).is_infinite());
        assert!((-x - x).is_infinite());
        assert!((-x - x).is_sign_negative());
    }

    #[test]
    fn nan_propagates() {
        let n = F16::NAN;
        assert!((n + F16::ONE).is_nan());
        assert!((n * F16::ZERO).is_nan());
        assert!((F16::INFINITY - F16::INFINITY).is_nan());
        assert!((F16::ZERO / F16::ZERO).is_nan());
        assert_ne!(n, n);
    }

    #[test]
    fn signed_zero_semantics() {
        assert_eq!(F16::ZERO, F16::NEG_ZERO);
        assert!(F16::NEG_ZERO.is_sign_negative());
        assert!(!F16::ZERO.is_sign_negative());
        assert_eq!((-F16::ZERO).to_bits(), F16::NEG_ZERO.to_bits());
    }

    #[test]
    fn mul_add_is_single_rounded() {
        // Choose operands where (a*b) rounds differently than fma:
        // a = 1 + 2^-10 (ulp of 1), a*a = 1 + 2^-9 + 2^-20.
        let a = F16::from_f32(1.0 + 2.0f32.powi(-10));
        let naive = a * a + F16::ZERO;
        let fused = a.mul_add(a, F16::ZERO);
        // a*a in f16: 1 + 2^-9 + 2^-20 rounds to 1 + 2^-9 (2^-20 below half
        // ulp). Here both agree; verify the fused result is the correctly
        // rounded one computed in f64.
        let exact = a.to_f64() * a.to_f64();
        assert_eq!(fused, F16::from_f64(exact));
        assert_eq!(naive, fused);

        // A case where they differ: c + a*b with cancellation.
        let x = F16::from_f32(255.9);
        let fused = x.mul_add(x, -(x * x));
        // fused = x^2 - round(x^2), the (negated) rounding error: non-zero.
        let naive = x * x - x * x;
        assert_eq!(naive.to_f32(), 0.0);
        assert!(fused.abs() > F16::ZERO, "fma must expose rounding error");
    }

    #[test]
    fn comparisons_follow_ieee() {
        assert!(F16::ONE < F16::from_f32(1.5));
        assert!(F16::NEG_INFINITY < F16::MIN);
        assert!(F16::MAX < F16::INFINITY);
        assert_eq!(F16::NAN.partial_cmp(&F16::ONE), None);
    }

    #[test]
    fn total_cmp_orders_all_bit_patterns() {
        let mut vals = vec![
            F16::NEG_INFINITY,
            F16::MIN,
            F16::NEG_ONE,
            F16::NEG_ZERO,
            F16::ZERO,
            F16::MIN_POSITIVE_SUBNORMAL,
            F16::MIN_POSITIVE,
            F16::ONE,
            F16::MAX,
            F16::INFINITY,
        ];
        let sorted = vals.clone();
        vals.reverse();
        vals.sort_by(|a, b| a.total_cmp(*b));
        for (a, b) in vals.iter().zip(&sorted) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sum_and_product_fold_in_half_precision() {
        let ones = [F16::ONE; 100];
        let s: F16 = ones.iter().copied().sum();
        assert_eq!(s.to_f32(), 100.0);
        let p: F16 = vec![F16::from_f32(2.0); 10].into_iter().product();
        assert_eq!(p.to_f32(), 1024.0);
    }

    #[test]
    fn random_sampling_is_exact_and_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: F16 = rng.gen();
            let f = x.to_f32();
            assert!((0.0..1.0).contains(&f));
            // Exactness: converting back must be lossless.
            assert_eq!(F16::from_f32(f), x);
        }
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", F16::from_f32(1.5)), "1.5");
        assert_eq!(format!("{:?}", F16::from_f32(1.5)), "1.5f16");
    }

    #[test]
    fn classification() {
        assert!(F16::MIN_POSITIVE_SUBNORMAL.is_subnormal());
        assert!(!F16::MIN_POSITIVE.is_subnormal());
        assert!(F16::ONE.is_finite());
        assert!(!F16::INFINITY.is_finite());
        assert!(!F16::NAN.is_finite());
        assert!(F16::from_f32(-3.0).is_sign_negative());
    }
}
