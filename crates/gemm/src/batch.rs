//! Batched small-GEMM execution with shape-bucketing.
//!
//! The paper benchmarks one large GEMM at a time, but a production
//! serving system faces the opposite regime: streams of *many small*
//! problems with ragged shapes and mixed precisions, where batching —
//! not single-kernel throughput — decides efficiency (see "Flexible
//! Performant GEMM Kernels on GPUs", PAPERS.md). This module is that
//! serving layer for the tuned CPU kernel:
//!
//! * [`Problem`] / [`Output`] — one `C = A·B` request and its result,
//!   over `f64`/`f32`/[`F16`].
//! * [`bucket`] — groups problems by [`BucketKey`] `(precision, m, n,
//!   k)` so every problem in a bucket shares one [`TunedParams`] /
//!   `TileShape` selection ([`bucket_params`]), computed once per bucket
//!   instead of once per problem.
//! * [`gemm_batch`] — executes a batch on a [`ThreadPool`], one problem
//!   per work item in *canonical order* (bucket-major by `BucketKey`
//!   ordering, submission order within a bucket), packing through each
//!   worker's reusable thread-local arena.
//! * [`enqueue_batch`] — the streaming variant: submits the same
//!   canonical task sequence to a [`WorkQueue`] and hands back a
//!   [`BatchTicket`], so a server can enqueue the next batch while a
//!   previous one drains.
//!
//! # The batch ≡ serial bitwise contract
//!
//! The concatenated outputs of [`gemm_batch`] (and of a drained
//! [`enqueue_batch`] ticket) are **bitwise identical** to running
//! [`gemm_serial`] per problem in submission
//! order, for any bucketing and any worker count. Three facts make this
//! hold: every problem runs *whole* on one worker (no intra-problem
//! row-splitting), both paths derive parameters through the same
//! [`bucket_params`] function, and the tuned kernel's accumulation order
//! per `C` element is a fixed function of the `Kc` blocking alone. The
//! contract is enforced by proptests (`batch_props.rs`) and by the
//! serving harness's `--verify` mode.

use crate::matrix::{Layout, Matrix};
use crate::scalar::Scalar;
use crate::tuned::{gemm_serial, with_thread_arena, TunedParams};
use perfport_half::F16;
use perfport_pool::{SchedMode, Schedule, ThreadPool, WorkQueue};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Element precision of one batched problem, in canonical bucket order
/// (widest first, matching the paper's precision columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Precision {
    /// IEEE 754 binary64.
    F64,
    /// IEEE 754 binary32.
    F32,
    /// Software IEEE 754 binary16 ([`perfport_half::F16`]).
    F16,
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
            Precision::F16 => "f16",
        })
    }
}

/// One `C = A·B` request: the operands of a single small GEMM.
///
/// Operands are owned (a serving batch outlives the stack frame that
/// created it); `C` is always produced fresh and row-major, so the
/// request carries no output buffer.
#[derive(Debug, Clone)]
pub enum Problem {
    /// A double-precision problem.
    F64 {
        /// Left operand (`m × k`).
        a: Matrix<f64>,
        /// Right operand (`k × n`).
        b: Matrix<f64>,
    },
    /// A single-precision problem.
    F32 {
        /// Left operand (`m × k`).
        a: Matrix<f32>,
        /// Right operand (`k × n`).
        b: Matrix<f32>,
    },
    /// A half-precision problem.
    F16 {
        /// Left operand (`m × k`).
        a: Matrix<F16>,
        /// Right operand (`k × n`).
        b: Matrix<F16>,
    },
}

impl Problem {
    /// Wraps a double-precision multiply.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn new_f64(a: Matrix<f64>, b: Matrix<f64>) -> Self {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        Problem::F64 { a, b }
    }

    /// Wraps a single-precision multiply.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn new_f32(a: Matrix<f32>, b: Matrix<f32>) -> Self {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        Problem::F32 { a, b }
    }

    /// Wraps a half-precision multiply.
    ///
    /// # Panics
    ///
    /// Panics if `a.cols() != b.rows()`.
    pub fn new_f16(a: Matrix<F16>, b: Matrix<F16>) -> Self {
        assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
        Problem::F16 { a, b }
    }

    /// The problem's element precision.
    pub fn precision(&self) -> Precision {
        match self {
            Problem::F64 { .. } => Precision::F64,
            Problem::F32 { .. } => Precision::F32,
            Problem::F16 { .. } => Precision::F16,
        }
    }

    /// `(m, n, k)` of the multiply.
    pub fn dims(&self) -> (usize, usize, usize) {
        match self {
            Problem::F64 { a, b } => (a.rows(), b.cols(), a.cols()),
            Problem::F32 { a, b } => (a.rows(), b.cols(), a.cols()),
            Problem::F16 { a, b } => (a.rows(), b.cols(), a.cols()),
        }
    }

    /// The bucket this problem belongs to.
    pub fn key(&self) -> BucketKey {
        let (m, n, k) = self.dims();
        BucketKey {
            precision: self.precision(),
            m,
            n,
            k,
        }
    }

    /// Floating-point operations in the multiply (`2·m·n·k`).
    pub fn flops(&self) -> u64 {
        let (m, n, k) = self.dims();
        2 * m as u64 * n as u64 * k as u64
    }
}

/// The grouping key for shape-bucketing: problems with equal keys share
/// one [`TunedParams`] selection and run back-to-back so a worker's pack
/// arena sees a run of identically-shaped packs.
///
/// The derived ordering (precision-major, then `m`, `n`, `k`) is the
/// *canonical bucket order*: bucket iteration — and therefore the
/// batch's internal execution sequence — is identical for every worker
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BucketKey {
    /// Element precision.
    pub precision: Precision,
    /// Rows of `C`.
    pub m: usize,
    /// Columns of `C`.
    pub n: usize,
    /// Inner (contraction) dimension.
    pub k: usize,
}

impl fmt::Display for BucketKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}x{}x{}", self.precision, self.m, self.n, self.k)
    }
}

/// The result of one batched problem: a freshly-allocated row-major `C`.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// Double-precision result.
    F64(Matrix<f64>),
    /// Single-precision result.
    F32(Matrix<f32>),
    /// Half-precision result.
    F16(Matrix<F16>),
}

impl Output {
    /// `(rows, cols)` of the result.
    pub fn dims(&self) -> (usize, usize) {
        match self {
            Output::F64(c) => (c.rows(), c.cols()),
            Output::F32(c) => (c.rows(), c.cols()),
            Output::F16(c) => (c.rows(), c.cols()),
        }
    }

    /// The result's elements as little-endian bytes in storage order —
    /// the canonical form for the batch ≡ serial bitwise contract
    /// (`f16` serialises via its bit pattern).
    pub fn to_le_bytes(&self) -> Vec<u8> {
        match self {
            Output::F64(c) => c.as_slice().iter().flat_map(|v| v.to_le_bytes()).collect(),
            Output::F32(c) => c.as_slice().iter().flat_map(|v| v.to_le_bytes()).collect(),
            Output::F16(c) => c
                .as_slice()
                .iter()
                .flat_map(|v| v.to_bits().to_le_bytes())
                .collect(),
        }
    }
}

/// Groups problems into buckets by [`BucketKey`].
///
/// Every problem index lands in exactly one bucket; within a bucket,
/// indices keep submission order; buckets iterate in canonical
/// `BucketKey` order (the `BTreeMap` ordering) — all three properties
/// are load-bearing for the bitwise contract and property-tested.
pub fn bucket(problems: &[Problem]) -> BTreeMap<BucketKey, Vec<usize>> {
    let mut buckets: BTreeMap<BucketKey, Vec<usize>> = BTreeMap::new();
    for (idx, problem) in problems.iter().enumerate() {
        buckets.entry(problem.key()).or_default().push(idx);
    }
    buckets
}

/// The tuned-kernel parameters every problem in `key`'s bucket shares.
///
/// Both [`gemm_batch`] and the per-problem serial reference
/// ([`gemm_batch_serial`]) derive parameters through this one function,
/// which is half of what makes the bitwise contract hold (the other
/// half: each problem runs whole, so accumulation order never depends
/// on the worker count).
pub fn bucket_params(key: &BucketKey) -> TunedParams {
    match key.precision {
        Precision::F64 => TunedParams::host::<f64>(),
        Precision::F32 => TunedParams::host::<f32>(),
        Precision::F16 => TunedParams::host::<F16>(),
    }
}

fn solve<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, params: &TunedParams) -> Matrix<T> {
    let mut c = Matrix::zeros(a.rows(), b.cols(), Layout::RowMajor);
    with_thread_arena(|arena| gemm_serial(a, b, &mut c, params, arena));
    c
}

fn run_problem(problem: &Problem, params: &TunedParams) -> Output {
    let t0 = std::time::Instant::now();
    let output = match problem {
        Problem::F64 { a, b } => Output::F64(solve(a, b, params)),
        Problem::F32 { a, b } => Output::F32(solve(a, b, params)),
        Problem::F16 { a, b } => Output::F16(solve(a, b, params)),
    };
    // Per-bucket service-time histogram: tail percentiles for any
    // number of problems in O(1) memory, keyed so a serving mix's
    // buckets stay separable in the merged snapshot.
    let service_ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    perfport_telemetry::counter_add("batch/problems", 1);
    perfport_telemetry::observe(&format!("batch/service_ns/{}", problem.key()), service_ns);
    output
}

/// The canonical execution sequence: `(submission index, shared
/// params)` in bucket-major order, submission order within a bucket.
fn execution_order(problems: &[Problem]) -> Vec<(usize, TunedParams)> {
    let mut exec = Vec::with_capacity(problems.len());
    for (key, indices) in bucket(problems) {
        let params = bucket_params(&key);
        exec.extend(indices.into_iter().map(|idx| (idx, params)));
    }
    exec
}

/// Executes a batch of problems on the pool and returns outputs in
/// submission order, under the process-wide scheduler verdict
/// ([`perfport_pool::sched::active`]).
///
/// Work items are whole problems in canonical bucket order; each worker
/// packs through its reusable thread-local arena, so a steady stream of
/// batches never reallocates pack buffers after warm-up. Outputs are
/// bitwise identical to [`gemm_batch_serial`] for any worker count and
/// either scheduler (see the module docs).
pub fn gemm_batch(pool: &ThreadPool, problems: &[Problem]) -> Vec<Output> {
    gemm_batch_with(pool, problems, perfport_pool::sched::active())
}

/// [`gemm_batch`] with an explicit scheduler: `Barrier` dispatches
/// whole problems through `parallel_map` (one implicit end barrier per
/// batch), `Graph` runs them as independent [`TaskGraph`] tasks drained
/// without a barrier, so a straggler problem no longer idles the team
/// against the region join.
///
/// [`TaskGraph`]: perfport_pool::TaskGraph
pub fn gemm_batch_with(pool: &ThreadPool, problems: &[Problem], sched: SchedMode) -> Vec<Output> {
    let exec = execution_order(problems);
    let run = |i: usize| {
        let (idx, params) = &exec[i];
        (*idx, run_problem(&problems[*idx], params))
    };
    let results = match sched {
        SchedMode::Barrier => pool.parallel_map(exec.len(), Schedule::Dynamic { chunk: 1 }, run),
        SchedMode::Graph => pool.graph_map(exec.len(), run),
    };
    scatter(problems.len(), results)
}

/// The per-problem serial reference: [`gemm_serial`] on each problem in
/// submission order, with the same [`bucket_params`] the batch path
/// uses. This is the right-hand side of the bitwise contract.
pub fn gemm_batch_serial(problems: &[Problem]) -> Vec<Output> {
    problems
        .iter()
        .map(|p| run_problem(p, &bucket_params(&p.key())))
        .collect()
}

fn scatter(n: usize, results: Vec<(usize, Output)>) -> Vec<Output> {
    let mut slots: Vec<Option<Output>> = (0..n).map(|_| None).collect();
    for (idx, output) in results {
        debug_assert!(slots[idx].is_none(), "problem {idx} executed twice");
        slots[idx] = Some(output);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every problem executed exactly once"))
        .collect()
}

/// A handle to a batch submitted via [`enqueue_batch`]: collect the
/// outputs after the queue has drained.
pub struct BatchTicket {
    problems: Arc<Vec<Problem>>,
    slots: Arc<Vec<OnceLock<Output>>>,
}

impl BatchTicket {
    /// Number of problems in the batch.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether every problem in the batch has produced its output.
    pub fn is_complete(&self) -> bool {
        self.slots.iter().all(|s| s.get().is_some())
    }

    /// The batch's problems, in submission order (e.g. for a post-hoc
    /// `--verify` pass against the serial reference).
    pub fn problems(&self) -> &[Problem] {
        &self.problems
    }

    /// Takes the outputs, in submission order.
    ///
    /// # Panics
    ///
    /// Panics if the batch has not fully drained — call after
    /// [`WorkQueue::drain`] returns (the drain's region join guarantees
    /// every executed task, and its output write, happened-before).
    pub fn collect(self) -> Vec<Output> {
        let BatchTicket { slots, .. } = self;
        let slots = Arc::try_unwrap(slots).unwrap_or_else(|_| {
            panic!("BatchTicket::collect() while batch tasks are still in flight")
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("batch fully drained before collect()")
            })
            .collect()
    }
}

/// Submits a batch to a [`WorkQueue`] as one task per problem, in the
/// same canonical bucket-major order [`gemm_batch`] uses, and returns a
/// [`BatchTicket`] for the results.
///
/// Because the queue accepts submissions while a drain is running, a
/// server can enqueue the next batch while a previous one drains; the
/// drained ticket's outputs obey the same bitwise contract as
/// [`gemm_batch`].
pub fn enqueue_batch(queue: &WorkQueue, problems: Vec<Problem>) -> BatchTicket {
    let exec = execution_order(&problems);
    let problems = Arc::new(problems);
    let slots: Arc<Vec<OnceLock<Output>>> =
        Arc::new((0..problems.len()).map(|_| OnceLock::new()).collect());
    for (idx, params) in exec {
        let problems = Arc::clone(&problems);
        let slots = Arc::clone(&slots);
        queue.submit(move || {
            let output = run_problem(&problems[idx], &params);
            assert!(
                slots[idx].set(output).is_ok(),
                "problem {idx} executed twice"
            );
        });
    }
    BatchTicket { problems, slots }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_batch(seed: u64) -> Vec<Problem> {
        let l = Layout::RowMajor;
        vec![
            Problem::new_f32(
                Matrix::random(8, 12, l, seed),
                Matrix::random(12, 6, l, seed + 1),
            ),
            Problem::new_f64(
                Matrix::random(5, 7, Layout::ColMajor, seed + 2),
                Matrix::random(7, 9, l, seed + 3),
            ),
            Problem::new_f32(
                Matrix::random(8, 12, l, seed + 4),
                Matrix::random(12, 6, l, seed + 5),
            ),
            Problem::new_f16(
                Matrix::random(4, 3, l, seed + 6),
                Matrix::random(3, 10, l, seed + 7),
            ),
        ]
    }

    #[test]
    fn buckets_partition_the_batch() {
        let problems = mixed_batch(9);
        let buckets = bucket(&problems);
        // The two identically-shaped f32 problems share one bucket.
        assert_eq!(buckets.len(), 3);
        let mut seen: Vec<usize> = buckets.values().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn batch_matches_serial_bitwise() {
        let problems = mixed_batch(17);
        let serial = gemm_batch_serial(&problems);
        for threads in [1, 2, 5] {
            let pool = ThreadPool::new(threads);
            let batch = gemm_batch(&pool, &problems);
            assert_eq!(batch.len(), serial.len());
            for (i, (b, s)) in batch.iter().zip(&serial).enumerate() {
                assert_eq!(
                    b.to_le_bytes(),
                    s.to_le_bytes(),
                    "problem {i} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn both_schedulers_match_serial_bitwise() {
        let problems = mixed_batch(31);
        let serial = gemm_batch_serial(&problems);
        for threads in [1, 2, 7] {
            let pool = ThreadPool::new(threads);
            for sched in [SchedMode::Barrier, SchedMode::Graph] {
                let batch = gemm_batch_with(&pool, &problems, sched);
                for (i, (b, s)) in batch.iter().zip(&serial).enumerate() {
                    assert_eq!(
                        b.to_le_bytes(),
                        s.to_le_bytes(),
                        "problem {i} diverged at {threads} threads under {sched:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn enqueue_matches_serial_bitwise() {
        let problems = mixed_batch(23);
        let serial = gemm_batch_serial(&problems);
        let pool = ThreadPool::new(3);
        let queue = WorkQueue::new();
        let ticket = enqueue_batch(&queue, problems);
        assert!(!ticket.is_complete());
        queue.drain(&pool);
        assert!(ticket.is_complete());
        let outputs = ticket.collect();
        for (b, s) in outputs.iter().zip(&serial) {
            assert_eq!(b.to_le_bytes(), s.to_le_bytes());
        }
    }

    #[test]
    fn empty_and_degenerate_problems_round_trip() {
        let l = Layout::RowMajor;
        let problems = vec![
            Problem::new_f64(Matrix::random(0, 3, l, 1), Matrix::random(3, 4, l, 2)),
            Problem::new_f32(Matrix::random(2, 0, l, 3), Matrix::random(0, 5, l, 4)),
            Problem::new_f16(Matrix::random(1, 1, l, 5), Matrix::random(1, 1, l, 6)),
        ];
        let pool = ThreadPool::new(2);
        let batch = gemm_batch(&pool, &problems);
        let serial = gemm_batch_serial(&problems);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].dims(), (0, 4));
        // k = 0 means C is the zero matrix, not an error.
        assert_eq!(batch[1].dims(), (2, 5));
        assert!(matches!(&batch[1], Output::F32(c) if c.as_slice().iter().all(|v| *v == 0.0)));
        for (b, s) in batch.iter().zip(&serial) {
            assert_eq!(b.to_le_bytes(), s.to_le_bytes());
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions must agree")]
    fn mismatched_inner_dims_are_rejected() {
        let l = Layout::RowMajor;
        let _ = Problem::new_f32(Matrix::random(3, 4, l, 1), Matrix::random(5, 2, l, 2));
    }
}
