//! The element-type abstraction for GEMM kernels.
//!
//! The paper sweeps three precisions (double, single, half where
//! supported); [`Scalar`] lets every kernel be written once and
//! instantiated per precision, including the software half type.

use perfport_half::F16;
use rand::Rng;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A floating-point element type usable in GEMM kernels.
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialEq
    + PartialOrd
    + fmt::Debug
    + fmt::Display
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + 'static
{
    /// Human-readable precision name as the paper reports it.
    const NAME: &'static str;
    /// Bytes per element (drives the bandwidth side of the roofline).
    const BYTES: usize;
    /// Bytes per element *inside packed GEMM panels*. Equal to
    /// [`Scalar::BYTES`] for hardware floats; the software [`F16`] packs
    /// widened to `f32` (4 bytes) so the contraction runs a native
    /// microkernel — see `perfport_gemm::tuned` for the scheme.
    const PACK_BYTES: usize = Self::BYTES;
    /// Significand bits including the implicit bit.
    const MANTISSA_DIGITS: u32;

    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Conversion from `f64`, rounding to the element precision.
    fn from_f64(x: f64) -> Self;
    /// Widening conversion to `f64` (exact for all three precisions).
    fn to_f64(self) -> f64;
    /// Fused multiply-add `self * a + b` rounded once.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Draws a uniform sample from `[0, 1)` — the input distribution the
    /// paper fills matrices with (except Numba FP16, which cannot, see
    /// [`Scalar::SUPPORTS_RANDOM_FILL`]).
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self;
    /// Whether the surrounding ecosystem can fill matrices with random
    /// values at this precision. `false` only for the NumPy/Numba FP16
    /// case, where the paper resorts to matrices of ones.
    const SUPPORTS_RANDOM_FILL: bool = true;
}

impl Scalar for f64 {
    const NAME: &'static str = "FP64";
    const BYTES: usize = 8;
    const MANTISSA_DIGITS: u32 = 53;

    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
    #[inline]
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.gen::<f64>()
    }
}

impl Scalar for f32 {
    const NAME: &'static str = "FP32";
    const BYTES: usize = 4;
    const MANTISSA_DIGITS: u32 = 24;

    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f32::mul_add(self, a, b)
    }
    #[inline]
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.gen::<f32>()
    }
}

impl Scalar for F16 {
    const NAME: &'static str = "FP16";
    const BYTES: usize = 2;
    // Packed panels hold the f32 widening of each half value.
    const PACK_BYTES: usize = 4;
    const MANTISSA_DIGITS: u32 = 11;

    #[inline]
    fn zero() -> Self {
        F16::ZERO
    }
    #[inline]
    fn one() -> Self {
        F16::ONE
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        F16::from_f64(x)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        F16::to_f64(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        F16::mul_add(self, a, b)
    }
    #[inline]
    fn sample_uniform<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.gen::<F16>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exercise<T: Scalar>() {
        assert_eq!(T::zero() + T::one(), T::one());
        assert_eq!(T::one() * T::one(), T::one());
        assert_eq!(T::from_f64(2.0).to_f64(), 2.0);
        assert_eq!(
            T::from_f64(2.0)
                .mul_add(T::from_f64(3.0), T::one())
                .to_f64(),
            7.0
        );
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let x = T::sample_uniform(&mut rng).to_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_impl() {
        exercise::<f64>();
        assert_eq!(f64::NAME, "FP64");
        assert_eq!(f64::BYTES, 8);
    }

    #[test]
    fn f32_impl() {
        exercise::<f32>();
        assert_eq!(f32::NAME, "FP32");
        assert_eq!(f32::BYTES, 4);
    }

    #[test]
    fn f16_impl() {
        exercise::<F16>();
        assert_eq!(F16::NAME, "FP16");
        assert_eq!(F16::BYTES, 2);
        const { assert!(F16::SUPPORTS_RANDOM_FILL) };
    }

    #[test]
    fn pack_bytes_widen_only_for_f16() {
        assert_eq!(f64::PACK_BYTES, 8);
        assert_eq!(f32::PACK_BYTES, 4);
        assert_eq!(F16::PACK_BYTES, 4);
    }

    #[test]
    fn widening_is_exact_for_all_precisions() {
        // Values exactly representable at each precision must survive the
        // f64 round trip bit-for-bit.
        for v in [0.0, 0.5, 1.0, 1.5, 2048.0, -3.25] {
            assert_eq!(f64::from_f64(v).to_f64(), v);
            assert_eq!(f32::from_f64(v).to_f64(), v);
            assert_eq!(F16::from_f64(v).to_f64(), v);
        }
    }
}
