//! Parallel execution of the per-model kernels on the work-sharing
//! runtime.
//!
//! Coarse granularity (the paper's CPU strategy): the outer dimension of
//! `C` — rows for the row-major models, columns for Julia — is the
//! work-sharing index space, so each thread owns whole contiguous output
//! rows/columns. Fine granularity (the paper's GPU strategy) is also
//! provided for CPU execution as [`par_gemm_element_grid`]: one logical
//! task per element of `C`, mirroring the 2-D thread grid.

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::variants::CpuVariant;
use perfport_pool::{DisjointSlice, RegionStats, Schedule, ThreadPool};

/// Runs `C += A · B` in parallel using `variant`'s kernel and layout over
/// `pool` with the given loop `schedule`. Returns the region
/// instrumentation (imbalance, fork-join overhead).
///
/// # Panics
///
/// Panics on shape or layout mismatch (see
/// [`CpuVariant::run_chunk`]).
pub fn par_gemm<T: Scalar>(
    pool: &ThreadPool,
    variant: CpuVariant,
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T>,
    schedule: Schedule,
) -> RegionStats {
    assert_eq!(c.layout(), variant.layout(), "C layout mismatch");
    let shape = (c.rows(), c.cols());
    let mut sp = perfport_trace::span("gemm", "par_gemm");
    if sp.is_recording() {
        sp.arg("variant", variant.name());
        sp.arg("m", shape.0);
        sp.arg("n", shape.1);
        sp.arg("k", a.cols());
        sp.arg(
            "flops",
            crate::serial::gemm_flops(shape.0, shape.1, a.cols()),
        );
        sp.arg(
            "min_bytes",
            crate::serial::gemm_min_bytes(shape.0, shape.1, a.cols(), std::mem::size_of::<T>()),
        );
    }
    let extent = variant.parallel_extent(shape.0, shape.1);
    let ds = DisjointSlice::new(c.as_mut_slice());
    pool.parallel_for(extent, schedule, |_ctx, chunk| {
        variant.run_chunk(a, b, &ds, shape, chunk);
    })
}

/// Fine-granularity parallel GEMM: the flattened `m×n` element grid is the
/// index space and every element of `C` is one dot product, exactly like a
/// GPU thread in the paper's Fig. 3 kernels. Used to contrast coarse vs.
/// fine granularity on CPUs in the ablation benches.
pub fn par_gemm_element_grid<T: Scalar>(
    pool: &ThreadPool,
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T>,
    schedule: Schedule,
) -> RegionStats {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(a.rows(), c.rows(), "C rows must match A rows");
    assert_eq!(b.cols(), c.cols(), "C cols must match B cols");
    assert_eq!(a.layout(), c.layout(), "A/C layout mismatch");
    assert_eq!(b.layout(), c.layout(), "B/C layout mismatch");
    let (m, n, k) = (c.rows(), c.cols(), a.cols());
    let ds = DisjointSlice::new(c.as_mut_slice());
    let layout = a.layout();
    pool.parallel_for(m * n, schedule, |_ctx, chunk| {
        for idx in chunk.range() {
            let (i, j) = (idx / n, idx % n);
            let mut acc = T::zero();
            for l in 0..k {
                acc += a[(i, l)] * b[(l, j)];
            }
            // SAFETY: each linear element index is assigned to exactly one
            // chunk by the schedule.
            let slot = layout.index(m, n, i, j);
            unsafe {
                *ds.at(slot) += acc;
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Layout;
    use crate::serial::gemm_reference_f64;
    use perfport_half::F16;

    fn check_parallel<T: Scalar>(variant: CpuVariant, schedule: Schedule, tol: f64) {
        let pool = ThreadPool::new(4);
        let layout = variant.layout();
        let (m, k, n) = (33, 21, 29);
        let a = Matrix::<T>::random(m, k, layout, 5);
        let b = Matrix::<T>::random(k, n, layout, 6);
        let reference = gemm_reference_f64(&a, &b);
        let mut c = Matrix::<T>::zeros(m, n, layout);
        let stats = par_gemm(&pool, variant, &a, &b, &mut c, schedule);
        let cast: Matrix<f64> = c.cast();
        let err = cast.max_abs_diff(&reference);
        assert!(err < tol, "{variant} {schedule:?}: error {err}");
        assert_eq!(stats.total_items(), variant.parallel_extent(m, n));
    }

    #[test]
    fn parallel_matches_reference_all_variants_f64() {
        for v in CpuVariant::ALL {
            check_parallel::<f64>(v, Schedule::StaticBlock, 1e-12);
        }
    }

    #[test]
    fn parallel_matches_reference_all_schedules() {
        for schedule in [
            Schedule::StaticBlock,
            Schedule::StaticChunked { chunk: 2 },
            Schedule::Dynamic { chunk: 3 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            check_parallel::<f64>(CpuVariant::OpenMpC, schedule, 1e-12);
            check_parallel::<f64>(CpuVariant::JuliaThreads, schedule, 1e-12);
        }
    }

    #[test]
    fn parallel_matches_reference_f32_and_f16() {
        check_parallel::<f32>(CpuVariant::KokkosLambda, Schedule::StaticBlock, 1e-3);
        check_parallel::<F16>(CpuVariant::NumbaPrange, Schedule::StaticBlock, 0.5);
    }

    #[test]
    fn parallel_equals_serial_bitwise_f64() {
        // The parallel decomposition must not change the per-element
        // summation order for the row/column-parallel variants, so results
        // are bit-identical to serial execution.
        let pool = ThreadPool::new(7);
        for v in CpuVariant::ALL {
            let layout = v.layout();
            let (m, k, n) = (24, 16, 18);
            let a = Matrix::<f64>::random(m, k, layout, 7);
            let b = Matrix::<f64>::random(k, n, layout, 8);
            let mut c_serial = Matrix::<f64>::zeros(m, n, layout);
            v.run_serial(&a, &b, &mut c_serial);
            let mut c_par = Matrix::<f64>::zeros(m, n, layout);
            par_gemm(&pool, v, &a, &b, &mut c_par, Schedule::Dynamic { chunk: 1 });
            assert_eq!(c_serial, c_par, "{v} parallel result differs bitwise");
        }
    }

    #[test]
    fn element_grid_matches_reference() {
        let pool = ThreadPool::new(4);
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let (m, k, n) = (19, 11, 23);
            let a = Matrix::<f64>::random(m, k, layout, 9);
            let b = Matrix::<f64>::random(k, n, layout, 10);
            let reference = gemm_reference_f64(&a, &b);
            let mut c = Matrix::<f64>::zeros(m, n, layout);
            let stats =
                par_gemm_element_grid(&pool, &a, &b, &mut c, Schedule::Dynamic { chunk: 16 });
            assert!(c.max_abs_diff(&reference) < 1e-12);
            assert_eq!(stats.total_items(), m * n);
        }
    }

    #[test]
    fn stats_reflect_balanced_static_schedule() {
        let pool = ThreadPool::new(4);
        let v = CpuVariant::OpenMpC;
        let a = Matrix::<f64>::random(64, 8, Layout::RowMajor, 1);
        let b = Matrix::<f64>::random(8, 8, Layout::RowMajor, 2);
        let mut c = Matrix::<f64>::zeros(64, 8, Layout::RowMajor);
        let stats = par_gemm(&pool, v, &a, &b, &mut c, Schedule::StaticBlock);
        assert_eq!(stats.items_per_thread, vec![16; 4]);
        assert!((stats.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_by_one_matrix() {
        let pool = ThreadPool::new(2);
        let a = Matrix::<f64>::from_fn(1, 1, Layout::RowMajor, |_, _| 3.0);
        let b = Matrix::<f64>::from_fn(1, 1, Layout::RowMajor, |_, _| 4.0);
        let mut c = Matrix::<f64>::zeros(1, 1, Layout::RowMajor);
        par_gemm(
            &pool,
            CpuVariant::OpenMpC,
            &a,
            &b,
            &mut c,
            Schedule::StaticBlock,
        );
        assert_eq!(c[(0, 0)], 12.0);
    }
}
