//! Dense matrices with explicit storage layout.
//!
//! Storage order is a first-class citizen here because it is the reason
//! the paper's per-model loop nests differ: NumPy and C default to
//! row-major, Julia to column-major, and each hand-rolled kernel streams
//! along the contiguous dimension of its host language.

use crate::scalar::Scalar;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Memory order of a [`Matrix`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// C / NumPy order: element `(i, j)` lives at `i * cols + j`.
    #[default]
    RowMajor,
    /// Fortran / Julia order: element `(i, j)` lives at `j * rows + i`.
    ColMajor,
}

impl Layout {
    /// Linear index of `(i, j)` in a `rows × cols` matrix.
    #[inline]
    pub fn index(self, rows: usize, cols: usize, i: usize, j: usize) -> usize {
        match self {
            Layout::RowMajor => i * cols + j,
            Layout::ColMajor => j * rows + i,
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layout::RowMajor => write!(f, "row-major"),
            Layout::ColMajor => write!(f, "col-major"),
        }
    }
}

/// A dense `rows × cols` matrix in contiguous storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    layout: Layout,
    data: Vec<T>,
}

impl<T: Scalar> Matrix<T> {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize, layout: Layout) -> Self {
        Matrix {
            rows,
            cols,
            layout,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// A matrix of ones — the fallback the paper uses for Numba FP16 where
    /// random generation is unavailable.
    pub fn ones(rows: usize, cols: usize, layout: Layout) -> Self {
        Matrix {
            rows,
            cols,
            layout,
            data: vec![T::one(); rows * cols],
        }
    }

    /// Builds a matrix from `f(i, j)`.
    pub fn from_fn(
        rows: usize,
        cols: usize,
        layout: Layout,
        f: impl Fn(usize, usize) -> T,
    ) -> Self {
        let mut m = Matrix::zeros(rows, cols, layout);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// A matrix of uniform `[0, 1)` samples from a deterministic seed —
    /// the paper's input distribution, made reproducible.
    pub fn random(rows: usize, cols: usize, layout: Layout, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| T::sample_uniform(&mut rng))
            .collect();
        Matrix {
            rows,
            cols,
            layout,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Storage layout.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Linear index of `(i, j)` under this matrix's layout.
    #[inline]
    pub fn offset(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.rows && j < self.cols);
        self.layout.index(self.rows, self.cols, i, j)
    }

    /// Backing storage, in layout order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable backing storage, in layout order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Returns the same matrix re-stored in `layout` (a copy when the
    /// layout changes, element values unchanged).
    pub fn to_layout(&self, layout: Layout) -> Matrix<T> {
        if layout == self.layout {
            return self.clone();
        }
        Matrix::from_fn(self.rows, self.cols, layout, |i, j| self[(i, j)])
    }

    /// Transposed copy (keeps the layout tag).
    pub fn transposed(&self) -> Matrix<T> {
        Matrix::from_fn(self.cols, self.rows, self.layout, |i, j| self[(j, i)])
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(T::zero());
    }

    /// Converts elementwise into another precision.
    pub fn cast<U: Scalar>(&self) -> Matrix<U> {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            layout: self.layout,
            data: self.data.iter().map(|x| U::from_f64(x.to_f64())).collect(),
        }
    }

    /// Largest absolute difference against another matrix of equal shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                let d = (self[(i, j)].to_f64() - other[(i, j)].to_f64()).abs();
                if d > worst {
                    worst = d;
                }
            }
        }
        worst
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds"
        );
        &self.data[self.layout.index(self.rows, self.cols, i, j)]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds"
        );
        &mut self.data[self.layout.index(self.rows, self.cols, i, j)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfport_half::F16;

    #[test]
    fn layout_linearisation() {
        assert_eq!(Layout::RowMajor.index(3, 4, 1, 2), 6);
        assert_eq!(Layout::ColMajor.index(3, 4, 1, 2), 7);
        assert_eq!(Layout::RowMajor.index(3, 4, 0, 0), 0);
        assert_eq!(Layout::ColMajor.index(3, 4, 2, 3), 11);
    }

    #[test]
    fn indexing_round_trips_in_both_layouts() {
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let m = Matrix::<f64>::from_fn(5, 7, layout, |i, j| (i * 100 + j) as f64);
            for i in 0..5 {
                for j in 0..7 {
                    assert_eq!(m[(i, j)], (i * 100 + j) as f64);
                }
            }
        }
    }

    #[test]
    fn row_major_storage_is_row_contiguous() {
        let m = Matrix::<f32>::from_fn(2, 3, Layout::RowMajor, |i, j| (i * 3 + j) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn col_major_storage_is_column_contiguous() {
        let m = Matrix::<f32>::from_fn(2, 3, Layout::ColMajor, |i, j| (i * 3 + j) as f32);
        assert_eq!(m.as_slice(), &[0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
    }

    #[test]
    fn to_layout_preserves_values() {
        let m = Matrix::<f64>::random(4, 6, Layout::RowMajor, 42);
        let c = m.to_layout(Layout::ColMajor);
        assert_eq!(c.layout(), Layout::ColMajor);
        assert_eq!(m.max_abs_diff(&c.to_layout(Layout::RowMajor)), 0.0);
        for i in 0..4 {
            for j in 0..6 {
                assert_eq!(m[(i, j)], c[(i, j)]);
            }
        }
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Matrix::<f32>::random(8, 8, Layout::RowMajor, 7);
        let b = Matrix::<f32>::random(8, 8, Layout::RowMajor, 7);
        let c = Matrix::<f32>::random(8, 8, Layout::RowMajor, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn ones_and_zeros() {
        let z = Matrix::<F16>::zeros(3, 3, Layout::RowMajor);
        assert!(z.as_slice().iter().all(|x| x.to_f64() == 0.0));
        let o = Matrix::<F16>::ones(3, 3, Layout::RowMajor);
        assert!(o.as_slice().iter().all(|x| x.to_f64() == 1.0));
    }

    #[test]
    fn transpose() {
        let m = Matrix::<f64>::from_fn(2, 3, Layout::RowMajor, |i, j| (10 * i + j) as f64);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(m[(i, j)], t[(j, i)]);
            }
        }
    }

    #[test]
    fn cast_between_precisions() {
        let m = Matrix::<f64>::from_fn(2, 2, Layout::RowMajor, |i, j| 0.5 + (i + j) as f64);
        let h: Matrix<F16> = m.cast();
        assert_eq!(h[(0, 0)].to_f64(), 0.5);
        assert_eq!(h[(1, 1)].to_f64(), 2.5);
        let back: Matrix<f64> = h.cast();
        assert_eq!(m.max_abs_diff(&back), 0.0);
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = Matrix::<f32>::random(3, 3, Layout::ColMajor, 1);
        m.fill_zero();
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let m = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        let _ = m[(2, 0)];
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn diff_shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(3, 2, Layout::RowMajor);
        let _ = a.max_abs_diff(&b);
    }
}
