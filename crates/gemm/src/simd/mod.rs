//! Explicit SIMD microkernels with runtime ISA dispatch.
//!
//! The tuned kernel's inner loop ([`crate::tuned`]) historically relied on
//! LLVM autovectorising a const-generic scalar tile. That leaves measurable
//! headroom against a hand-vectorised vendor BLAS, chiefly because the
//! portable tile must avoid [`Scalar::mul_add`] (on targets without an FMA
//! instruction it lowers to a libm call), so it pays two roundings and two
//! instructions per multiply-accumulate. This module provides explicit
//! `std::arch` microkernels that issue genuine FMA vector instructions:
//!
//! * **x86-64 AVX2+FMA** — 256-bit lanes, `f64`/`f32` ([`x86`]);
//! * **x86-64 AVX-512F** — 512-bit lanes for `f64` (the `f32` path keeps
//!   256-bit kernels: none of the supported [`crate::tuned::TileShape`]s reaches the 16
//!   lanes a 512-bit `f32` vector needs, and 256-bit operation also avoids
//!   the classic AVX-512 frequency-license penalty on many parts);
//! * **aarch64 NEON** — 128-bit lanes, `f64`/`f32`, compiled only on
//!   aarch64 (the `neon` submodule);
//! * **portable** — the original autovectorized scalar tile, always
//!   available and always the reference ([`portable`]).
//!
//! # Dispatch contract
//!
//! The ISA is chosen **once per process** — [`active`] probes the CPU via
//! `is_x86_feature_detected!` (resp. the aarch64 equivalent) on first use
//! and caches the verdict — so every tuned GEMM in a process, serial or
//! parallel, runs the *same* microkernel. That preserves the tuned
//! kernel's serial≡parallel bitwise guarantee *per dispatched kernel*:
//! results never depend on which worker owns a row block, only (across
//! ISAs) on the kernel the whole process dispatched to.
//!
//! A SIMD kernel is used only when the register tile qualifies: the tile
//! width `NR` must be a multiple of the vector lane count for the element
//! type (e.g. 4 lanes for `f64` on AVX2). Non-qualifying tiles — including
//! everything the ablation sweeps beyond the default — fall back to the
//! portable tile via [`select`]. Ragged edge tiles need no special case at
//! this level: the packing routines zero-pad micropanels to full `MR`/`NR`
//! extent, so a microkernel always computes a full tile.
//!
//! # FMA-contraction caveat
//!
//! The SIMD kernels accumulate with fused multiply-add: each
//! multiply-accumulate rounds **once**, where the portable kernel rounds
//! twice. Per element of `C` the accumulation *order* is identical (the
//! `Kc` blocking fixes it), but the roundings differ, so SIMD and portable
//! results — and results across different ISAs — are not bitwise equal.
//! The difference is bounded by the forward-error tolerance in
//! [`crate::verify::Tolerance::for_gemm`] (FMA can only reduce the error
//! of each partial product), which the cross-kernel property tests assert
//! for every supported tile shape. Anything comparing results across
//! *processes* (snapshot diffs, committed baselines) must therefore treat
//! the dispatched ISA as part of the run's provenance; `perfport-bench`
//! records it in every run manifest.
//!
//! # Forcing a kernel: `PERFPORT_SIMD`
//!
//! The `PERFPORT_SIMD` environment variable overrides detection for A/B
//! runs: `portable` forces the fallback tile, `avx2` / `avx512` / `neon`
//! request a specific ISA (honoured only if the CPU supports it — an
//! unavailable request degrades to the best available ISA with a note on
//! stderr, never to an illegal-instruction fault, and the rejected
//! request is kept queryable via [`rejected_override`] so run manifests
//! can record it), and `auto` (or unset) detects. An *unknown* value is
//! a hard error: the process aborts listing the valid names, because a
//! typo'd override that silently fell back to detection would label an
//! A/B run with the wrong kernel and produce misattributed numbers. The
//! decision is queryable via [`active`] and is stamped into bench
//! manifests and trace metadata.
//!
//! ```
//! use perfport_gemm::simd::{self, Isa};
//!
//! // Whatever the process dispatched to, it is one of the known ISAs and
//! // it is available on this CPU.
//! let isa = simd::active();
//! assert!(isa.available());
//! assert!(Isa::ALL.contains(&isa));
//! ```

#[cfg(target_arch = "aarch64")]
pub mod neon;
#[cfg(target_arch = "x86_64")]
pub mod x86;

use crate::scalar::Scalar;
use std::any::TypeId;
use std::sync::OnceLock;

/// The instruction sets the dispatcher can select between.
///
/// Variants for foreign architectures exist on every build (so manifests
/// and diffs can always *name* them) but are only ever [`available`]
/// (and thus dispatched) on their own architecture.
///
/// [`available`]: Isa::available
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// x86-64 AVX-512F: 512-bit lanes for `f64`, 256-bit for `f32`.
    Avx512,
    /// x86-64 AVX2 + FMA: 256-bit lanes.
    Avx2,
    /// aarch64 NEON/ASIMD: 128-bit lanes.
    Neon,
    /// The autovectorized const-generic scalar tile; every target.
    Portable,
}

impl Isa {
    /// Every ISA the dispatcher knows, best first. [`detect`] returns the
    /// first available entry, so order encodes preference.
    ///
    /// [`detect`]: Isa::detect
    pub const ALL: [Isa; 4] = [Isa::Avx512, Isa::Avx2, Isa::Neon, Isa::Portable];

    /// The identifier used in manifests, traces, and `PERFPORT_SIMD`.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Avx512 => "avx512",
            Isa::Avx2 => "avx2",
            Isa::Neon => "neon",
            Isa::Portable => "portable",
        }
    }

    /// Parses a [`Isa::name`] string (as accepted by `PERFPORT_SIMD`).
    pub fn from_name(name: &str) -> Option<Isa> {
        Isa::ALL.into_iter().find(|isa| isa.name() == name)
    }

    /// Whether this CPU can execute this ISA's microkernels.
    pub fn available(self) -> bool {
        match self {
            Isa::Portable => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "aarch64")]
            Isa::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            _ => false,
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            _ => false,
        }
    }

    /// The best ISA this CPU supports (ignores the environment override).
    pub fn detect() -> Isa {
        Isa::ALL
            .into_iter()
            .find(|isa| isa.available())
            .unwrap_or(Isa::Portable)
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The outcome of resolving the `PERFPORT_SIMD` override against what
/// the CPU supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Resolution {
    /// The ISA the process dispatches to.
    isa: Isa,
    /// A valid override that named an ISA this CPU cannot execute; the
    /// request was rejected and `isa` is the detected fallback. Recorded
    /// so run manifests can disclose that the override was *not* honoured.
    rejected: Option<Isa>,
}

/// Resolves the `PERFPORT_SIMD` override against what the CPU supports.
/// Separated from [`active`] so it is testable without process-global
/// state; `quiet` suppresses the degradation note. An unrecognised value
/// is an error (the caller aborts): silently detecting past a typo would
/// misattribute every number the run produces.
fn resolve(request: Option<&str>, quiet: bool) -> Result<Resolution, String> {
    let detected = Isa::detect();
    let honoured = |isa| Resolution {
        isa,
        rejected: None,
    };
    let Some(request) = request else {
        return Ok(honoured(detected));
    };
    let request = request.trim();
    if request.is_empty() || request == "auto" {
        return Ok(honoured(detected));
    }
    match Isa::from_name(request) {
        Some(isa) if isa.available() => Ok(honoured(isa)),
        Some(isa) => {
            if !quiet {
                eprintln!(
                    "perfport-gemm: PERFPORT_SIMD={isa} is not available on this CPU; \
                     using {detected}"
                );
            }
            Ok(Resolution {
                isa: detected,
                rejected: Some(isa),
            })
        }
        None => Err(format!(
            "unknown PERFPORT_SIMD value '{request}' \
             (expected auto|portable|avx2|avx512|neon)"
        )),
    }
}

fn resolution() -> Resolution {
    static ACTIVE: OnceLock<Resolution> = OnceLock::new();
    *ACTIVE.get_or_init(
        || match resolve(std::env::var("PERFPORT_SIMD").ok().as_deref(), false) {
            Ok(r) => r,
            Err(msg) => {
                // Fail fast: a typo'd A/B override must never silently
                // produce numbers attributed to the wrong kernel.
                eprintln!("perfport-gemm: {msg}");
                std::process::exit(2);
            }
        },
    )
}

/// The ISA every tuned GEMM in this process dispatches to.
///
/// Decided once, on first call: the `PERFPORT_SIMD` override if set and
/// available, otherwise the best ISA the CPU supports. An unknown
/// `PERFPORT_SIMD` value aborts the process with exit status 2. See the
/// module docs for the contract this one-shot decision upholds.
pub fn active() -> Isa {
    resolution().isa
}

/// The `PERFPORT_SIMD` override this process rejected because the named
/// ISA is not executable on this CPU (`None` when no override was given
/// or it was honoured). [`active`] is the detected fallback in that
/// case; manifests record both so A/B runs stay attributable.
pub fn rejected_override() -> Option<Isa> {
    resolution().rejected
}

/// A microkernel: `kb`-deep contraction of zero-padded `MR`-row /
/// `NR`-column micropanels into an `MR×NR` accumulator tile.
///
/// `ap` holds `kb` groups of `MR` consecutive `A` values, `bp` holds `kb`
/// groups of `NR` consecutive `B` values (the packed layouts produced in
/// `crate::tuned`). Implementations panic if a panel is shorter than the
/// contraction requires.
pub type Microkernel<T, const MR: usize, const NR: usize> = fn(usize, &[T], &[T]) -> [[T; NR]; MR];

/// The portable reference microkernel: an autovectorized scalar tile.
///
/// Products are accumulated with separate multiply and add (not
/// [`Scalar::mul_add`]) because on baseline targets without an FMA
/// instruction `mul_add` lowers to a libm call that defeats
/// vectorisation. With `MR`/`NR` known at compile time LLVM unrolls the
/// tile fully and keeps the accumulator in vector registers.
pub fn portable<T: Scalar, const MR: usize, const NR: usize>(
    kb: usize,
    ap: &[T],
    bp: &[T],
) -> [[T; NR]; MR] {
    assert!(
        ap.len() >= kb * MR && bp.len() >= kb * NR,
        "panel too short"
    );
    let mut acc = [[T::zero(); NR]; MR];
    for p in 0..kb {
        let arow = &ap[p * MR..p * MR + MR];
        let brow = &bp[p * NR..p * NR + NR];
        for r in 0..MR {
            let av = arow[r];
            for c in 0..NR {
                acc[r][c] += av * brow[c];
            }
        }
    }
    acc
}

/// Reinterprets a concrete microkernel as the generic signature, checked
/// by the caller's `TypeId` comparison.
///
/// # Safety
///
/// `T` and `U` must be the same type (the function pointer is only
/// transmuted between two spellings of one signature).
unsafe fn cast_kernel<T: Scalar, U: Scalar, const MR: usize, const NR: usize>(
    f: Microkernel<U, MR, NR>,
) -> Microkernel<T, MR, NR> {
    debug_assert_eq!(TypeId::of::<T>(), TypeId::of::<U>());
    // SAFETY: caller guarantees T == U, so both function-pointer types
    // name the identical ABI.
    unsafe { std::mem::transmute::<Microkernel<U, MR, NR>, Microkernel<T, MR, NR>>(f) }
}

/// The native microkernel `isa` provides for element type `T` and tile
/// `MR×NR`, or `None` when the combination has no native implementation
/// (foreign ISA, unsupported lane multiple, or the software-half type,
/// which the tuned driver widens to `f32` before it ever reaches a
/// microkernel).
fn native<T: Scalar, const MR: usize, const NR: usize>(isa: Isa) -> Option<Microkernel<T, MR, NR>> {
    let is_f64 = TypeId::of::<T>() == TypeId::of::<f64>();
    let is_f32 = TypeId::of::<T>() == TypeId::of::<f32>();
    #[cfg(target_arch = "x86_64")]
    {
        if is_f64 {
            if isa == Isa::Avx512 && NR.is_multiple_of(8) {
                // SAFETY: T == f64.
                return Some(unsafe { cast_kernel(x86::f64_avx512::<MR, NR>) });
            }
            if matches!(isa, Isa::Avx512 | Isa::Avx2) && NR.is_multiple_of(4) {
                // SAFETY: T == f64. (AVX-512F implies AVX2+FMA, so the
                // 256-bit kernel is legal under either verdict.)
                return Some(unsafe { cast_kernel(x86::f64_avx2::<MR, NR>) });
            }
        }
        if is_f32 && matches!(isa, Isa::Avx512 | Isa::Avx2) && NR.is_multiple_of(8) {
            // SAFETY: T == f32.
            return Some(unsafe { cast_kernel(x86::f32_avx2::<MR, NR>) });
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if isa == Isa::Neon {
            if is_f64 && NR.is_multiple_of(2) {
                // SAFETY: T == f64.
                return Some(unsafe { cast_kernel(neon::f64_neon::<MR, NR>) });
            }
            if is_f32 && NR.is_multiple_of(4) {
                // SAFETY: T == f32.
                return Some(unsafe { cast_kernel(neon::f32_neon::<MR, NR>) });
            }
        }
    }
    let _ = (is_f64, is_f32, isa);
    None
}

/// Selects the microkernel `isa` provides for element type `T` and tile
/// `MR×NR`, falling back to [`portable`] whenever no native kernel exists
/// for the combination (see the module docs for the qualification rules).
///
/// The returned function is safe to call only because selection is gated
/// on [`Isa::available`]: callers must pass an available ISA (as
/// [`active`] guarantees), and the debug assertion enforces it.
pub fn select<T: Scalar, const MR: usize, const NR: usize>(isa: Isa) -> Microkernel<T, MR, NR> {
    debug_assert!(isa.available(), "dispatching to unavailable ISA {isa}");
    native::<T, MR, NR>(isa).unwrap_or(portable::<T, MR, NR>)
}

/// Whether `select::<T, MR, NR>(isa)` resolves to a native SIMD kernel
/// (as opposed to the portable fallback). Drives test coverage and the
/// "was SIMD actually used" honesty checks in the bench harness.
pub fn is_native<T: Scalar, const MR: usize, const NR: usize>(isa: Isa) -> bool {
    native::<T, MR, NR>(isa).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for isa in Isa::ALL {
            assert_eq!(Isa::from_name(isa.name()), Some(isa));
            assert_eq!(isa.to_string(), isa.name());
        }
        assert_eq!(Isa::from_name("sse9"), None);
    }

    #[test]
    fn detection_is_sane() {
        // Portable is always available; detect() therefore always finds
        // something, and whatever it finds must be executable here.
        assert!(Isa::Portable.available());
        assert!(Isa::detect().available());
        assert!(active().available());
        // Foreign-architecture ISAs are never available.
        #[cfg(target_arch = "x86_64")]
        assert!(!Isa::Neon.available());
        #[cfg(target_arch = "aarch64")]
        {
            assert!(!Isa::Avx2.available());
            assert!(!Isa::Avx512.available());
        }
    }

    #[test]
    fn env_override_resolution() {
        let detected = Isa::detect();
        let ok = |r: Result<Resolution, String>| r.expect("must resolve");
        assert_eq!(ok(resolve(None, true)).isa, detected);
        assert_eq!(ok(resolve(Some("auto"), true)).isa, detected);
        assert_eq!(ok(resolve(Some(""), true)).isa, detected);
        assert_eq!(ok(resolve(None, true)).rejected, None);
        let portable = ok(resolve(Some("portable"), true));
        assert_eq!(portable.isa, Isa::Portable);
        assert_eq!(portable.rejected, None);
        // An unknown value is a hard error that names the valid spellings
        // (a typo must never silently fall back to detection).
        let err = resolve(Some("avx9000"), true).expect_err("junk must be rejected");
        assert!(err.contains("avx9000"), "{err}");
        for name in ["auto", "portable", "avx2", "avx512", "neon"] {
            assert!(err.contains(name), "{err} missing {name}");
        }
        // A valid but unavailable request degrades to detection — never a
        // fault — and records what it rejected.
        #[cfg(target_arch = "x86_64")]
        {
            let r = ok(resolve(Some("neon"), true));
            assert_eq!(r.isa, detected);
            assert_eq!(r.rejected, Some(Isa::Neon));
        }
        #[cfg(target_arch = "aarch64")]
        {
            let r = ok(resolve(Some("avx2"), true));
            assert_eq!(r.isa, detected);
            assert_eq!(r.rejected, Some(Isa::Avx2));
        }
    }

    #[test]
    fn portable_kernel_computes_the_tile() {
        // kb=2 contraction with hand-checkable values.
        let ap = [1.0f64, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0];
        let bp = [1.0f64, 0.5, 0.25, 0.125, 2.0, 1.0, 0.5, 0.25];
        let acc = portable::<f64, 4, 4>(2, &ap, &bp);
        // row 0: 1*b0 + 10*b1
        assert_eq!(acc[0], [21.0, 10.5, 5.25, 2.625]);
        // kb=0 yields the zero tile.
        let zero = portable::<f64, 4, 4>(0, &[], &[]);
        assert_eq!(zero, [[0.0; 4]; 4]);
    }

    #[test]
    fn selection_respects_lane_multiples() {
        // Portable ISA always selects the portable kernel.
        assert!(!is_native::<f64, 4, 4>(Isa::Portable));
        assert!(!is_native::<f32, 4, 8>(Isa::Portable));
        #[cfg(target_arch = "x86_64")]
        {
            if Isa::Avx2.available() {
                // f64 tiles are all 4-lane multiples; f32 needs NR % 8.
                assert!(is_native::<f64, 4, 4>(Isa::Avx2));
                assert!(is_native::<f64, 8, 4>(Isa::Avx2));
                assert!(is_native::<f32, 4, 8>(Isa::Avx2));
                assert!(!is_native::<f32, 4, 4>(Isa::Avx2));
                // The software-half type never gets a native kernel (the
                // tuned driver widens it to f32 first).
                assert!(!is_native::<perfport_half::F16, 4, 8>(Isa::Avx2));
            }
            if Isa::Avx512.available() {
                assert!(is_native::<f64, 8, 8>(Isa::Avx512));
                assert!(is_native::<f64, 4, 4>(Isa::Avx512));
                assert!(is_native::<f32, 8, 8>(Isa::Avx512));
            }
        }
        #[cfg(target_arch = "aarch64")]
        if Isa::Neon.available() {
            assert!(is_native::<f64, 4, 4>(Isa::Neon));
            assert!(is_native::<f32, 4, 8>(Isa::Neon));
        }
    }

    #[test]
    fn native_kernels_match_portable_on_exact_products() {
        // Products of small integers are exact at every precision, so
        // native and portable kernels must agree bit-for-bit on them
        // (FMA contraction cannot change an exact result).
        for isa in Isa::ALL.into_iter().filter(|i| i.available()) {
            let kb = 7;
            let ap64: Vec<f64> = (0..kb * 8).map(|i| ((i % 11) as f64) - 5.0).collect();
            let bp64: Vec<f64> = (0..kb * 8).map(|i| ((i % 7) as f64) * 0.5).collect();
            let native = select::<f64, 8, 8>(isa)(kb, &ap64, &bp64);
            let reference = portable::<f64, 8, 8>(kb, &ap64, &bp64);
            assert_eq!(native, reference, "{isa} f64");
            let ap32: Vec<f32> = ap64.iter().map(|&x| x as f32).collect();
            let bp32: Vec<f32> = bp64.iter().map(|&x| x as f32).collect();
            let native = select::<f32, 8, 8>(isa)(kb, &ap32, &bp32);
            let reference = portable::<f32, 8, 8>(kb, &ap32, &bp32);
            assert_eq!(native, reference, "{isa} f32");
        }
    }

    #[test]
    #[should_panic(expected = "panel too short")]
    fn short_panels_panic() {
        let _ = portable::<f64, 4, 4>(3, &[0.0; 4], &[0.0; 16]);
    }
}
