//! x86-64 microkernels: AVX2+FMA (256-bit) and AVX-512F (512-bit).
//!
//! Each kernel is const-generic over the register tile so LLVM fully
//! unrolls the per-`p` body: the `MR×NR` accumulator tile lives in `MR ×
//! NR/W` vector registers (`W` lanes each) across the whole `kb`
//! contraction, each step broadcasting one `A` value per row and issuing
//! one fused multiply-add per accumulator register. All loads are
//! unaligned-tolerant (`loadu`): micropanel starts are 64-byte aligned,
//! but interior `p·MR`/`p·NR` offsets need not be a vector multiple.
//!
//! The wrappers at the bottom are the only public surface; they bound-
//! check the panels and confine the `unsafe` needed to call a
//! `#[target_feature]` function. Their safety rests on the dispatch
//! contract in [`crate::simd`]: `select` hands these wrappers out only
//! after the matching CPU feature was detected at runtime.

use std::arch::x86_64::*;

/// Largest `NR/W` the supported tile set produces (`NR ≤ 8`, `W ≥ 4`),
/// sizing the fixed per-row vector arrays below. Unused high slots are
/// dead code the unroller deletes.
const MAX_VECS: usize = 2;

/// `f64` tile on 256-bit AVX2 lanes with FMA accumulation. `NR` must be
/// a multiple of 4 (checked by the caller via `debug_assert`; the public
/// wrapper's dispatch conditions guarantee it).
///
/// # Safety
///
/// Requires AVX2 and FMA at runtime; `ap`/`bp` must hold at least
/// `kb*MR` / `kb*NR` elements (the wrapper asserts this).
#[target_feature(enable = "avx2,fma")]
unsafe fn kernel_f64_avx2<const MR: usize, const NR: usize>(
    kb: usize,
    ap: &[f64],
    bp: &[f64],
) -> [[f64; NR]; MR] {
    const W: usize = 4;
    debug_assert!(NR.is_multiple_of(W) && NR / W <= MAX_VECS);
    let nv = NR / W;
    let mut acc = [[_mm256_setzero_pd(); MAX_VECS]; MR];
    let a = ap.as_ptr();
    let b = bp.as_ptr();
    for p in 0..kb {
        let mut bv = [_mm256_setzero_pd(); MAX_VECS];
        for (j, v) in bv.iter_mut().enumerate().take(nv) {
            *v = _mm256_loadu_pd(b.add(p * NR + j * W));
        }
        for (r, row) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_pd(*a.add(p * MR + r));
            for j in 0..nv {
                row[j] = _mm256_fmadd_pd(av, bv[j], row[j]);
            }
        }
    }
    let mut out = [[0.0f64; NR]; MR];
    for (row, accr) in out.iter_mut().zip(&acc) {
        for (j, &v) in accr.iter().enumerate().take(nv) {
            _mm256_storeu_pd(row.as_mut_ptr().add(j * W), v);
        }
    }
    out
}

/// `f32` tile on 256-bit AVX2 lanes with FMA accumulation; `NR` must be
/// a multiple of 8. Also the `f32` kernel under an AVX-512 verdict: none
/// of the supported tiles reaches 16 lanes, and 256-bit operation avoids
/// the AVX-512 frequency license on many parts.
///
/// # Safety
///
/// Requires AVX2 and FMA at runtime; `ap`/`bp` must hold at least
/// `kb*MR` / `kb*NR` elements.
#[target_feature(enable = "avx2,fma")]
unsafe fn kernel_f32_avx2<const MR: usize, const NR: usize>(
    kb: usize,
    ap: &[f32],
    bp: &[f32],
) -> [[f32; NR]; MR] {
    const W: usize = 8;
    debug_assert!(NR.is_multiple_of(W) && NR / W <= MAX_VECS);
    let nv = NR / W;
    let mut acc = [[_mm256_setzero_ps(); MAX_VECS]; MR];
    let a = ap.as_ptr();
    let b = bp.as_ptr();
    for p in 0..kb {
        let mut bv = [_mm256_setzero_ps(); MAX_VECS];
        for (j, v) in bv.iter_mut().enumerate().take(nv) {
            *v = _mm256_loadu_ps(b.add(p * NR + j * W));
        }
        for (r, row) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*a.add(p * MR + r));
            for j in 0..nv {
                row[j] = _mm256_fmadd_ps(av, bv[j], row[j]);
            }
        }
    }
    let mut out = [[0.0f32; NR]; MR];
    for (row, accr) in out.iter_mut().zip(&acc) {
        for (j, &v) in accr.iter().enumerate().take(nv) {
            _mm256_storeu_ps(row.as_mut_ptr().add(j * W), v);
        }
    }
    out
}

/// `f64` tile on 512-bit AVX-512F lanes; `NR` must be a multiple of 8,
/// so each accumulator row is exactly one zmm register for the `8×8`
/// default tile.
///
/// # Safety
///
/// Requires AVX-512F at runtime; `ap`/`bp` must hold at least `kb*MR` /
/// `kb*NR` elements.
#[target_feature(enable = "avx512f")]
unsafe fn kernel_f64_avx512<const MR: usize, const NR: usize>(
    kb: usize,
    ap: &[f64],
    bp: &[f64],
) -> [[f64; NR]; MR] {
    const W: usize = 8;
    debug_assert!(NR.is_multiple_of(W) && NR / W <= MAX_VECS);
    let nv = NR / W;
    let mut acc = [[_mm512_setzero_pd(); MAX_VECS]; MR];
    let a = ap.as_ptr();
    let b = bp.as_ptr();
    for p in 0..kb {
        let mut bv = [_mm512_setzero_pd(); MAX_VECS];
        for (j, v) in bv.iter_mut().enumerate().take(nv) {
            *v = _mm512_loadu_pd(b.add(p * NR + j * W));
        }
        for (r, row) in acc.iter_mut().enumerate() {
            let av = _mm512_set1_pd(*a.add(p * MR + r));
            for j in 0..nv {
                row[j] = _mm512_fmadd_pd(av, bv[j], row[j]);
            }
        }
    }
    let mut out = [[0.0f64; NR]; MR];
    for (row, accr) in out.iter_mut().zip(&acc) {
        for (j, &v) in accr.iter().enumerate().take(nv) {
            _mm512_storeu_pd(row.as_mut_ptr().add(j * W), v);
        }
    }
    out
}

/// Safe entry for the AVX2+FMA `f64` kernel (see [`crate::simd::select`]
/// for when it is handed out).
pub fn f64_avx2<const MR: usize, const NR: usize>(
    kb: usize,
    ap: &[f64],
    bp: &[f64],
) -> [[f64; NR]; MR] {
    assert!(
        ap.len() >= kb * MR && bp.len() >= kb * NR,
        "panel too short"
    );
    // SAFETY: only reachable through `simd::select`, which returns this
    // entry only under an ISA verdict that detected AVX2+FMA; panel
    // bounds were just asserted.
    unsafe { kernel_f64_avx2::<MR, NR>(kb, ap, bp) }
}

/// Safe entry for the AVX2+FMA `f32` kernel.
pub fn f32_avx2<const MR: usize, const NR: usize>(
    kb: usize,
    ap: &[f32],
    bp: &[f32],
) -> [[f32; NR]; MR] {
    assert!(
        ap.len() >= kb * MR && bp.len() >= kb * NR,
        "panel too short"
    );
    // SAFETY: as for `f64_avx2`.
    unsafe { kernel_f32_avx2::<MR, NR>(kb, ap, bp) }
}

/// Safe entry for the AVX-512F `f64` kernel.
pub fn f64_avx512<const MR: usize, const NR: usize>(
    kb: usize,
    ap: &[f64],
    bp: &[f64],
) -> [[f64; NR]; MR] {
    assert!(
        ap.len() >= kb * MR && bp.len() >= kb * NR,
        "panel too short"
    );
    // SAFETY: only reachable through `simd::select` under an AVX-512F
    // verdict; panel bounds were just asserted.
    unsafe { kernel_f64_avx512::<MR, NR>(kb, ap, bp) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::{portable, Isa};

    fn panels(kb: usize, mr: usize, nr: usize) -> (Vec<f64>, Vec<f64>) {
        let ap = (0..kb * mr)
            .map(|i| (i as f64 * 0.37).sin())
            .collect::<Vec<_>>();
        let bp = (0..kb * nr)
            .map(|i| (i as f64 * 0.73).cos())
            .collect::<Vec<_>>();
        (ap, bp)
    }

    #[test]
    fn avx2_f64_matches_portable_within_fma_tolerance() {
        if !Isa::Avx2.available() {
            return;
        }
        let kb = 33;
        let (ap, bp) = panels(kb, 8, 8);
        let simd = f64_avx2::<8, 8>(kb, &ap, &bp);
        let scalar = portable::<f64, 8, 8>(kb, &ap, &bp);
        for (sr, pr) in simd.iter().zip(&scalar) {
            for (s, p) in sr.iter().zip(pr) {
                assert!((s - p).abs() < 1e-13, "{s} vs {p}");
            }
        }
    }

    #[test]
    fn avx512_f64_matches_avx2() {
        if !Isa::Avx512.available() {
            return;
        }
        let kb = 17;
        let (ap, bp) = panels(kb, 4, 8);
        let z = f64_avx512::<4, 8>(kb, &ap, &bp);
        let y = f64_avx2::<4, 8>(kb, &ap, &bp);
        for (zr, yr) in z.iter().zip(&y) {
            for (a, b) in zr.iter().zip(yr) {
                assert!((a - b).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn f32_kernel_handles_zero_depth() {
        if !Isa::Avx2.available() {
            return;
        }
        assert_eq!(f32_avx2::<4, 8>(0, &[], &[]), [[0.0f32; 8]; 4]);
    }

    #[test]
    #[should_panic(expected = "panel too short")]
    fn bounds_are_checked() {
        if !Isa::Avx2.available() {
            panic!("panel too short"); // keep the expectation on non-AVX2 hosts
        }
        let _ = f64_avx2::<4, 4>(9, &[0.0; 8], &[0.0; 64]);
    }
}
