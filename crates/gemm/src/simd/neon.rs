//! aarch64 NEON/ASIMD microkernels (128-bit lanes).
//!
//! Structure mirrors [`crate::simd::x86`]: const-generic register tiles,
//! one fused multiply-add per accumulator register per `p` step, with the
//! `A` value broadcast via the `*_n_*` lane forms. `f64` uses 2-lane
//! vectors (`NR % 2 == 0`), `f32` 4-lane (`NR % 4 == 0`), so every
//! supported [`crate::TileShape`] qualifies on this architecture. The
//! same FMA-contraction caveat as on x86 applies: results differ from the
//! portable kernel by at most one rounding per multiply-accumulate.

use std::arch::aarch64::*;

/// Largest `NR/W` the supported tile set produces (`NR ≤ 8`, `W ≥ 2`).
const MAX_VECS: usize = 4;

/// `f64` tile on 2-lane NEON vectors; `NR` must be even.
///
/// # Safety
///
/// Requires NEON at runtime (baseline on aarch64, still verified by the
/// dispatcher); `ap`/`bp` must hold at least `kb*MR` / `kb*NR` elements.
#[target_feature(enable = "neon")]
unsafe fn kernel_f64_neon<const MR: usize, const NR: usize>(
    kb: usize,
    ap: &[f64],
    bp: &[f64],
) -> [[f64; NR]; MR] {
    const W: usize = 2;
    debug_assert!(NR % W == 0 && NR / W <= MAX_VECS);
    let nv = NR / W;
    let mut acc = [[vdupq_n_f64(0.0); MAX_VECS]; MR];
    let a = ap.as_ptr();
    let b = bp.as_ptr();
    for p in 0..kb {
        let mut bv = [vdupq_n_f64(0.0); MAX_VECS];
        for (j, v) in bv.iter_mut().enumerate().take(nv) {
            *v = vld1q_f64(b.add(p * NR + j * W));
        }
        for (r, row) in acc.iter_mut().enumerate() {
            let av = *a.add(p * MR + r);
            for j in 0..nv {
                row[j] = vfmaq_n_f64(row[j], bv[j], av);
            }
        }
    }
    let mut out = [[0.0f64; NR]; MR];
    for (r, row) in out.iter_mut().enumerate() {
        for j in 0..nv {
            vst1q_f64(row.as_mut_ptr().add(j * W), acc[r][j]);
        }
    }
    out
}

/// `f32` tile on 4-lane NEON vectors; `NR` must be a multiple of 4.
///
/// # Safety
///
/// As for [`kernel_f64_neon`].
#[target_feature(enable = "neon")]
unsafe fn kernel_f32_neon<const MR: usize, const NR: usize>(
    kb: usize,
    ap: &[f32],
    bp: &[f32],
) -> [[f32; NR]; MR] {
    const W: usize = 4;
    debug_assert!(NR % W == 0 && NR / W <= MAX_VECS);
    let nv = NR / W;
    let mut acc = [[vdupq_n_f32(0.0); MAX_VECS]; MR];
    let a = ap.as_ptr();
    let b = bp.as_ptr();
    for p in 0..kb {
        let mut bv = [vdupq_n_f32(0.0); MAX_VECS];
        for (j, v) in bv.iter_mut().enumerate().take(nv) {
            *v = vld1q_f32(b.add(p * NR + j * W));
        }
        for (r, row) in acc.iter_mut().enumerate() {
            let av = *a.add(p * MR + r);
            for j in 0..nv {
                row[j] = vfmaq_n_f32(row[j], bv[j], av);
            }
        }
    }
    let mut out = [[0.0f32; NR]; MR];
    for (r, row) in out.iter_mut().enumerate() {
        for j in 0..nv {
            vst1q_f32(row.as_mut_ptr().add(j * W), acc[r][j]);
        }
    }
    out
}

/// Safe entry for the NEON `f64` kernel (handed out by
/// [`crate::simd::select`] only under a NEON verdict).
pub fn f64_neon<const MR: usize, const NR: usize>(
    kb: usize,
    ap: &[f64],
    bp: &[f64],
) -> [[f64; NR]; MR] {
    assert!(
        ap.len() >= kb * MR && bp.len() >= kb * NR,
        "panel too short"
    );
    // SAFETY: only reachable through `simd::select` under a NEON
    // verdict; panel bounds were just asserted.
    unsafe { kernel_f64_neon::<MR, NR>(kb, ap, bp) }
}

/// Safe entry for the NEON `f32` kernel.
pub fn f32_neon<const MR: usize, const NR: usize>(
    kb: usize,
    ap: &[f32],
    bp: &[f32],
) -> [[f32; NR]; MR] {
    assert!(
        ap.len() >= kb * MR && bp.len() >= kb * NR,
        "panel too short"
    );
    // SAFETY: as for `f64_neon`.
    unsafe { kernel_f32_neon::<MR, NR>(kb, ap, bp) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::{portable, Isa};

    #[test]
    fn neon_matches_portable_within_fma_tolerance() {
        if !Isa::Neon.available() {
            return;
        }
        let kb = 21;
        let ap: Vec<f64> = (0..kb * 8).map(|i| (i as f64 * 0.37).sin()).collect();
        let bp: Vec<f64> = (0..kb * 8).map(|i| (i as f64 * 0.73).cos()).collect();
        let simd = f64_neon::<8, 8>(kb, &ap, &bp);
        let scalar = portable::<f64, 8, 8>(kb, &ap, &bp);
        for (sr, pr) in simd.iter().zip(&scalar) {
            for (s, p) in sr.iter().zip(pr) {
                assert!((s - p).abs() < 1e-13);
            }
        }
    }
}
