//! Numerical verification of GEMM results against the `f64` reference.
//!
//! Every experiment in `perfport-core` verifies its kernel functionally
//! before any timing is modelled, at a tolerance derived from the element
//! precision and the length of the contraction (a standard forward error
//! bound for recursive summation: `|err| <= k · u · |A||B|`).

use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::serial::gemm_reference_f64;

/// An absolute + relative tolerance pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute error floor.
    pub abs: f64,
    /// Relative error bound against the reference magnitude.
    pub rel: f64,
}

impl Tolerance {
    /// Forward error bound for a `k`-term contraction at precision `T`:
    /// `rel = k * u` with unit roundoff `u = 2^-mantissa_digits`, clamped
    /// to sane floors. Inputs in `[0,1)` keep magnitudes near `k/4`, so an
    /// absolute floor of `k * u` also holds.
    pub fn for_gemm<T: Scalar>(k: usize) -> Tolerance {
        let u = 2.0f64.powi(-(T::MANTISSA_DIGITS as i32));
        let bound = (k.max(1) as f64) * u * 4.0;
        Tolerance {
            abs: bound.max(1e-14),
            rel: bound.max(1e-14),
        }
    }

    /// Checks a single value pair against the tolerance.
    pub fn accepts(&self, got: f64, want: f64) -> bool {
        let err = (got - want).abs();
        err <= self.abs || err <= self.rel * want.abs()
    }
}

/// Largest absolute elementwise error of `c` against `reference`.
pub fn max_abs_error<T: Scalar>(c: &Matrix<T>, reference: &Matrix<f64>) -> f64 {
    shape_check(c, reference);
    let mut worst = 0.0f64;
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            let err = (c[(i, j)].to_f64() - reference[(i, j)]).abs();
            worst = worst.max(err);
        }
    }
    worst
}

/// Largest relative elementwise error of `c` against `reference`
/// (elements with zero reference use absolute error).
pub fn max_rel_error<T: Scalar>(c: &Matrix<T>, reference: &Matrix<f64>) -> f64 {
    shape_check(c, reference);
    let mut worst = 0.0f64;
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            let want = reference[(i, j)];
            let err = (c[(i, j)].to_f64() - want).abs();
            let rel = if want == 0.0 { err } else { err / want.abs() };
            worst = worst.max(rel);
        }
    }
    worst
}

/// Verifies `c ≈ A·B` at the precision-appropriate tolerance. Returns the
/// observed maximum relative error on success.
///
/// # Errors
///
/// Returns a description of the first offending element when the check
/// fails.
pub fn verify_gemm<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, c: &Matrix<T>) -> Result<f64, String> {
    let reference = gemm_reference_f64(a, b);
    let tol = Tolerance::for_gemm::<T>(a.cols());
    for i in 0..c.rows() {
        for j in 0..c.cols() {
            let got = c[(i, j)].to_f64();
            let want = reference[(i, j)];
            if !tol.accepts(got, want) {
                return Err(format!(
                    "C[{i},{j}] = {got} but reference is {want} (tol abs={}, rel={})",
                    tol.abs, tol.rel
                ));
            }
        }
    }
    Ok(max_rel_error(c, &reference))
}

fn shape_check<T: Scalar>(c: &Matrix<T>, reference: &Matrix<f64>) {
    assert_eq!(c.rows(), reference.rows(), "row mismatch");
    assert_eq!(c.cols(), reference.cols(), "col mismatch");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Layout;
    use crate::serial::{gemm_loop_order, LoopOrder};
    use crate::variants::CpuVariant;
    use perfport_half::F16;

    #[test]
    fn tolerance_scales_with_k_and_precision() {
        let t64 = Tolerance::for_gemm::<f64>(1000);
        let t32 = Tolerance::for_gemm::<f32>(1000);
        let t16 = Tolerance::for_gemm::<F16>(1000);
        assert!(t64.rel < t32.rel);
        assert!(t32.rel < t16.rel);
        let small = Tolerance::for_gemm::<f32>(10);
        let large = Tolerance::for_gemm::<f32>(10_000);
        assert!(small.rel < large.rel);
    }

    #[test]
    fn accepts_respects_both_bounds() {
        let t = Tolerance {
            abs: 0.1,
            rel: 0.01,
        };
        assert!(t.accepts(1.0, 1.05)); // within abs
        assert!(t.accepts(100.4, 100.0)); // within rel
        assert!(!t.accepts(100.0, 102.0)); // outside both
    }

    #[test]
    fn correct_gemm_verifies_all_precisions() {
        fn run<T: Scalar>(tag: &str) {
            let a = Matrix::<T>::random(14, 10, Layout::RowMajor, 3);
            let b = Matrix::<T>::random(10, 12, Layout::RowMajor, 4);
            let mut c = Matrix::<T>::zeros(14, 12, Layout::RowMajor);
            gemm_loop_order(LoopOrder::Ikj, &a, &b, &mut c);
            verify_gemm(&a, &b, &c).unwrap_or_else(|e| panic!("{tag}: {e}"));
        }
        run::<f64>("f64");
        run::<f32>("f32");
        run::<F16>("f16");
    }

    #[test]
    fn corrupted_result_is_rejected() {
        let a = Matrix::<f64>::random(8, 8, Layout::RowMajor, 1);
        let b = Matrix::<f64>::random(8, 8, Layout::RowMajor, 2);
        let mut c = Matrix::<f64>::zeros(8, 8, Layout::RowMajor);
        gemm_loop_order(LoopOrder::Ijk, &a, &b, &mut c);
        c[(3, 4)] += 1.0;
        let err = verify_gemm(&a, &b, &c).unwrap_err();
        assert!(err.contains("C[3,4]"), "unexpected message: {err}");
    }

    #[test]
    fn error_measures() {
        let reference = Matrix::<f64>::from_fn(2, 2, Layout::RowMajor, |_, _| 2.0);
        let mut c = Matrix::<f64>::from_fn(2, 2, Layout::RowMajor, |_, _| 2.0);
        c[(0, 1)] = 2.5;
        assert_eq!(max_abs_error(&c, &reference), 0.5);
        assert_eq!(max_rel_error(&c, &reference), 0.25);
    }

    #[test]
    fn zero_reference_uses_absolute_error() {
        let reference = Matrix::<f64>::zeros(1, 1, Layout::RowMajor);
        let mut c = Matrix::<f64>::zeros(1, 1, Layout::RowMajor);
        c[(0, 0)] = 1e-3;
        assert_eq!(max_rel_error(&c, &reference), 1e-3);
    }

    #[test]
    fn variant_kernels_pass_verification_f16_ones() {
        // The paper's Numba FP16 case: matrices of ones; C = k exactly
        // (until k exceeds the f16 integer range — 64 is safe).
        let v = CpuVariant::NumbaPrange;
        let a = Matrix::<F16>::ones(16, 64, Layout::RowMajor);
        let b = Matrix::<F16>::ones(64, 16, Layout::RowMajor);
        let mut c = Matrix::<F16>::zeros(16, 16, Layout::RowMajor);
        v.run_serial(&a, &b, &mut c);
        assert!(c.as_slice().iter().all(|x| x.to_f64() == 64.0));
        verify_gemm(&a, &b, &c).unwrap();
    }
}
