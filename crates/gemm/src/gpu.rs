//! The paper's fine-granularity GPU GEMM kernels (Fig. 3), one per
//! programming model, running on the `perfport-gpusim` SIMT simulator.
//!
//! Every model maps one thread to one element of `C` inside a 2-D grid of
//! (the paper uses 32×32) thread blocks, guards against the matrix edge,
//! and accumulates a length-`k` dot product. The models differ in host
//! language layout (row-major C/CUDA/HIP/Numba vs. column-major Julia) and
//! — on real machines — in generated code quality, which is the subject of
//! `perfport-models`; here they differ only in their memory-access
//! geometry, which the simulator's coalescing counters expose.

use crate::matrix::{Layout, Matrix};
use crate::scalar::Scalar;
use perfport_gpusim::{Dim3, Gpu, LaunchConfig, LaunchError, LaunchStats};
use std::fmt;

/// The GPU programming models compared in the paper's Figs. 6–7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuVariant {
    /// Vendor CUDA C (reference on NVIDIA).
    Cuda,
    /// Vendor HIP C (reference on AMD).
    Hip,
    /// Kokkos with the CUDA backend.
    KokkosCuda,
    /// Kokkos with the HIP backend.
    KokkosHip,
    /// Julia CUDA.jl.
    JuliaCudaJl,
    /// Julia AMDGPU.jl.
    JuliaAmdGpu,
    /// Python/Numba `@cuda.jit` (NVIDIA only; AMD support deprecated).
    NumbaCuda,
}

impl GpuVariant {
    /// All seven variants.
    pub const ALL: [GpuVariant; 7] = [
        GpuVariant::Cuda,
        GpuVariant::Hip,
        GpuVariant::KokkosCuda,
        GpuVariant::KokkosHip,
        GpuVariant::JuliaCudaJl,
        GpuVariant::JuliaAmdGpu,
        GpuVariant::NumbaCuda,
    ];

    /// The device family this model targets.
    pub fn device_class(&self) -> perfport_gpusim::DeviceClass {
        match self {
            GpuVariant::Hip | GpuVariant::KokkosHip | GpuVariant::JuliaAmdGpu => {
                perfport_gpusim::DeviceClass::AmdLike
            }
            _ => perfport_gpusim::DeviceClass::NvidiaLike,
        }
    }

    /// Host-language array layout (drives device indexing).
    pub fn layout(&self) -> Layout {
        match self {
            GpuVariant::JuliaCudaJl | GpuVariant::JuliaAmdGpu => Layout::ColMajor,
            _ => Layout::RowMajor,
        }
    }

    /// Short identifier used in tables and benches.
    pub fn name(&self) -> &'static str {
        match self {
            GpuVariant::Cuda => "cuda",
            GpuVariant::Hip => "hip",
            GpuVariant::KokkosCuda => "kokkos-cuda",
            GpuVariant::KokkosHip => "kokkos-hip",
            GpuVariant::JuliaCudaJl => "julia-cuda.jl",
            GpuVariant::JuliaAmdGpu => "julia-amdgpu.jl",
            GpuVariant::NumbaCuda => "numba-cuda",
        }
    }
}

impl fmt::Display for GpuVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs `C = A · B` on the simulator with `variant`'s kernel geometry and
/// the given thread-block shape (the paper uses `32×32`).
///
/// Inputs may be in any layout; they are staged to the variant's layout
/// before upload, exactly as the host languages would hold them. Returns
/// the result matrix and the launch counters.
///
/// # Errors
///
/// Propagates [`LaunchError`] from the simulator.
pub fn gpu_gemm<T: Scalar>(
    gpu: &Gpu,
    variant: GpuVariant,
    a: &Matrix<T>,
    b: &Matrix<T>,
    block: Dim3,
) -> Result<(Matrix<T>, LaunchStats), LaunchError> {
    gpu_gemm_mixed::<T, T>(gpu, variant, a, b, block)
}

/// Mixed-precision variant: inputs at precision `I`, accumulation and
/// output at precision `O` — the paper's Fig. 1c half-input /
/// single-output experiment (Figs. 6c and 7c).
pub fn gpu_gemm_mixed<I: Scalar, O: Scalar>(
    gpu: &Gpu,
    variant: GpuVariant,
    a: &Matrix<I>,
    b: &Matrix<I>,
    block: Dim3,
) -> Result<(Matrix<O>, LaunchStats), LaunchError> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let layout = variant.layout();

    let a_host = a.to_layout(layout);
    let b_host = b.to_layout(layout);
    let da = gpu.alloc_from_slice(a_host.as_slice());
    let db = gpu.alloc_from_slice(b_host.as_slice());
    let dc = gpu.alloc_filled(m * n, O::zero());

    let cfg = match layout {
        // Fig. 3a/3d: col ← x (coalesced along B/C rows), row ← y.
        Layout::RowMajor => LaunchConfig::cover2d(n as u32, m as u32, block),
        // Fig. 3b/3c: i (row) ← x (coalesced along A/C columns), j ← y.
        Layout::ColMajor => LaunchConfig::cover2d(m as u32, n as u32, block),
    };

    let stats = gpu.launch(cfg, |t| match layout {
        Layout::RowMajor => {
            let (col, row) = t.grid2();
            if row < m && col < n {
                let mut sum = O::zero();
                for l in 0..k {
                    let av = O::from_f64(da.read(t, row * k + l).to_f64());
                    let bv = O::from_f64(db.read(t, l * n + col).to_f64());
                    sum = av.mul_add(bv, sum);
                    t.tally_flops(2);
                }
                dc.write(t, row * n + col, sum);
            }
        }
        Layout::ColMajor => {
            let (i, j) = t.grid2();
            if i < m && j < n {
                let mut sum = O::zero();
                for l in 0..k {
                    let av = O::from_f64(da.read(t, l * m + i).to_f64());
                    let bv = O::from_f64(db.read(t, j * k + l).to_f64());
                    sum = av.mul_add(bv, sum);
                    t.tally_flops(2);
                }
                dc.write(t, j * m + i, sum);
            }
        }
    })?;

    let host = dc.to_host();
    let mut c = Matrix::<O>::zeros(m, n, layout);
    c.as_mut_slice().copy_from_slice(&host);
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::{gemm_flops, gemm_reference_f64};
    use perfport_half::F16;

    const BLOCK: Dim3 = Dim3::d2(16, 16);

    #[test]
    fn all_variants_match_reference_f64() {
        for v in GpuVariant::ALL {
            let gpu = Gpu::new(v.device_class());
            let a = Matrix::<f64>::random(33, 17, Layout::RowMajor, 1);
            let b = Matrix::<f64>::random(17, 29, Layout::RowMajor, 2);
            let reference = gemm_reference_f64(&a, &b);
            let (c, stats) = gpu_gemm(&gpu, v, &a, &b, BLOCK).unwrap();
            let cr = c.to_layout(Layout::RowMajor);
            let diff: Matrix<f64> = cr.cast();
            assert!(diff.max_abs_diff(&reference) < 1e-12, "{v}");
            assert_eq!(stats.flops, gemm_flops(33, 29, 17), "{v} flop count");
        }
    }

    #[test]
    fn f32_and_f16_precisions() {
        let gpu = Gpu::new(perfport_gpusim::DeviceClass::NvidiaLike);
        let a32 = Matrix::<f32>::random(20, 12, Layout::RowMajor, 3);
        let b32 = Matrix::<f32>::random(12, 18, Layout::RowMajor, 4);
        let reference = gemm_reference_f64(&a32, &b32);
        let (c, _) = gpu_gemm(&gpu, GpuVariant::Cuda, &a32, &b32, BLOCK).unwrap();
        let cast: Matrix<f64> = c.cast();
        assert!(cast.max_abs_diff(&reference) < 1e-4);

        let a16: Matrix<F16> = a32.cast();
        let b16: Matrix<F16> = b32.cast();
        let ref16 = gemm_reference_f64(&a16, &b16);
        let (c16, _) = gpu_gemm(&gpu, GpuVariant::JuliaCudaJl, &a16, &b16, BLOCK).unwrap();
        let cast: Matrix<f64> = c16.to_layout(Layout::RowMajor).cast();
        assert!(cast.max_abs_diff(&ref16) < 0.2);
    }

    #[test]
    fn mixed_half_in_single_out_matches_paper_fig1c() {
        // Half inputs, FP32 accumulate: noticeably more accurate than pure
        // half.
        let gpu = Gpu::new(perfport_gpusim::DeviceClass::AmdLike);
        let a = Matrix::<F16>::random(24, 32, Layout::RowMajor, 5);
        let b = Matrix::<F16>::random(32, 24, Layout::RowMajor, 6);
        let reference = gemm_reference_f64(&a, &b);
        let (c, _) =
            gpu_gemm_mixed::<F16, f32>(&gpu, GpuVariant::JuliaAmdGpu, &a, &b, BLOCK).unwrap();
        let cast: Matrix<f64> = c.to_layout(Layout::RowMajor).cast();
        assert!(cast.max_abs_diff(&reference) < 2e-2);

        let (pure, _) = gpu_gemm::<F16>(&gpu, GpuVariant::JuliaAmdGpu, &a, &b, BLOCK).unwrap();
        let pure_cast: Matrix<f64> = pure.to_layout(Layout::RowMajor).cast();
        assert!(pure_cast.max_abs_diff(&reference) >= cast.max_abs_diff(&reference));
    }

    #[test]
    fn exact_tiles_have_no_divergence() {
        let gpu = Gpu::new(perfport_gpusim::DeviceClass::NvidiaLike);
        let a = Matrix::<f32>::random(64, 16, Layout::RowMajor, 7);
        let b = Matrix::<f32>::random(16, 64, Layout::RowMajor, 8);
        let (_, stats) = gpu_gemm(&gpu, GpuVariant::Cuda, &a, &b, Dim3::d2(32, 32)).unwrap();
        assert_eq!(stats.divergent_warps, 0);
        // Ragged edge introduces divergent warps.
        let a = Matrix::<f32>::random(65, 16, Layout::RowMajor, 7);
        let b = Matrix::<f32>::random(16, 65, Layout::RowMajor, 8);
        let (_, ragged) = gpu_gemm(&gpu, GpuVariant::Cuda, &a, &b, Dim3::d2(32, 32)).unwrap();
        assert!(ragged.divergent_warps > 0);
    }

    #[test]
    fn b_loads_are_coalesced_a_loads_are_broadcast() {
        // Row-major kernel, one warp per output row segment: B[l*n+col] is
        // contiguous across lanes (coalesced), A[row*k+l] is identical
        // across lanes (broadcast -> 1 transaction). Loads per thread:
        // 2k; transactions should be close to 2 per ordinal pair.
        let gpu = Gpu::new(perfport_gpusim::DeviceClass::NvidiaLike);
        let (m, k, n) = (32usize, 8usize, 32usize);
        let a = Matrix::<f32>::random(m, k, Layout::RowMajor, 9);
        let b = Matrix::<f32>::random(k, n, Layout::RowMajor, 10);
        let (_, stats) = gpu_gemm(&gpu, GpuVariant::Cuda, &a, &b, Dim3::d2(32, 1)).unwrap();
        assert_eq!(stats.loads, ((2 * m * n * k) as u64));
        // Per warp and per l: one A broadcast + one B line = 2
        // transactions; warps = m (one row each), ordinals = k pairs.
        let expected = (m * k * 2) as u64;
        assert_eq!(stats.load_transactions, expected);
    }

    #[test]
    fn julia_colmajor_geometry_is_equally_coalesced() {
        let gpu = Gpu::new(perfport_gpusim::DeviceClass::NvidiaLike);
        let (m, k, n) = (32usize, 8usize, 32usize);
        let a = Matrix::<f32>::random(m, k, Layout::RowMajor, 9);
        let b = Matrix::<f32>::random(k, n, Layout::RowMajor, 10);
        let (_, row) = gpu_gemm(&gpu, GpuVariant::Cuda, &a, &b, Dim3::d2(32, 1)).unwrap();
        let (_, col) = gpu_gemm(&gpu, GpuVariant::JuliaCudaJl, &a, &b, Dim3::d2(32, 1)).unwrap();
        // Same algorithm, mirrored layout: identical traffic shape.
        assert_eq!(row.loads, col.loads);
        assert_eq!(row.load_transactions, col.load_transactions);
        assert_eq!(row.stores, col.stores);
    }

    #[test]
    fn names_and_devices() {
        assert_eq!(GpuVariant::Cuda.name(), "cuda");
        assert_eq!(
            GpuVariant::JuliaAmdGpu.device_class(),
            perfport_gpusim::DeviceClass::AmdLike
        );
        assert_eq!(GpuVariant::NumbaCuda.layout(), Layout::RowMajor);
        assert_eq!(GpuVariant::JuliaCudaJl.layout(), Layout::ColMajor);
        assert_eq!(GpuVariant::KokkosHip.to_string(), "kokkos-hip");
    }
}
