//! One hand-rolled GEMM kernel per CPU programming model, transcribing the
//! loop structures of the paper's Fig. 2.
//!
//! The four models express the *same* naive algorithm with different
//! memory idioms:
//!
//! * **C/OpenMP** (Fig. 2a) — row-major, `#pragma omp parallel for` over
//!   rows, `ikj` order with the `A[i,k]` value hoisted into a register.
//! * **Kokkos** (Fig. 2b) — a lambda computing one entry of `C` (a dot
//!   product), dispatched over rows; row-major host layout.
//! * **Julia** (Fig. 2c) — column-major, `@threads` over columns of `C`,
//!   `jli` order with `B[l,j]` hoisted, `@inbounds` bounds-check removal.
//! * **Python/Numba** (Fig. 2d) — row-major NumPy arrays, `prange` over
//!   rows, `ikj` order, `fastmath=True` (contractions allowed).
//!
//! Each kernel is written against raw storage slices the way the original
//! is written against raw pointers/arrays, and each can run serially or on
//! a chunk of its parallel dimension (for the work-sharing runtime in
//! [`crate::parallel`]).

use crate::matrix::{Layout, Matrix};
use crate::scalar::Scalar;
use perfport_pool::{Chunk, DisjointSlice};
use std::fmt;

/// The CPU programming models compared in the paper's Figs. 4–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuVariant {
    /// Vendor-compiled C with OpenMP pragmas (the reference model).
    OpenMpC,
    /// Kokkos with the OpenMP backend.
    KokkosLambda,
    /// Julia `Threads.@threads`.
    JuliaThreads,
    /// Python/Numba `@njit(parallel=True)` with `prange`.
    NumbaPrange,
    /// The vendor-BLAS stand-in: the packed, register-tiled, cache-blocked
    /// kernel in [`crate::tuned`]. Not one of the paper's portable models —
    /// it is the measured baseline their efficiencies are judged against.
    Vendor,
}

impl CpuVariant {
    /// The four *portable* models in the paper's presentation order (the
    /// vendor baseline is deliberately not a member: it is the denominator,
    /// not a contestant).
    pub const ALL: [CpuVariant; 4] = [
        CpuVariant::OpenMpC,
        CpuVariant::KokkosLambda,
        CpuVariant::JuliaThreads,
        CpuVariant::NumbaPrange,
    ];

    /// The portable models plus the vendor baseline, for harnesses that
    /// measure the denominator alongside the contestants.
    pub const WITH_VENDOR: [CpuVariant; 5] = [
        CpuVariant::OpenMpC,
        CpuVariant::KokkosLambda,
        CpuVariant::JuliaThreads,
        CpuVariant::NumbaPrange,
        CpuVariant::Vendor,
    ];

    /// The storage layout the host language defaults to.
    pub fn layout(&self) -> Layout {
        match self {
            CpuVariant::JuliaThreads => Layout::ColMajor,
            _ => Layout::RowMajor,
        }
    }

    /// Length of the parallelised dimension for an `m×n` output: rows for
    /// the row-major models, columns for Julia.
    pub fn parallel_extent(&self, m: usize, n: usize) -> usize {
        match self {
            CpuVariant::JuliaThreads => n,
            _ => m,
        }
    }

    /// Short identifier used in tables and benches.
    pub fn name(&self) -> &'static str {
        match self {
            CpuVariant::OpenMpC => "c-openmp",
            CpuVariant::KokkosLambda => "kokkos",
            CpuVariant::JuliaThreads => "julia",
            CpuVariant::NumbaPrange => "numba",
            CpuVariant::Vendor => "vendor",
        }
    }

    /// Executes this variant's kernel over one chunk of its parallel
    /// dimension, writing disjoint parts of `C`.
    ///
    /// All three matrices must use [`CpuVariant::layout`]. `c` wraps the
    /// output storage; the chunk identifies rows (columns for Julia) this
    /// call owns exclusively.
    ///
    /// # Panics
    ///
    /// Panics on layout or shape mismatch.
    pub fn run_chunk<T: Scalar>(
        &self,
        a: &Matrix<T>,
        b: &Matrix<T>,
        c: &DisjointSlice<'_, T>,
        c_shape: (usize, usize),
        chunk: Chunk,
    ) {
        let (m, n) = c_shape;
        let k = a.cols();
        assert_eq!(a.layout(), self.layout(), "A layout mismatch");
        assert_eq!(b.layout(), self.layout(), "B layout mismatch");
        assert_eq!(b.rows(), k, "inner dimensions must agree");
        assert_eq!(a.rows(), m, "A rows must match C rows");
        assert_eq!(b.cols(), n, "B cols must match C cols");
        assert_eq!(c.len(), m * n, "C storage size mismatch");

        let ad = a.as_slice();
        let bd = b.as_slice();
        match self {
            CpuVariant::OpenMpC => {
                // for i { for l { t = A[i,l]; for j { C[i,j] += t*B[l,j] } } }
                for i in chunk.range() {
                    // SAFETY: each row index is owned by exactly one chunk.
                    let crow = unsafe { c.row(i, n) };
                    for l in 0..k {
                        let t = ad[i * k + l];
                        let brow = &bd[l * n..(l + 1) * n];
                        for (cj, &bj) in crow.iter_mut().zip(brow) {
                            *cj += t * bj;
                        }
                    }
                }
            }
            CpuVariant::KokkosLambda => {
                // Lambda computing one entry of C, dispatched per row:
                // C(i,j) = sum_l A(i,l) * B(l,j).
                for i in chunk.range() {
                    // SAFETY: row ownership per chunk.
                    let crow = unsafe { c.row(i, n) };
                    for (j, cj) in crow.iter_mut().enumerate() {
                        let mut acc = *cj;
                        for l in 0..k {
                            acc += ad[i * k + l] * bd[l * n + j];
                        }
                        *cj = acc;
                    }
                }
            }
            CpuVariant::JuliaThreads => {
                // @threads for j { for l { t = B[l,j]; for i { C[i,j] += t*A[i,l] } } }
                // Column-major: column j of C occupies [j*m, (j+1)*m).
                for j in chunk.range() {
                    // SAFETY: column ownership per chunk.
                    let ccol = unsafe { c.row(j, m) };
                    for l in 0..k {
                        let t = bd[j * k + l];
                        let acol = &ad[l * m..(l + 1) * m];
                        for (ci, &ai) in ccol.iter_mut().zip(acol) {
                            *ci += t * ai;
                        }
                    }
                }
            }
            CpuVariant::NumbaPrange => {
                // prange over i; fastmath permits FMA contraction, which we
                // make explicit with mul_add.
                for i in chunk.range() {
                    // SAFETY: row ownership per chunk.
                    let crow = unsafe { c.row(i, n) };
                    for l in 0..k {
                        let t = ad[i * k + l];
                        let brow = &bd[l * n..(l + 1) * n];
                        for (cj, &bj) in crow.iter_mut().zip(brow) {
                            *cj = t.mul_add(bj, *cj);
                        }
                    }
                }
            }
            CpuVariant::Vendor => {
                // The packed register-tiled kernel over this chunk's rows,
                // packing into the calling worker's reusable arena.
                let params = crate::tuned::TunedParams::host::<T>();
                crate::tuned::with_thread_arena(|arena| {
                    crate::tuned::gemm_rows(
                        a,
                        b,
                        c,
                        c_shape,
                        self.layout(),
                        chunk.range(),
                        &params,
                        arena,
                    );
                });
            }
        }
    }

    /// Serial execution of the full kernel (the single-threaded baseline).
    pub fn run_serial<T: Scalar>(&self, a: &Matrix<T>, b: &Matrix<T>, c: &mut Matrix<T>) {
        assert_eq!(c.layout(), self.layout(), "C layout mismatch");
        let shape = (c.rows(), c.cols());
        let extent = self.parallel_extent(shape.0, shape.1);
        let ds = DisjointSlice::new(c.as_mut_slice());
        self.run_chunk(
            a,
            b,
            &ds,
            shape,
            Chunk {
                start: 0,
                end: extent,
            },
        );
    }

    /// The paper's source snippet for this model (Fig. 2), used by the
    /// productivity metrics in `perfport-metrics`.
    pub fn source_snippet(&self) -> &'static str {
        match self {
            CpuVariant::OpenMpC => OPENMP_SNIPPET,
            CpuVariant::KokkosLambda => KOKKOS_SNIPPET,
            CpuVariant::JuliaThreads => JULIA_SNIPPET,
            CpuVariant::NumbaPrange => NUMBA_SNIPPET,
            CpuVariant::Vendor => VENDOR_SNIPPET,
        }
    }
}

impl fmt::Display for CpuVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

const OPENMP_SNIPPET: &str = r#"
#pragma omp parallel for
for (int i = 0; i < A_rows; ++i) {
  for (int l = 0; l < A_cols; ++l) {
    const double temp = A[i * A_cols + l];
    for (int j = 0; j < B_cols; ++j) {
      C[i * B_cols + j] += temp * B[l * B_cols + j];
    }
  }
}
"#;

const KOKKOS_SNIPPET: &str = r#"
Kokkos::parallel_for(
  "gemm", mdrange_policy({0, 0}, {A_rows, B_cols}),
  KOKKOS_LAMBDA(const int i, const int j) {
    double acc = 0;
    for (int l = 0; l < A_cols; ++l) {
      acc += A(i, l) * B(l, j);
    }
    C(i, j) += acc;
  });
"#;

const JULIA_SNIPPET: &str = r#"
import Base.Threads: @threads
function gemm!(A, B, C)
  @threads for j in 1:size(B, 2)
    for l in 1:size(A, 2)
      @inbounds temp = B[l, j]
      for i in 1:size(A, 1)
        @inbounds C[i, j] += temp * A[i, l]
      end
    end
  end
end
"#;

const NUMBA_SNIPPET: &str = r#"
from numba import njit, prange

@njit(parallel=True, nogil=True, fastmath=True)
def gemm(A, B, C):
    for i in prange(0, A.shape[0]):
        for k in range(0, A.shape[1]):
            temp = A[i, k]
            for j in range(0, B.shape[1]):
                C[i, j] += temp * B[k, j]
"#;

const VENDOR_SNIPPET: &str = r#"
// What the scientist actually writes when calling the vendor library:
// one line hiding a packed, register-tiled, cache-blocked kernel.
cblas_dgemm(CblasRowMajor, CblasNoTrans, CblasNoTrans,
            A_rows, B_cols, A_cols,
            1.0, A, A_cols, B, B_cols, 1.0, C, B_cols);
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::gemm_reference_f64;
    use perfport_half::F16;

    fn check_variant<T: Scalar>(variant: CpuVariant, m: usize, k: usize, n: usize, tol: f64) {
        let layout = variant.layout();
        let a = Matrix::<T>::random(m, k, layout, 11);
        let b = Matrix::<T>::random(k, n, layout, 22);
        let reference = gemm_reference_f64(&a, &b);
        let mut c = Matrix::<T>::zeros(m, n, layout);
        variant.run_serial(&a, &b, &mut c);
        let cast: Matrix<f64> = c.cast();
        let err = cast.max_abs_diff(&reference);
        assert!(err < tol, "{variant}: error {err} over tolerance {tol}");
    }

    #[test]
    fn all_variants_match_reference_f64() {
        for v in CpuVariant::ALL {
            check_variant::<f64>(v, 17, 13, 19, 1e-12);
        }
    }

    #[test]
    fn all_variants_match_reference_f32() {
        for v in CpuVariant::ALL {
            check_variant::<f32>(v, 17, 13, 19, 1e-3);
        }
    }

    #[test]
    fn all_variants_match_reference_f16() {
        // Half precision with k=13 dot products: tolerance scaled to the
        // 2^-11 unit roundoff and k accumulations.
        for v in CpuVariant::ALL {
            check_variant::<F16>(v, 9, 13, 9, 0.2);
        }
    }

    #[test]
    fn layouts_match_host_language() {
        assert_eq!(CpuVariant::OpenMpC.layout(), Layout::RowMajor);
        assert_eq!(CpuVariant::KokkosLambda.layout(), Layout::RowMajor);
        assert_eq!(CpuVariant::JuliaThreads.layout(), Layout::ColMajor);
        assert_eq!(CpuVariant::NumbaPrange.layout(), Layout::RowMajor);
    }

    #[test]
    fn parallel_extent_follows_layout() {
        assert_eq!(CpuVariant::OpenMpC.parallel_extent(4, 9), 4);
        assert_eq!(CpuVariant::JuliaThreads.parallel_extent(4, 9), 9);
    }

    #[test]
    fn vendor_variant_matches_reference() {
        check_variant::<f64>(CpuVariant::Vendor, 33, 29, 31, 1e-12);
        check_variant::<f32>(CpuVariant::Vendor, 33, 29, 31, 1e-3);
        assert_eq!(CpuVariant::Vendor.layout(), Layout::RowMajor);
        assert_eq!(CpuVariant::Vendor.parallel_extent(4, 9), 4);
        assert_eq!(CpuVariant::Vendor.to_string(), "vendor");
        assert!(CpuVariant::WITH_VENDOR.contains(&CpuVariant::Vendor));
        assert!(!CpuVariant::ALL.contains(&CpuVariant::Vendor));
        assert!(CpuVariant::Vendor.source_snippet().contains("dgemm"));
    }

    #[test]
    fn chunked_execution_equals_serial() {
        for v in CpuVariant::WITH_VENDOR {
            let layout = v.layout();
            let (m, k, n) = (12, 8, 10);
            let a = Matrix::<f64>::random(m, k, layout, 1);
            let b = Matrix::<f64>::random(k, n, layout, 2);
            let mut c_serial = Matrix::<f64>::zeros(m, n, layout);
            v.run_serial(&a, &b, &mut c_serial);

            let mut c_chunked = Matrix::<f64>::zeros(m, n, layout);
            {
                let ds = DisjointSlice::new(c_chunked.as_mut_slice());
                let extent = v.parallel_extent(m, n);
                let mid = extent / 2;
                v.run_chunk(&a, &b, &ds, (m, n), Chunk { start: 0, end: mid });
                v.run_chunk(
                    &a,
                    &b,
                    &ds,
                    (m, n),
                    Chunk {
                        start: mid,
                        end: extent,
                    },
                );
            }
            assert_eq!(c_serial.max_abs_diff(&c_chunked), 0.0, "{v}");
        }
    }

    #[test]
    fn accumulates_into_existing_c() {
        let v = CpuVariant::OpenMpC;
        let a = Matrix::<f64>::ones(3, 3, Layout::RowMajor);
        let b = Matrix::<f64>::ones(3, 3, Layout::RowMajor);
        let mut c = Matrix::<f64>::from_fn(3, 3, Layout::RowMajor, |_, _| 5.0);
        v.run_serial(&a, &b, &mut c);
        assert!(c.as_slice().iter().all(|&x| x == 8.0));
    }

    #[test]
    fn snippets_are_nonempty_and_distinct() {
        let snippets: Vec<_> = CpuVariant::ALL.iter().map(|v| v.source_snippet()).collect();
        for s in &snippets {
            assert!(s.len() > 50);
        }
        for i in 0..snippets.len() {
            for j in i + 1..snippets.len() {
                assert_ne!(snippets[i], snippets[j]);
            }
        }
    }

    #[test]
    fn names_and_display() {
        assert_eq!(CpuVariant::OpenMpC.to_string(), "c-openmp");
        assert_eq!(CpuVariant::JuliaThreads.to_string(), "julia");
    }

    #[test]
    #[should_panic(expected = "layout mismatch")]
    fn wrong_layout_panics() {
        let a = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        let mut c = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        CpuVariant::JuliaThreads.run_serial(&a, &b, &mut c);
    }
}
