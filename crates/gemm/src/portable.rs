//! A KernelAbstractions.jl-style single-source kernel layer.
//!
//! The paper (§III.B) notes that Julia offers KernelAbstractions.jl "for
//! writing portable kernels while still maintaining dependence on either
//! CUArray or ROCArray": one kernel body, multiple execution backends.
//! This module is that idea in Rust: the GEMM *element computation* is
//! written exactly once ([`gemm_element`]) against an abstract
//! memory-access trait, and executes unchanged on
//!
//! * the CPU work-sharing pool (coarse-grained over rows), and
//! * the SIMT simulator (fine-grained, one thread per element) for
//!   either device class.
//!
//! Because both backends run the same accumulation order, their results
//! are **bit-identical** — the property tests assert it.

use crate::matrix::{Layout, Matrix};
use crate::scalar::Scalar;
use perfport_gpusim::{Dim3, Gpu, LaunchConfig, LaunchError, LaunchStats, ThreadCtx};
use perfport_pool::{DisjointSlice, RegionStats, Schedule, ThreadPool};

/// Abstract read access to the `A` and `B` operands — the single-source
/// seam between host memory and device buffers.
pub trait GemmAccess<T: Scalar> {
    /// `A[i, l]`.
    fn a(&self, i: usize, l: usize) -> T;
    /// `B[l, j]`.
    fn b(&self, l: usize, j: usize) -> T;
}

/// The one and only kernel body: a `k`-term dot product with FMA
/// accumulation. Every backend calls exactly this function.
#[inline]
pub fn gemm_element<T: Scalar, M: GemmAccess<T>>(mem: &M, i: usize, j: usize, k: usize) -> T {
    let mut sum = T::zero();
    for l in 0..k {
        sum = mem.a(i, l).mul_add(mem.b(l, j), sum);
    }
    sum
}

/// Host-memory backend access.
struct HostAccess<'m, T: Scalar> {
    a: &'m Matrix<T>,
    b: &'m Matrix<T>,
}

impl<T: Scalar> GemmAccess<T> for HostAccess<'_, T> {
    #[inline]
    fn a(&self, i: usize, l: usize) -> T {
        self.a[(i, l)]
    }
    #[inline]
    fn b(&self, l: usize, j: usize) -> T {
        self.b[(l, j)]
    }
}

/// Device-buffer backend access (row-major staging, reads recorded by
/// the simulator).
struct DeviceAccess<'c, T: Scalar> {
    ctx: &'c ThreadCtx,
    a: &'c perfport_gpusim::DeviceBuffer<T>,
    b: &'c perfport_gpusim::DeviceBuffer<T>,
    k: usize,
    n: usize,
}

impl<T: Scalar> GemmAccess<T> for DeviceAccess<'_, T> {
    #[inline]
    fn a(&self, i: usize, l: usize) -> T {
        self.a.read(self.ctx, i * self.k + l)
    }
    #[inline]
    fn b(&self, l: usize, j: usize) -> T {
        self.b.read(self.ctx, l * self.n + j)
    }
}

/// Where a portable kernel runs.
pub enum Backend<'r> {
    /// Coarse-grained rows on the CPU work-sharing pool.
    Cpu(&'r ThreadPool),
    /// Fine-grained element grid on the SIMT simulator with the given
    /// thread-block shape.
    Gpu(&'r Gpu, Dim3),
}

/// Execution record of a portable launch.
pub enum BackendStats {
    /// Pool region statistics.
    Cpu(RegionStats),
    /// Simulator launch counters.
    Gpu(LaunchStats),
}

impl BackendStats {
    /// Work items processed (rows on CPU, threads on GPU).
    pub fn items(&self) -> u64 {
        match self {
            BackendStats::Cpu(s) => s.total_items() as u64,
            BackendStats::Gpu(s) => s.threads,
        }
    }
}

/// Runs `C = A · B` with the single-source kernel on the chosen backend.
/// Inputs may be any layout; they are staged row-major (the layer's
/// canonical layout, as KernelAbstractions kernels are written against
/// the array abstraction, not a layout).
///
/// ```
/// use perfport_gemm::{portable_gemm, Backend, Layout, Matrix};
/// use perfport_gpusim::{DeviceClass, Dim3, Gpu};
/// use perfport_pool::ThreadPool;
///
/// let a = Matrix::<f64>::random(8, 8, Layout::RowMajor, 1);
/// let b = Matrix::<f64>::random(8, 8, Layout::RowMajor, 2);
/// let pool = ThreadPool::new(2);
/// let gpu = Gpu::new(DeviceClass::AmdLike);
/// let (on_cpu, _) = portable_gemm(Backend::Cpu(&pool), &a, &b).unwrap();
/// let (on_gpu, _) = portable_gemm(Backend::Gpu(&gpu, Dim3::d2(4, 4)), &a, &b).unwrap();
/// // One kernel body, bit-identical results on every backend.
/// assert_eq!(on_cpu, on_gpu);
/// ```
///
/// # Errors
///
/// Propagates simulator launch errors; CPU execution is infallible.
pub fn portable_gemm<T: Scalar>(
    backend: Backend<'_>,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Result<(Matrix<T>, BackendStats), LaunchError> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let a_row = a.to_layout(Layout::RowMajor);
    let b_row = b.to_layout(Layout::RowMajor);

    match backend {
        Backend::Cpu(pool) => {
            let mut c = Matrix::<T>::zeros(m, n, Layout::RowMajor);
            let mem = HostAccess {
                a: &a_row,
                b: &b_row,
            };
            let stats = {
                let ds = DisjointSlice::new(c.as_mut_slice());
                pool.parallel_for(m, Schedule::StaticBlock, |_ctx, chunk| {
                    for i in chunk.range() {
                        // SAFETY: each row is owned by exactly one chunk.
                        let row = unsafe { ds.row(i, n) };
                        for (j, out) in row.iter_mut().enumerate() {
                            *out = gemm_element(&mem, i, j, k);
                        }
                    }
                })
            };
            Ok((c, BackendStats::Cpu(stats)))
        }
        Backend::Gpu(gpu, block) => {
            let da = gpu.alloc_from_slice(a_row.as_slice());
            let db = gpu.alloc_from_slice(b_row.as_slice());
            let dc = gpu.alloc_filled(m * n, T::zero());
            let cfg = LaunchConfig::cover2d(n as u32, m as u32, block);
            let stats = gpu.launch(cfg, |t| {
                let (j, i) = t.grid2();
                if i < m && j < n {
                    let mem = DeviceAccess {
                        ctx: t,
                        a: &da,
                        b: &db,
                        k,
                        n,
                    };
                    let v = gemm_element(&mem, i, j, k);
                    dc.write(t, i * n + j, v);
                    t.tally_flops(2 * k as u64);
                }
            })?;
            let mut c = Matrix::<T>::zeros(m, n, Layout::RowMajor);
            c.as_mut_slice().copy_from_slice(&dc.to_host());
            Ok((c, BackendStats::Gpu(stats)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::gemm_reference_f64;
    use perfport_gpusim::DeviceClass;
    use perfport_half::F16;

    fn inputs(m: usize, k: usize, n: usize) -> (Matrix<f64>, Matrix<f64>) {
        (
            Matrix::random(m, k, Layout::RowMajor, 61),
            Matrix::random(k, n, Layout::RowMajor, 62),
        )
    }

    #[test]
    fn cpu_backend_matches_reference() {
        let (a, b) = inputs(23, 17, 29);
        let pool = ThreadPool::new(3);
        let (c, stats) = portable_gemm(Backend::Cpu(&pool), &a, &b).unwrap();
        assert!(c.max_abs_diff(&gemm_reference_f64(&a, &b)) < 1e-12);
        assert_eq!(stats.items(), 23);
    }

    #[test]
    fn gpu_backends_match_reference() {
        let (a, b) = inputs(23, 17, 29);
        for class in [DeviceClass::NvidiaLike, DeviceClass::AmdLike] {
            let gpu = Gpu::new(class);
            let (c, stats) = portable_gemm(Backend::Gpu(&gpu, Dim3::d2(8, 8)), &a, &b).unwrap();
            assert!(
                c.max_abs_diff(&gemm_reference_f64(&a, &b)) < 1e-12,
                "{class}"
            );
            assert_eq!(stats.items() % 64, 0, "whole blocks launched");
        }
    }

    #[test]
    fn single_source_is_bit_identical_across_backends() {
        // The KernelAbstractions promise, made checkable: same body, same
        // accumulation order, identical bits on every backend.
        let (a, b) = inputs(31, 21, 19);
        let pool = ThreadPool::new(4);
        let (cpu, _) = portable_gemm(Backend::Cpu(&pool), &a, &b).unwrap();
        let nv = Gpu::new(DeviceClass::NvidiaLike);
        let (gpu_nv, _) = portable_gemm(Backend::Gpu(&nv, Dim3::d2(16, 16)), &a, &b).unwrap();
        let amd = Gpu::new(DeviceClass::AmdLike);
        let (gpu_amd, _) = portable_gemm(Backend::Gpu(&amd, Dim3::d2(32, 4)), &a, &b).unwrap();
        assert_eq!(cpu, gpu_nv);
        assert_eq!(cpu, gpu_amd);
    }

    #[test]
    fn works_at_half_precision() {
        let a = Matrix::<F16>::random(16, 16, Layout::RowMajor, 63);
        let b = Matrix::<F16>::random(16, 16, Layout::RowMajor, 64);
        let pool = ThreadPool::new(2);
        let (cpu, _) = portable_gemm(Backend::Cpu(&pool), &a, &b).unwrap();
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let (dev, _) = portable_gemm(Backend::Gpu(&gpu, Dim3::d2(8, 8)), &a, &b).unwrap();
        assert_eq!(cpu, dev);
        let cast: Matrix<f64> = cpu.cast();
        assert!(cast.max_abs_diff(&gemm_reference_f64(&a, &b)) < 0.2);
    }

    #[test]
    fn column_major_inputs_are_staged() {
        let a = Matrix::<f64>::random(12, 8, Layout::ColMajor, 65);
        let b = Matrix::<f64>::random(8, 10, Layout::ColMajor, 66);
        let pool = ThreadPool::new(2);
        let (c, _) = portable_gemm(Backend::Cpu(&pool), &a, &b).unwrap();
        assert!(c.max_abs_diff(&gemm_reference_f64(&a, &b)) < 1e-12);
    }
}
