//! Serial hand-rolled GEMM kernels: every loop order, a cache-blocked
//! variant, and the `f64` reference used for verification.
//!
//! `C += A · B` with `A: m×k`, `B: k×n`, `C: m×n`. Nothing clever — the
//! paper's entire premise is that the kernel is what a scientist writes in
//! an afternoon, so optimisations stop at loop ordering and blocking.

use crate::matrix::Matrix;
use crate::scalar::Scalar;

/// Floating-point operations in one `C += A·B`: one multiply and one add
/// per `(i, j, k)` triple — the figure the paper's GFLOPS are based on.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Compulsory memory traffic of one `C += A·B` in bytes: each operand
/// read once (`A: m×k`, `B: k×n`) and `C` read and written once. Real
/// kernels move more (re-fetches when the working set exceeds cache);
/// this floor is the denominator of the *analytic* arithmetic intensity,
/// the number a measured LLC-traffic estimate is compared against.
pub fn gemm_min_bytes(m: usize, n: usize, k: usize, elem_bytes: usize) -> u64 {
    let (m, n, k, b) = (m as u64, n as u64, k as u64, elem_bytes as u64);
    (m * k + k * n + 2 * m * n) * b
}

/// Analytic arithmetic intensity (flops per compulsory byte) of one
/// GEMM — `gemm_flops / gemm_min_bytes`. Grows like `n/2·bytes` for
/// square matrices, which is why GEMM leaves the bandwidth roof so
/// quickly.
pub fn gemm_arithmetic_intensity(m: usize, n: usize, k: usize, elem_bytes: usize) -> f64 {
    gemm_flops(m, n, k) as f64 / gemm_min_bytes(m, n, k, elem_bytes) as f64
}

/// The six orderings of the GEMM triple loop.
///
/// The names list the loops outermost-first; `i` indexes rows of `C`,
/// `j` columns of `C`, and `k` the contraction dimension. Orderings with
/// `j` innermost stream row-major `B`/`C` rows; orderings with `i`
/// innermost stream column-major `A`/`C` columns; `ijk`/`jik` compute one
/// dot product per element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopOrder {
    /// Dot-product form, row-major friendly outer loops.
    Ijk,
    /// Row-streaming saxpy form (the C/OpenMP and Numba kernels).
    Ikj,
    /// Dot-product form, column-first outer loops.
    Jik,
    /// Column-streaming saxpy form (the Julia kernel, with `l` = `k`).
    Jki,
    /// `k` outermost, row streaming inner.
    Kij,
    /// `k` outermost, column streaming inner.
    Kji,
}

impl LoopOrder {
    /// All six orders, for ablation sweeps.
    pub const ALL: [LoopOrder; 6] = [
        LoopOrder::Ijk,
        LoopOrder::Ikj,
        LoopOrder::Jik,
        LoopOrder::Jki,
        LoopOrder::Kij,
        LoopOrder::Kji,
    ];

    /// Lower-case name, e.g. `"ikj"`.
    pub fn name(&self) -> &'static str {
        match self {
            LoopOrder::Ijk => "ijk",
            LoopOrder::Ikj => "ikj",
            LoopOrder::Jik => "jik",
            LoopOrder::Jki => "jki",
            LoopOrder::Kij => "kij",
            LoopOrder::Kji => "kji",
        }
    }
}

fn check_shapes<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, c: &Matrix<T>) -> (usize, usize, usize) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(a.rows(), c.rows(), "C rows must match A rows");
    assert_eq!(b.cols(), c.cols(), "C cols must match B cols");
    (a.rows(), b.cols(), a.cols())
}

/// Runs `C += A · B` with the given loop order. Works for any layout
/// combination; cache behaviour (not correctness) depends on how order and
/// layout align.
pub fn gemm_loop_order<T: Scalar>(
    order: LoopOrder,
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T>,
) {
    let (m, n, k) = check_shapes(a, b, c);
    match order {
        LoopOrder::Ijk => {
            for i in 0..m {
                for j in 0..n {
                    let mut acc = c[(i, j)];
                    for l in 0..k {
                        acc += a[(i, l)] * b[(l, j)];
                    }
                    c[(i, j)] = acc;
                }
            }
        }
        LoopOrder::Ikj => {
            for i in 0..m {
                for l in 0..k {
                    let t = a[(i, l)];
                    for j in 0..n {
                        c[(i, j)] += t * b[(l, j)];
                    }
                }
            }
        }
        LoopOrder::Jik => {
            for j in 0..n {
                for i in 0..m {
                    let mut acc = c[(i, j)];
                    for l in 0..k {
                        acc += a[(i, l)] * b[(l, j)];
                    }
                    c[(i, j)] = acc;
                }
            }
        }
        LoopOrder::Jki => {
            for j in 0..n {
                for l in 0..k {
                    let t = b[(l, j)];
                    for i in 0..m {
                        c[(i, j)] += t * a[(i, l)];
                    }
                }
            }
        }
        LoopOrder::Kij => {
            for l in 0..k {
                for i in 0..m {
                    let t = a[(i, l)];
                    for j in 0..n {
                        c[(i, j)] += t * b[(l, j)];
                    }
                }
            }
        }
        LoopOrder::Kji => {
            for l in 0..k {
                for j in 0..n {
                    let t = b[(l, j)];
                    for i in 0..m {
                        c[(i, j)] += t * a[(i, l)];
                    }
                }
            }
        }
    }
}

/// Cache-blocked `C += A · B` with square tiles of `tile` elements per
/// side. Used by the tiling ablation; the paper's kernels are unblocked.
pub fn gemm_blocked<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, c: &mut Matrix<T>, tile: usize) {
    assert!(tile > 0, "tile must be positive");
    let (m, n, k) = check_shapes(a, b, c);
    for i0 in (0..m).step_by(tile) {
        let i1 = (i0 + tile).min(m);
        for l0 in (0..k).step_by(tile) {
            let l1 = (l0 + tile).min(k);
            for j0 in (0..n).step_by(tile) {
                let j1 = (j0 + tile).min(n);
                for i in i0..i1 {
                    for l in l0..l1 {
                        let t = a[(i, l)];
                        for j in j0..j1 {
                            c[(i, j)] += t * b[(l, j)];
                        }
                    }
                }
            }
        }
    }
}

/// Computes `A · B` exactly once in `f64` accumulation — the numerical
/// reference every kernel (CPU and simulated GPU) is verified against.
pub fn gemm_reference_f64<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>) -> Matrix<f64> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let mut c = Matrix::<f64>::zeros(m, n, a.layout());
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for l in 0..k {
                acc += a[(i, l)].to_f64() * b[(l, j)].to_f64();
            }
            c[(i, j)] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Layout;
    use perfport_half::F16;

    #[test]
    fn flop_count() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
        assert_eq!(gemm_flops(1024, 1024, 1024), 2 * 1024u64.pow(3));
        assert_eq!(gemm_flops(0, 5, 5), 0);
    }

    #[test]
    fn loop_order_names() {
        let names: Vec<_> = LoopOrder::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names, vec!["ijk", "ikj", "jik", "jki", "kij", "kji"]);
    }

    #[test]
    fn all_orders_agree_with_reference_f64() {
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let a = Matrix::<f64>::random(13, 9, layout, 1);
            let b = Matrix::<f64>::random(9, 11, layout, 2);
            let reference = gemm_reference_f64(&a, &b);
            for order in LoopOrder::ALL {
                let mut c = Matrix::<f64>::zeros(13, 11, layout);
                gemm_loop_order(order, &a, &b, &mut c);
                assert!(
                    c.max_abs_diff(&reference) < 1e-12,
                    "{} diverged in {layout}",
                    order.name()
                );
            }
        }
    }

    #[test]
    fn orders_agree_in_f32_within_tolerance() {
        let a = Matrix::<f32>::random(16, 16, Layout::RowMajor, 3);
        let b = Matrix::<f32>::random(16, 16, Layout::RowMajor, 4);
        let reference = gemm_reference_f64(&a, &b);
        for order in LoopOrder::ALL {
            let mut c = Matrix::<f32>::zeros(16, 16, Layout::RowMajor);
            gemm_loop_order(order, &a, &b, &mut c);
            let cast: Matrix<f64> = c.cast();
            assert!(cast.max_abs_diff(&reference) < 1e-4, "{}", order.name());
        }
    }

    #[test]
    fn f16_gemm_small_exact() {
        // With small integer values everything is exact even in half.
        let a =
            Matrix::<F16>::from_fn(3, 3, Layout::RowMajor, |i, j| F16::from_f64((i + j) as f64));
        let b = Matrix::<F16>::from_fn(3, 3, Layout::RowMajor, |i, j| {
            F16::from_f64((i * 3 + j) as f64 % 4.0)
        });
        let reference = gemm_reference_f64(&a, &b);
        let mut c = Matrix::<F16>::zeros(3, 3, Layout::RowMajor);
        gemm_loop_order(LoopOrder::Ikj, &a, &b, &mut c);
        let cast: Matrix<f64> = c.cast();
        assert_eq!(cast.max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = Matrix::<f64>::from_fn(2, 2, Layout::RowMajor, |_, _| 1.0);
        let b = a.clone();
        let mut c = Matrix::<f64>::from_fn(2, 2, Layout::RowMajor, |_, _| 10.0);
        gemm_loop_order(LoopOrder::Ijk, &a, &b, &mut c);
        // C = 10 + 2 everywhere.
        assert!(c.as_slice().iter().all(|&x| x == 12.0));
    }

    #[test]
    fn blocked_matches_reference_for_all_tiles() {
        let a = Matrix::<f64>::random(20, 17, Layout::RowMajor, 5);
        let b = Matrix::<f64>::random(17, 23, Layout::RowMajor, 6);
        let reference = gemm_reference_f64(&a, &b);
        for tile in [1, 2, 3, 7, 8, 16, 64] {
            let mut c = Matrix::<f64>::zeros(20, 23, Layout::RowMajor);
            gemm_blocked(&a, &b, &mut c, tile);
            assert!(c.max_abs_diff(&reference) < 1e-12, "tile {tile}");
        }
    }

    #[test]
    fn rectangular_shapes() {
        let a = Matrix::<f64>::random(1, 50, Layout::RowMajor, 7);
        let b = Matrix::<f64>::random(50, 2, Layout::RowMajor, 8);
        let reference = gemm_reference_f64(&a, &b);
        let mut c = Matrix::<f64>::zeros(1, 2, Layout::RowMajor);
        gemm_loop_order(LoopOrder::Jki, &a, &b, &mut c);
        assert!(c.max_abs_diff(&reference) < 1e-12);
    }

    #[test]
    fn empty_matrices_are_noops() {
        let a = Matrix::<f64>::zeros(0, 5, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(5, 0, Layout::RowMajor);
        let mut c = Matrix::<f64>::zeros(0, 0, Layout::RowMajor);
        gemm_loop_order(LoopOrder::Ikj, &a, &b, &mut c);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(2, 3, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(4, 2, Layout::RowMajor);
        let mut c = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        gemm_loop_order(LoopOrder::Ijk, &a, &b, &mut c);
    }
}
