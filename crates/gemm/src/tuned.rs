//! The measured vendor-BLAS stand-in: a packed, register-tiled,
//! cache-blocked GEMM.
//!
//! The paper's Table III divides each portable model's throughput by a
//! *vendor* library curve. The naive kernels in [`crate::serial`] and
//! [`crate::variants`] deliberately stop at loop ordering, so dividing by
//! them is naive-vs-naive. This module provides the honest denominator:
//! the standard BLAS decomposition (Goto/BLIS; see also "Flexible
//! Performant GEMM Kernels on GPUs", arXiv:2009.12263) of `C += A·B`
//! into
//!
//! 1. **Packing** — `Mc×Kc` blocks of `A` and `Kc×Nc` panels of `B` are
//!    copied once into contiguous, 64-byte-aligned buffers laid out in
//!    micropanel order, so the inner loop streams unit-stride regardless
//!    of the source [`Layout`] and never suffers a TLB/conflict miss;
//! 2. **Register tiling** — an `MR×NR` accumulator tile lives entirely
//!    in registers across the `Kc` contraction ([`TileShape`]); the
//!    microkernel is written so LLVM autovectorizes it (const-generic
//!    tile extents, unit-stride panel reads, no `fma` libcall);
//! 3. **Cache blocking** — `Kc` sizes the `B` micropanel to half of L1d,
//!    `Mc×Kc` sizes the `A` block to half of L2, and `Kc×Nc` sizes the
//!    `B` panel to an L3 share ([`BlockSizes::for_cache`], fed from
//!    [`CacheInfo`]).
//!
//! Parallelisation follows the paper's CPU strategy: macro-row-blocks of
//! `C` are the work-sharing index space on the existing [`ThreadPool`],
//! and every worker packs into a thread-local [`PackArena`] that is
//! reused across calls, so sweep loops do not reallocate per size point.
//!
//! The microkernel itself is dispatched **once per process** through
//! [`crate::simd`]: explicit AVX2+FMA / AVX-512 / NEON register tiles
//! when the CPU supports them (`PERFPORT_SIMD` overrides for A/B runs),
//! the autovectorized const-generic tile otherwise. See the `simd`
//! module docs for the dispatch contract and the FMA-contraction caveat.
//!
//! The result is generic over [`Scalar`]; `f32`/`f64` get their fast
//! paths through monomorphisation (the accumulator tile and panel loads
//! vectorise per element width), while the software [`F16`] packs
//! *widened*: the pack routines convert `f16 → f32` once per panel and
//! the contraction runs the native `f32` microkernel, so the O(n³) inner
//! loop never executes a software-half operation (each `C` element is
//! re-rounded to `f16` once per `Kc` panel). Accumulation order per
//! element of `C` is a fixed function of the `Kc` blocking alone, so
//! serial and parallel execution are bit-identical per dispatched
//! kernel.

use crate::matrix::{Layout, Matrix};
use crate::scalar::Scalar;
use crate::simd::{self, Isa};
use perfport_half::F16;
use perfport_pool::{
    CacheInfo, DisjointSlice, GraphStats, RegionStats, SchedMode, Schedule, TaskGraph, TaskId,
    ThreadPool,
};
use std::any::{Any, TypeId};
use std::cell::{RefCell, UnsafeCell};
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Register-tile extents of the microkernel: `MR` rows × `NR` columns of
/// `C` accumulated in registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileShape {
    /// Accumulator rows.
    pub mr: usize,
    /// Accumulator columns.
    pub nr: usize,
}

impl TileShape {
    /// The shapes the ablation sweeps (every combination the dispatch
    /// supports).
    pub const ALL: [TileShape; 4] = [
        TileShape { mr: 4, nr: 4 },
        TileShape { mr: 8, nr: 4 },
        TileShape { mr: 4, nr: 8 },
        TileShape { mr: 8, nr: 8 },
    ];

    /// Default tile for an element width: wide elements get the small
    /// square tile (the accumulator must fit the 16 SIMD registers of a
    /// baseline x86-64 target), narrow elements can afford a wider tile.
    pub fn default_for(elem_bytes: usize) -> TileShape {
        if elem_bytes >= 8 {
            TileShape { mr: 4, nr: 4 }
        } else {
            TileShape { mr: 4, nr: 8 }
        }
    }

    /// Default tile for an element width under a dispatched ISA.
    ///
    /// The portable fallback keeps the conservative [`default_for`]
    /// choice (the autovectorized accumulator must fit a baseline
    /// x86-64's 16 xmm registers). Native kernels hold one accumulator
    /// row in `NR·BYTES/width` registers, so they afford taller tiles:
    /// 256-bit ISAs (AVX2, and NEON with four 128-bit accumulators per
    /// row) take `8×4` for 8-byte elements and `8×8` for narrower ones;
    /// AVX-512 takes `8×8` so an `f64` row is exactly one zmm register.
    ///
    /// [`default_for`]: TileShape::default_for
    pub fn for_isa(isa: Isa, elem_bytes: usize) -> TileShape {
        match isa {
            Isa::Portable => Self::default_for(elem_bytes),
            Isa::Avx2 | Isa::Neon => {
                if elem_bytes >= 8 {
                    TileShape { mr: 8, nr: 4 }
                } else {
                    TileShape { mr: 8, nr: 8 }
                }
            }
            Isa::Avx512 => TileShape { mr: 8, nr: 8 },
        }
    }

    /// `"4x8"`-style identifier used in ablation tables.
    pub fn name(&self) -> String {
        format!("{}x{}", self.mr, self.nr)
    }
}

impl fmt::Display for TileShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.mr, self.nr)
    }
}

/// Cache-blocking extents: the loop structure is
/// `jc (Nc) → p (Kc) → ic (Mc) → jr (NR) → ir (MR)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizes {
    /// Rows of `A` packed per L2-resident block.
    pub mc: usize,
    /// Contraction depth per packed panel (L1-resident `B` micropanel).
    pub kc: usize,
    /// Columns of `B` packed per L3-resident panel.
    pub nc: usize,
}

impl BlockSizes {
    /// Sizes the blocks from cache capacities for `elem_bytes`-wide
    /// elements and `tile`:
    ///
    /// * `kc` so the `Kc×NR` `B` micropanel fills about half of L1d,
    /// * `mc` so the `Mc×Kc` packed `A` block fills about half of L2,
    /// * `nc` so the `Kc×Nc` packed `B` panel fills an eighth of the
    ///   shared L3 (its nominal per-thread share on a server core).
    pub fn for_cache(cache: CacheInfo, tile: TileShape, elem_bytes: usize) -> Self {
        let kc = (cache.l1d_bytes / 2 / (tile.nr * elem_bytes)).clamp(64, 512) & !3;
        let mc_raw = (cache.l2_bytes / 2 / (kc * elem_bytes)).clamp(tile.mr, 1024);
        let mc = mc_raw / tile.mr * tile.mr;
        let nc_raw = (cache.l3_bytes / 8 / (kc * elem_bytes)).clamp(tile.nr, 4096);
        let nc = nc_raw / tile.nr * tile.nr;
        BlockSizes { mc, kc, nc }
    }
}

/// A full tuned-kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunedParams {
    /// Microkernel register tile.
    pub tile: TileShape,
    /// Cache-blocking extents derived from the cache description.
    pub blocks: BlockSizes,
}

impl TunedParams {
    /// Parameters for `T` on caches `cache` with the portable default
    /// tile. Blocks are sized by [`Scalar::PACK_BYTES`] — the width of
    /// the elements that actually occupy the packed panels (`f32` for
    /// the widened `F16` path).
    pub fn for_cache<T: Scalar>(cache: CacheInfo) -> Self {
        Self::for_cache_isa::<T>(cache, Isa::Portable)
    }

    /// Parameters for `T` on caches `cache` with the tile the dispatched
    /// `isa`'s microkernel prefers ([`TileShape::for_isa`]).
    pub fn for_cache_isa<T: Scalar>(cache: CacheInfo, isa: Isa) -> Self {
        Self::with_tile(cache, TileShape::for_isa(isa, T::PACK_BYTES), T::PACK_BYTES)
    }

    /// Parameters for an explicit tile shape (ablation entry point).
    pub fn with_tile(cache: CacheInfo, tile: TileShape, elem_bytes: usize) -> Self {
        TunedParams {
            tile,
            blocks: BlockSizes::for_cache(cache, tile, elem_bytes),
        }
    }

    /// Parameters for `T` on the build host's detected caches and the
    /// process-wide dispatched ISA ([`simd::active`]).
    pub fn host<T: Scalar>() -> Self {
        Self::for_cache_isa::<T>(CacheInfo::host(), simd::active())
    }
}

// ------------------------------------------------------------ arena --

/// Alignment of packing buffers: one x86 cache line / typical maximal
/// SIMD register width.
const PACK_ALIGN: usize = 64;

/// A 64-byte-aligned, grow-only buffer of scalars.
///
/// Capacity only ever grows, so a sweep loop reusing one buffer across
/// size points allocates O(log sizes) times, not once per GEMM. Freshly
/// grown memory is zero-initialised (scalars are valid all-zeroes), and
/// the packing routines overwrite every element they later read.
struct AlignedBuf<T> {
    ptr: *mut T,
    cap: usize,
}

// SAFETY: the buffer exclusively owns its allocation; scalars are
// plain-old-data, so moving the handle across threads is fine.
unsafe impl<T: Send> Send for AlignedBuf<T> {}

impl<T: Scalar> AlignedBuf<T> {
    fn new() -> Self {
        AlignedBuf {
            ptr: std::ptr::null_mut(),
            cap: 0,
        }
    }

    fn layout(cap: usize) -> std::alloc::Layout {
        std::alloc::Layout::from_size_align(cap * std::mem::size_of::<T>(), PACK_ALIGN)
            .expect("packing buffer layout")
    }

    /// Grows capacity to at least `len` and returns the first `len`
    /// elements as a mutable slice.
    fn slice_for(&mut self, len: usize) -> &mut [T] {
        if len > self.cap {
            let new_cap = len.next_power_of_two();
            // SAFETY: layout has non-zero size (len > cap >= 0 and
            // scalars are non-zero-sized); old pointer/capacity came
            // from the same allocator.
            unsafe {
                if self.cap > 0 {
                    std::alloc::dealloc(self.ptr as *mut u8, Self::layout(self.cap));
                }
                let raw = std::alloc::alloc_zeroed(Self::layout(new_cap));
                if raw.is_null() {
                    std::alloc::handle_alloc_error(Self::layout(new_cap));
                }
                self.ptr = raw as *mut T;
            }
            self.cap = new_cap;
        }
        if len == 0 {
            return &mut [];
        }
        // SAFETY: `ptr` covers `cap >= len` zero-initialised (hence
        // valid) scalars and is exclusively owned.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, len) }
    }

    /// The first `len` elements, read-only. `len` must not exceed the
    /// capacity a prior [`AlignedBuf::slice_for`] established.
    fn as_slice(&self, len: usize) -> &[T] {
        assert!(len <= self.cap, "reading past the packed region");
        if len == 0 {
            return &[];
        }
        // SAFETY: `ptr` covers `cap >= len` valid scalars.
        unsafe { std::slice::from_raw_parts(self.ptr, len) }
    }
}

impl<T> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if self.cap > 0 {
            // SAFETY: allocated in `slice_for` with this exact layout.
            unsafe {
                let layout = std::alloc::Layout::from_size_align_unchecked(
                    self.cap * std::mem::size_of::<T>(),
                    PACK_ALIGN,
                );
                std::alloc::dealloc(self.ptr as *mut u8, layout);
            }
        }
    }
}

/// Reusable packing buffers for one worker thread.
///
/// Holding one of these across a sweep (or using the implicit
/// thread-local arena via [`gemm`]/the `Vendor` variant) means the hot
/// loop never calls the allocator after warm-up.
pub struct PackArena<T> {
    a: AlignedBuf<T>,
    b: AlignedBuf<T>,
    // Widened panels for the F16 path: packs convert f16 → f32 so the
    // contraction runs the native f32 microkernel. Empty for other T.
    aw: AlignedBuf<f32>,
    bw: AlignedBuf<f32>,
}

impl<T: Scalar> PackArena<T> {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        PackArena {
            a: AlignedBuf::new(),
            b: AlignedBuf::new(),
            aw: AlignedBuf::new(),
            bw: AlignedBuf::new(),
        }
    }

    /// Typed access to the widened `f32` packing buffers (`A`, `B`).
    ///
    /// The `F16` path packs into these — they exist on every arena
    /// regardless of `T`, so the dispatcher never has to reinterpret a
    /// `PackArena<T>` as a `PackArena<F16>`; an arena checked out for one
    /// scalar type can therefore never alias buffers of another.
    fn widened(&mut self) -> (&mut AlignedBuf<f32>, &mut AlignedBuf<f32>) {
        (&mut self.aw, &mut self.bw)
    }
}

impl<T: Scalar> Default for PackArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// Per-thread arenas keyed by scalar type, reused across every tuned
    /// GEMM this thread ever runs (pool workers are persistent, so a
    /// size sweep packs into the same two buffers throughout).
    static THREAD_ARENAS: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// Runs `f` with this thread's reusable arena for `T`.
pub fn with_thread_arena<T: Scalar, R>(f: impl FnOnce(&mut PackArena<T>) -> R) -> R {
    THREAD_ARENAS.with(|map| {
        let mut map = map.borrow_mut();
        let entry = map
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(PackArena::<T>::new()));
        f(entry
            .downcast_mut::<PackArena<T>>()
            .expect("arena type keyed by TypeId"))
    })
}

// ---------------------------------------------------------- counters --

/// Instrumentation of one tuned-GEMM invocation, exported through
/// `perfport-trace` by the public entry points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TunedStats {
    /// Bytes copied into packed `A` blocks.
    pub pack_a_bytes: u64,
    /// Bytes copied into packed `B` panels.
    pub pack_b_bytes: u64,
    /// Microkernel invocations (full `MR×NR` tiles, edges included).
    pub microkernel_calls: u64,
}

impl TunedStats {
    fn emit(&self, tile: TileShape, isa: Isa) {
        perfport_telemetry::counter_add("gemm/invocations", 1);
        perfport_telemetry::counter_add("gemm/pack_a_bytes", self.pack_a_bytes);
        perfport_telemetry::counter_add("gemm/pack_b_bytes", self.pack_b_bytes);
        perfport_telemetry::counter_add("gemm/microkernel_calls", self.microkernel_calls);
        if perfport_trace::enabled() {
            perfport_trace::counter("gemm", "tuned_pack_a_bytes", self.pack_a_bytes as f64);
            perfport_trace::counter("gemm", "tuned_pack_b_bytes", self.pack_b_bytes as f64);
            perfport_trace::counter(
                "gemm",
                "tuned_microkernel_calls",
                self.microkernel_calls as f64,
            );
            perfport_trace::instant(
                "gemm",
                "tuned_tile",
                vec![
                    ("mr".to_string(), (tile.mr as u64).into()),
                    ("nr".to_string(), (tile.nr as u64).into()),
                    ("isa".to_string(), isa.name().into()),
                ],
            );
        }
    }
}

// ----------------------------------------------------------- packing --

/// Row/column strides of a matrix's storage under its layout.
#[inline]
fn strides<T: Scalar>(m: &Matrix<T>) -> (usize, usize) {
    match m.layout() {
        Layout::RowMajor => (m.cols(), 1),
        Layout::ColMajor => (1, m.rows()),
    }
}

/// Packs the `A` block `rows i0..i0+mb × k p0..p0+kb` into `MR`-row
/// micropanels: micropanel `ir` stores element `(i0 + ir*MR + r, p0 + p)`
/// at `ir*kb*MR + p*MR + r`, zero-padding rows past the block edge so
/// the microkernel never needs a row bound check.
fn pack_a<T: Scalar>(
    a: &Matrix<T>,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
    mr: usize,
    buf: &mut AlignedBuf<T>,
) -> u64 {
    let panels = mb.div_ceil(mr);
    let dst = buf.slice_for(panels * kb * mr);
    let (rs, cs) = strides(a);
    let ad = a.as_slice();
    let mut off = 0;
    for ir in 0..panels {
        let base_row = i0 + ir * mr;
        let live = mr.min(i0 + mb - base_row);
        for p in 0..kb {
            let col_off = (p0 + p) * cs;
            for r in 0..live {
                dst[off + r] = ad[(base_row + r) * rs + col_off];
            }
            for r in live..mr {
                dst[off + r] = T::zero();
            }
            off += mr;
        }
    }
    (panels * kb * mr * std::mem::size_of::<T>()) as u64
}

/// Packs the `B` panel `k p0..p0+kb × cols j0..j0+nb` into `NR`-column
/// micropanels: micropanel `jr` stores element `(p0 + p, j0 + jr*NR + c)`
/// at `jr*kb*NR + p*NR + c`, zero-padded past the panel edge.
fn pack_b<T: Scalar>(
    b: &Matrix<T>,
    p0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
    nr: usize,
    buf: &mut AlignedBuf<T>,
) -> u64 {
    let panels = nb.div_ceil(nr);
    let dst = buf.slice_for(panels * kb * nr);
    let (rs, cs) = strides(b);
    let bd = b.as_slice();
    let mut off = 0;
    for jr in 0..panels {
        let base_col = j0 + jr * nr;
        let live = nr.min(j0 + nb - base_col);
        for p in 0..kb {
            let row_off = (p0 + p) * rs;
            for c in 0..live {
                dst[off + c] = bd[row_off + (base_col + c) * cs];
            }
            for c in live..nr {
                dst[off + c] = T::zero();
            }
            off += nr;
        }
    }
    (panels * kb * nr * std::mem::size_of::<T>()) as u64
}

/// Packs the `A` block like [`pack_a`] but *widened*: source elements
/// are `f16`, the packed micropanels hold their exact `f32` values
/// ([`F16::widen_slice`] for the contiguous column-major case). Reported
/// bytes are the widened bytes actually copied.
fn pack_a_f16(
    a: &Matrix<F16>,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
    mr: usize,
    buf: &mut AlignedBuf<f32>,
) -> u64 {
    let panels = mb.div_ceil(mr);
    let dst = buf.slice_for(panels * kb * mr);
    let (rs, cs) = strides(a);
    let ad = a.as_slice();
    let mut off = 0;
    for ir in 0..panels {
        let base_row = i0 + ir * mr;
        let live = mr.min(i0 + mb - base_row);
        for p in 0..kb {
            let col_off = (p0 + p) * cs;
            if rs == 1 {
                let src = &ad[base_row + col_off..base_row + col_off + live];
                F16::widen_slice(src, &mut dst[off..off + live]);
            } else {
                for r in 0..live {
                    dst[off + r] = ad[(base_row + r) * rs + col_off].to_f32();
                }
            }
            for r in live..mr {
                dst[off + r] = 0.0;
            }
            off += mr;
        }
    }
    (panels * kb * mr * std::mem::size_of::<f32>()) as u64
}

/// Packs the `B` panel like [`pack_b`] but widened to `f32` (see
/// [`pack_a_f16`]).
fn pack_b_f16(
    b: &Matrix<F16>,
    p0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
    nr: usize,
    buf: &mut AlignedBuf<f32>,
) -> u64 {
    let panels = nb.div_ceil(nr);
    let dst = buf.slice_for(panels * kb * nr);
    let (rs, cs) = strides(b);
    let bd = b.as_slice();
    let mut off = 0;
    for jr in 0..panels {
        let base_col = j0 + jr * nr;
        let live = nr.min(j0 + nb - base_col);
        for p in 0..kb {
            let row_off = (p0 + p) * rs;
            if cs == 1 {
                let src = &bd[row_off + base_col..row_off + base_col + live];
                F16::widen_slice(src, &mut dst[off..off + live]);
            } else {
                for c in 0..live {
                    dst[off + c] = bd[row_off + (base_col + c) * cs].to_f32();
                }
            }
            for c in live..nr {
                dst[off + c] = 0.0;
            }
            off += nr;
        }
    }
    (panels * kb * nr * std::mem::size_of::<f32>()) as u64
}

// ------------------------------------------------------------- driver --

/// The scalar-flavour hooks of the blocked loop nest: how `A`/`B` panels
/// are packed (possibly widened), how an accumulator value lands in `C`,
/// and which arena buffers the packs use. The loop nest itself is
/// written exactly once ([`run_blocked`], [`compute_block`],
/// [`run_pipelined`]) and parameterized over an implementation:
///
/// * [`PlainOps`] — `f64`/`f32` (and any hardware float): packs copy,
///   the accumulator adds in place.
/// * [`WidenedF16Ops`] — the software-half path: packs convert
///   `f16 → f32`, the contraction runs the native `f32` microkernel, and
///   each `C` element is re-rounded to `f16` once per `Kc` panel. One
///   rounding per panel (instead of one per multiply-accumulate) makes
///   this path *more* accurate than the naive software-half kernels, and
///   the rounding points are a fixed function of the `Kc` blocking, so
///   serial ≡ parallel still holds bitwise per dispatched kernel.
trait PackOps {
    /// Element type of `A`, `B`, and `C`.
    type Src: Scalar;
    /// Element type inside packed panels and the microkernel.
    type Pack: Scalar;

    /// Packs one `A` block (see [`pack_a`]); returns bytes copied.
    fn pack_a(
        a: &Matrix<Self::Src>,
        i0: usize,
        mb: usize,
        p0: usize,
        kb: usize,
        mr: usize,
        buf: &mut AlignedBuf<Self::Pack>,
    ) -> u64;

    /// Packs one `B` panel (see [`pack_b`]); returns bytes copied.
    fn pack_b(
        b: &Matrix<Self::Src>,
        p0: usize,
        kb: usize,
        j0: usize,
        nb: usize,
        nr: usize,
        buf: &mut AlignedBuf<Self::Pack>,
    ) -> u64;

    /// Accumulates one microkernel output element into `C`.
    fn accumulate(c: &mut Self::Src, v: Self::Pack);

    /// The arena buffers (`A`, `B`) this flavour packs into.
    fn bufs(
        arena: &mut PackArena<Self::Src>,
    ) -> (&mut AlignedBuf<Self::Pack>, &mut AlignedBuf<Self::Pack>);
}

/// [`PackOps`] for scalars whose packed panels hold the scalar itself.
struct PlainOps<T>(std::marker::PhantomData<T>);

impl<T: Scalar> PackOps for PlainOps<T> {
    type Src = T;
    type Pack = T;

    fn pack_a(
        a: &Matrix<T>,
        i0: usize,
        mb: usize,
        p0: usize,
        kb: usize,
        mr: usize,
        buf: &mut AlignedBuf<T>,
    ) -> u64 {
        pack_a(a, i0, mb, p0, kb, mr, buf)
    }

    fn pack_b(
        b: &Matrix<T>,
        p0: usize,
        kb: usize,
        j0: usize,
        nb: usize,
        nr: usize,
        buf: &mut AlignedBuf<T>,
    ) -> u64 {
        pack_b(b, p0, kb, j0, nb, nr, buf)
    }

    #[inline(always)]
    fn accumulate(c: &mut T, v: T) {
        *c += v;
    }

    fn bufs(arena: &mut PackArena<T>) -> (&mut AlignedBuf<T>, &mut AlignedBuf<T>) {
        (&mut arena.a, &mut arena.b)
    }
}

/// [`PackOps`] for the widened software-half path (`F16` source, `f32`
/// panels and microkernel).
struct WidenedF16Ops;

impl PackOps for WidenedF16Ops {
    type Src = F16;
    type Pack = f32;

    fn pack_a(
        a: &Matrix<F16>,
        i0: usize,
        mb: usize,
        p0: usize,
        kb: usize,
        mr: usize,
        buf: &mut AlignedBuf<f32>,
    ) -> u64 {
        pack_a_f16(a, i0, mb, p0, kb, mr, buf)
    }

    fn pack_b(
        b: &Matrix<F16>,
        p0: usize,
        kb: usize,
        j0: usize,
        nb: usize,
        nr: usize,
        buf: &mut AlignedBuf<f32>,
    ) -> u64 {
        pack_b_f16(b, p0, kb, j0, nb, nr, buf)
    }

    #[inline(always)]
    fn accumulate(c: &mut F16, v: f32) {
        *c = F16::from_f32(c.to_f32() + v);
    }

    fn bufs(arena: &mut PackArena<F16>) -> (&mut AlignedBuf<f32>, &mut AlignedBuf<f32>) {
        arena.widened()
    }
}

/// One `(jc, p0)` cache panel of the blocked loop nest: column offset and
/// width, contraction offset and depth.
#[derive(Debug, Clone, Copy)]
struct Panel {
    jc: usize,
    nb: usize,
    p0: usize,
    kb: usize,
}

/// The `(jc, p0)` panels of an `n×k` iteration space in the serial loop
/// order (`jc` outer, `p0` inner) — the accumulation order per `C`
/// element is a fixed function of this enumeration, which both
/// schedulers share.
fn panels(n: usize, k: usize, blocks: &BlockSizes) -> Vec<Panel> {
    let mut out = Vec::new();
    for jc in (0..n).step_by(blocks.nc) {
        let nb = blocks.nc.min(n - jc);
        for p0 in (0..k).step_by(blocks.kc) {
            let kb = blocks.kc.min(k - p0);
            out.push(Panel { jc, nb, p0, kb });
        }
    }
    out
}

/// Packs `A` and runs the register-tiled contraction of one `Mc` row
/// block against an already-packed `B` panel, accumulating into `C`.
/// Shared verbatim by the barrier-mode loop nest ([`run_blocked`]) and
/// the pipelined graph tasks ([`run_pipelined`]) — per `C` element the
/// accumulation order is fixed by the panel enumeration and this
/// function alone, which is what keeps the two schedulers
/// bitwise-identical.
///
/// SAFETY requirement: the caller must own rows `i0..i0+mb` of `C`
/// exclusively per the [`DisjointSlice`] contract.
#[allow(clippy::too_many_arguments)]
fn compute_block<P: PackOps, const MR: usize, const NR: usize>(
    a: &Matrix<P::Src>,
    c: &DisjointSlice<'_, P::Src>,
    c_shape: (usize, usize),
    c_layout: Layout,
    panel: Panel,
    i0: usize,
    mb: usize,
    bp_all: &[P::Pack],
    a_buf: &mut AlignedBuf<P::Pack>,
    microkernel: simd::Microkernel<P::Pack, MR, NR>,
) -> TunedStats {
    let (m, n) = c_shape;
    let Panel { jc, nb, p0, kb } = panel;
    let mut stats = TunedStats {
        pack_a_bytes: P::pack_a(a, i0, mb, p0, kb, MR, a_buf),
        ..TunedStats::default()
    };
    let ap_all = a_buf.as_slice(mb.div_ceil(MR) * kb * MR);
    for jr in 0..nb.div_ceil(NR) {
        let j_base = jc + jr * NR;
        let jlim = NR.min(jc + nb - j_base);
        let bp = &bp_all[jr * kb * NR..(jr + 1) * kb * NR];
        for ir in 0..mb.div_ceil(MR) {
            let i_base = i0 + ir * MR;
            let ilim = MR.min(i0 + mb - i_base);
            let ap = &ap_all[ir * kb * MR..(ir + 1) * kb * MR];
            let acc = microkernel(kb, ap, bp);
            stats.microkernel_calls += 1;
            match c_layout {
                Layout::RowMajor => {
                    for (r, acc_row) in acc.iter().enumerate().take(ilim) {
                        // SAFETY: row ownership (see above).
                        let crow = unsafe { c.row(i_base + r, n) };
                        for (cj, &v) in crow[j_base..j_base + jlim].iter_mut().zip(acc_row) {
                            P::accumulate(cj, v);
                        }
                    }
                }
                Layout::ColMajor => {
                    for (r, acc_row) in acc.iter().enumerate().take(ilim) {
                        for (cix, &v) in acc_row.iter().enumerate().take(jlim) {
                            let idx = c_layout.index(m, n, i_base + r, j_base + cix);
                            // SAFETY: row ownership (see above); each
                            // element belongs to exactly one owned row.
                            unsafe {
                                P::accumulate(c.at(idx), v);
                            }
                        }
                    }
                }
            }
        }
    }
    stats
}

/// The blocked loop nest over one contiguous row range of `C`, written
/// once for every scalar flavour (see [`PackOps`]).
#[allow(clippy::too_many_arguments)]
fn run_blocked<P: PackOps, const MR: usize, const NR: usize>(
    a: &Matrix<P::Src>,
    b: &Matrix<P::Src>,
    c: &DisjointSlice<'_, P::Src>,
    c_shape: (usize, usize),
    c_layout: Layout,
    rows: Range<usize>,
    blocks: &BlockSizes,
    a_buf: &mut AlignedBuf<P::Pack>,
    b_buf: &mut AlignedBuf<P::Pack>,
    isa: Isa,
) -> TunedStats {
    let (_, n) = c_shape;
    let k = a.cols();
    let mc = blocks.mc;
    let microkernel = simd::select::<P::Pack, MR, NR>(isa);
    let mut stats = TunedStats::default();

    for panel in panels(n, k, blocks) {
        stats.pack_b_bytes += P::pack_b(b, panel.p0, panel.kb, panel.jc, panel.nb, NR, b_buf);
        let bp_len = panel.nb.div_ceil(NR) * panel.kb * NR;
        for i0 in (rows.start..rows.end).step_by(mc) {
            let mb = mc.min(rows.end - i0);
            let s = compute_block::<P, MR, NR>(
                a,
                c,
                c_shape,
                c_layout,
                panel,
                i0,
                mb,
                b_buf.as_slice(bp_len),
                a_buf,
                microkernel,
            );
            stats.pack_a_bytes += s.pack_a_bytes;
            stats.microkernel_calls += s.microkernel_calls;
        }
    }
    stats
}

// --------------------------------------------------------- pipelining --

/// Cumulative nanoseconds during which packing of `B` panel `s`
/// overlapped microkernel execution on panel `s-1`, across every
/// pipelined GEMM in this process.
static PACK_OVERLAP_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Cumulative pack/compute overlap achieved by the pipelined graph
/// scheduler in this process, in nanoseconds (also emitted per GEMM as
/// the `gemm/tuned_pack_overlap_ns` trace counter). Zero under the
/// barrier scheduler or a single worker — overlap needs a second thread.
pub fn pack_overlap_ns() -> u64 {
    PACK_OVERLAP_TOTAL.load(Ordering::Relaxed)
}

/// A packing buffer shared between graph tasks. Interior mutability is
/// required because the pack task of panel `s` (writer) and the compute
/// tasks of panel `s` (readers) hold the same buffer while the graph's
/// dependency edges — not Rust borrows — serialise the access.
struct SharedBuf<T>(UnsafeCell<AlignedBuf<T>>);

impl<T: Scalar> SharedBuf<T> {
    fn new() -> Self {
        SharedBuf(UnsafeCell::new(AlignedBuf::new()))
    }
}

// SAFETY: every access is ordered by TaskGraph happens-before edges:
// pack[s] (the unique writer of buffer s % 2) depends on every reader of
// the buffer's previous contents (compute[s-2][*]), and every reader of
// the new contents (compute[s][*]) depends on pack[s].
unsafe impl<T: Send> Sync for SharedBuf<T> {}

/// The software-pipelined tuned GEMM: one dependency graph in which
/// packing the next `Kc×Nc` `B` panel overlaps microkernel execution on
/// the current panel.
///
/// * `B` panels are double-buffered: panel `s` packs into buffer
///   `s % 2`, and its pack task depends only on the *readers of that
///   buffer's previous contents* (`compute[s-2][*]`) — not on all of
///   panel `s-1`'s compute, which is the barrier the fork-join nest
///   paid per panel.
/// * Compute task `(s, r)` (row block `r` against panel `s`) depends on
///   `pack[s]` and on `compute[s-1][r]`. The second edge keeps each `C`
///   row block's panel order exactly serial (bitwise-identical results)
///   and guarantees no two live mutable borrows of the same row.
/// * `A` blocks are packed inside the compute tasks via the worker's
///   thread-local arena, exactly as in barrier mode.
///
/// Returns the packing/microkernel counters plus the graph run's
/// instrumentation; the measured pack/compute overlap feeds
/// [`pack_overlap_ns`].
#[allow(clippy::too_many_arguments)]
fn run_pipelined<P: PackOps, const MR: usize, const NR: usize>(
    pool: &ThreadPool,
    a: &Matrix<P::Src>,
    b: &Matrix<P::Src>,
    c: &DisjointSlice<'_, P::Src>,
    c_shape: (usize, usize),
    c_layout: Layout,
    blocks: &BlockSizes,
    isa: Isa,
) -> (TunedStats, GraphStats) {
    let (m, n) = c_shape;
    let k = a.cols();
    let mc = blocks.mc;
    let microkernel = simd::select::<P::Pack, MR, NR>(isa);
    let panels = panels(n, k, blocks);
    let row_blocks: Vec<(usize, usize)> =
        (0..m).step_by(mc).map(|i0| (i0, mc.min(m - i0))).collect();
    if panels.is_empty() || row_blocks.is_empty() {
        // Nothing to contract or no C rows: C is already correct, and
        // building pack tasks without compute readers would break the
        // buffer-exclusivity argument above.
        return (TunedStats::default(), TaskGraph::new().run(pool));
    }

    let pack_a_total = AtomicU64::new(0);
    let pack_b_total = AtomicU64::new(0);
    let micro_total = AtomicU64::new(0);
    // Double-buffered B panels: panel s packs into buffer s % 2.
    let b_bufs = [SharedBuf::<P::Pack>::new(), SharedBuf::<P::Pack>::new()];
    // Overlap instrumentation: [start, end] ns since `epoch` of each
    // panel's pack task and of its compute tasks' union window.
    let epoch = Instant::now();
    let pack_win: Vec<(AtomicU64, AtomicU64)> = (0..panels.len())
        .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
        .collect();
    let compute_win: Vec<(AtomicU64, AtomicU64)> = (0..panels.len())
        .map(|_| (AtomicU64::new(u64::MAX), AtomicU64::new(0)))
        .collect();

    let mut graph = TaskGraph::new();
    // compute[s-1][*] / compute[s-2][*] ids, carried across panels
    // (including jc boundaries — row-block order stays serial end to
    // end).
    let mut one_ago: Vec<TaskId> = Vec::new();
    let mut two_ago: Vec<TaskId> = Vec::new();
    for (s, &panel) in panels.iter().enumerate() {
        let buf = &b_bufs[s % 2];
        let (pb_total, pwin) = (&pack_b_total, &pack_win[s]);
        let pack = graph.add(&two_ago, move || {
            let t0 = epoch.elapsed().as_nanos() as u64;
            // SAFETY: exclusive access per the SharedBuf contract.
            let b_buf = unsafe { &mut *buf.0.get() };
            let bytes = P::pack_b(b, panel.p0, panel.kb, panel.jc, panel.nb, NR, b_buf);
            pb_total.fetch_add(bytes, Ordering::Relaxed);
            pwin.0.store(t0, Ordering::Relaxed);
            let t1 = epoch.elapsed().as_nanos() as u64;
            pwin.1.store(t1, Ordering::Relaxed);
            perfport_telemetry::observe("gemm/pack_ns", t1.saturating_sub(t0));
        });
        let mut this_panel = Vec::with_capacity(row_blocks.len());
        for (r, &(i0, mb)) in row_blocks.iter().enumerate() {
            let deps: Vec<TaskId> = match one_ago.get(r) {
                Some(&prev) => vec![pack, prev],
                None => vec![pack],
            };
            let (pa_total, mk_total) = (&pack_a_total, &micro_total);
            let cwin = &compute_win[s];
            let id = graph.add(&deps, move || {
                let t0 = epoch.elapsed().as_nanos() as u64;
                let bp_len = panel.nb.div_ceil(NR) * panel.kb * NR;
                // SAFETY: shared read access per the SharedBuf contract
                // (pack[s] happened-before this task).
                let bp_all = unsafe { (*buf.0.get()).as_slice(bp_len) };
                let stats = with_thread_arena(|arena: &mut PackArena<P::Src>| {
                    let (a_buf, _) = P::bufs(arena);
                    compute_block::<P, MR, NR>(
                        a,
                        c,
                        c_shape,
                        c_layout,
                        panel,
                        i0,
                        mb,
                        bp_all,
                        a_buf,
                        microkernel,
                    )
                });
                pa_total.fetch_add(stats.pack_a_bytes, Ordering::Relaxed);
                mk_total.fetch_add(stats.microkernel_calls, Ordering::Relaxed);
                cwin.0.fetch_min(t0, Ordering::Relaxed);
                let t1 = epoch.elapsed().as_nanos() as u64;
                cwin.1.fetch_max(t1, Ordering::Relaxed);
                perfport_telemetry::observe("gemm/compute_ns", t1.saturating_sub(t0));
            });
            this_panel.push(id);
        }
        two_ago = std::mem::replace(&mut one_ago, this_panel);
    }
    let gstats = graph.run(pool);

    // Pipelining yield: how long pack[s] ran while panel s-1 was still
    // computing. (With one worker or one panel this is zero.)
    let mut overlap = 0u64;
    for s in 1..panels.len() {
        let (ps, pe) = (
            pack_win[s].0.load(Ordering::Relaxed),
            pack_win[s].1.load(Ordering::Relaxed),
        );
        let (cs, ce) = (
            compute_win[s - 1].0.load(Ordering::Relaxed),
            compute_win[s - 1].1.load(Ordering::Relaxed),
        );
        if cs != u64::MAX {
            overlap += pe.min(ce).saturating_sub(ps.max(cs));
        }
    }
    PACK_OVERLAP_TOTAL.fetch_add(overlap, Ordering::Relaxed);
    perfport_telemetry::counter_add("gemm/pack_overlap_ns", overlap);
    if perfport_trace::enabled() {
        perfport_trace::counter("gemm", "tuned_pack_overlap_ns", overlap as f64);
    }

    let totals = TunedStats {
        pack_a_bytes: pack_a_total.into_inner(),
        pack_b_bytes: pack_b_total.into_inner(),
        microkernel_calls: micro_total.into_inner(),
    };
    (totals, gstats)
}

/// Tile + scalar dispatch for [`run_pipelined`] (the graph-scheduler
/// analogue of the dispatch in [`gemm_rows_with_isa`]).
#[allow(clippy::too_many_arguments)]
fn run_pipelined_dispatch<T: Scalar>(
    pool: &ThreadPool,
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &DisjointSlice<'_, T>,
    c_shape: (usize, usize),
    c_layout: Layout,
    params: &TunedParams,
    isa: Isa,
) -> (TunedStats, GraphStats) {
    if TypeId::of::<T>() == TypeId::of::<F16>() {
        let a16 = (a as &dyn Any)
            .downcast_ref::<Matrix<F16>>()
            .expect("T is F16");
        let b16 = (b as &dyn Any)
            .downcast_ref::<Matrix<F16>>()
            .expect("T is F16");
        // SAFETY: `T` is exactly `F16` (checked above), so the cast is
        // the identity (see `gemm_rows_with_isa`).
        let c16 = unsafe { &*(c as *const DisjointSlice<'_, T>).cast::<DisjointSlice<'_, F16>>() };
        let run = match (params.tile.mr, params.tile.nr) {
            (4, 4) => run_pipelined::<WidenedF16Ops, 4, 4>,
            (8, 4) => run_pipelined::<WidenedF16Ops, 8, 4>,
            (4, 8) => run_pipelined::<WidenedF16Ops, 4, 8>,
            (8, 8) => run_pipelined::<WidenedF16Ops, 8, 8>,
            _ => panic!("unsupported tile shape {}", params.tile),
        };
        return run(pool, a16, b16, c16, c_shape, c_layout, &params.blocks, isa);
    }
    let run = match (params.tile.mr, params.tile.nr) {
        (4, 4) => run_pipelined::<PlainOps<T>, 4, 4>,
        (8, 4) => run_pipelined::<PlainOps<T>, 8, 4>,
        (4, 8) => run_pipelined::<PlainOps<T>, 4, 8>,
        (8, 8) => run_pipelined::<PlainOps<T>, 8, 8>,
        _ => panic!("unsupported tile shape {}", params.tile),
    };
    run(pool, a, b, c, c_shape, c_layout, &params.blocks, isa)
}

fn check_shapes<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, m: usize, n: usize) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(a.rows(), m, "A rows must match C rows");
    assert_eq!(b.cols(), n, "B cols must match C cols");
}

/// Runs the tuned kernel over one contiguous row range of `C`, packing
/// through `arena`, with the process-wide dispatched microkernel
/// ([`simd::active`]). This is the chunk-level entry the `Vendor` host
/// variant and the parallel driver share.
///
/// `c` wraps `C`'s backing storage (`m*n` elements, `c_layout` order);
/// the caller must own `rows` exclusively.
///
/// # Panics
///
/// Panics on shape mismatch or an unsupported tile shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_rows<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &DisjointSlice<'_, T>,
    c_shape: (usize, usize),
    c_layout: Layout,
    rows: Range<usize>,
    params: &TunedParams,
    arena: &mut PackArena<T>,
) -> TunedStats {
    gemm_rows_with_isa(
        a,
        b,
        c,
        c_shape,
        c_layout,
        rows,
        params,
        arena,
        simd::active(),
    )
}

/// [`gemm_rows`] with an explicit ISA verdict instead of the process-wide
/// one — the A/B entry point tests and ablations use to compare
/// microkernels without touching `PERFPORT_SIMD`.
///
/// `isa` must be available on this CPU (callers obtain it from
/// [`Isa::detect`], [`simd::active`], or an [`Isa::available`] check);
/// [`simd::select`] falls back to the portable kernel for tile shapes the
/// ISA cannot serve.
///
/// # Panics
///
/// Panics on shape mismatch or an unsupported tile shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_rows_with_isa<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &DisjointSlice<'_, T>,
    c_shape: (usize, usize),
    c_layout: Layout,
    rows: Range<usize>,
    params: &TunedParams,
    arena: &mut PackArena<T>,
    isa: Isa,
) -> TunedStats {
    let (m, n) = c_shape;
    check_shapes(a, b, m, n);
    assert_eq!(c.len(), m * n, "C storage size mismatch");
    assert!(rows.end <= m, "row range out of bounds");
    if TypeId::of::<T>() == TypeId::of::<F16>() {
        // `T` is exactly `F16`, so the owned matrices downcast safely
        // through `Any`; the widened pack buffers come from the typed
        // accessor, so no `PackArena` is ever reinterpreted across
        // scalar types.
        let a16 = (a as &dyn Any)
            .downcast_ref::<Matrix<F16>>()
            .expect("T is F16");
        let b16 = (b as &dyn Any)
            .downcast_ref::<Matrix<F16>>()
            .expect("T is F16");
        // SAFETY: `T` is exactly `F16` (checked above), so the cast is
        // the identity; the slice's lifetime is preserved by the
        // reborrow. (`DisjointSlice` borrows `C`, so it cannot go
        // through `Any`'s `'static` bound like the matrices above.)
        let c16 = unsafe { &*(c as *const DisjointSlice<'_, T>).cast::<DisjointSlice<'_, F16>>() };
        let (aw, bw) = arena.widened();
        let run = match (params.tile.mr, params.tile.nr) {
            (4, 4) => run_blocked::<WidenedF16Ops, 4, 4>,
            (8, 4) => run_blocked::<WidenedF16Ops, 8, 4>,
            (4, 8) => run_blocked::<WidenedF16Ops, 4, 8>,
            (8, 8) => run_blocked::<WidenedF16Ops, 8, 8>,
            _ => panic!("unsupported tile shape {}", params.tile),
        };
        return run(
            a16,
            b16,
            c16,
            c_shape,
            c_layout,
            rows,
            &params.blocks,
            aw,
            bw,
            isa,
        );
    }
    let run = match (params.tile.mr, params.tile.nr) {
        (4, 4) => run_blocked::<PlainOps<T>, 4, 4>,
        (8, 4) => run_blocked::<PlainOps<T>, 8, 4>,
        (4, 8) => run_blocked::<PlainOps<T>, 4, 8>,
        (8, 8) => run_blocked::<PlainOps<T>, 8, 8>,
        _ => panic!("unsupported tile shape {}", params.tile),
    };
    let (a_buf, b_buf) = PlainOps::<T>::bufs(arena);
    run(
        a,
        b,
        c,
        c_shape,
        c_layout,
        rows,
        &params.blocks,
        a_buf,
        b_buf,
        isa,
    )
}

/// Serial tuned GEMM: `C += A · B` with explicit parameters and arena,
/// using the process-wide dispatched microkernel.
pub fn gemm_serial<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T>,
    params: &TunedParams,
    arena: &mut PackArena<T>,
) -> TunedStats {
    gemm_serial_with_isa(a, b, c, params, arena, simd::active())
}

/// [`gemm_serial`] with an explicit ISA verdict (see
/// [`gemm_rows_with_isa`] for the availability contract).
pub fn gemm_serial_with_isa<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T>,
    params: &TunedParams,
    arena: &mut PackArena<T>,
    isa: Isa,
) -> TunedStats {
    let shape = (c.rows(), c.cols());
    let layout = c.layout();
    let rows = 0..shape.0;
    let ds = DisjointSlice::new(c.as_mut_slice());
    let stats = gemm_rows_with_isa(a, b, &ds, shape, layout, rows, params, arena, isa);
    stats.emit(params.tile, isa);
    stats
}

/// Parallel tuned GEMM under the process-wide scheduler verdict
/// ([`perfport_pool::sched::active`]): the pipelined task graph by
/// default, the classic barrier fork-join under `--sched barrier` /
/// `PERFPORT_SCHED=barrier`. Returns the region instrumentation; the
/// packing/microkernel counters go to `perfport-trace`. Results are
/// bitwise-identical across schedulers, team sizes, and serial.
pub fn gemm<T: Scalar>(
    pool: &ThreadPool,
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T>,
    params: &TunedParams,
) -> RegionStats {
    gemm_with_sched(pool, a, b, c, params, perfport_pool::sched::active())
}

/// [`gemm`] with an explicit scheduler instead of the process-wide one —
/// the A/B entry point tests and ablations use to compare schedulers
/// without touching `PERFPORT_SCHED`.
pub fn gemm_with_sched<T: Scalar>(
    pool: &ThreadPool,
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T>,
    params: &TunedParams,
    sched: SchedMode,
) -> RegionStats {
    let (m, n) = (c.rows(), c.cols());
    check_shapes(a, b, m, n);
    let isa = simd::active();
    let mut sp = perfport_trace::span("gemm", "tuned");
    if sp.is_recording() {
        sp.arg("m", m);
        sp.arg("n", n);
        sp.arg("k", a.cols());
        sp.arg("tile", params.tile.name());
        sp.arg("isa", isa.name());
        sp.arg("sched", sched.name());
        sp.arg("mc", params.blocks.mc);
        sp.arg("kc", params.blocks.kc);
        sp.arg("nc", params.blocks.nc);
        // FLOP/byte annotation: pairs the analytic work and compulsory
        // traffic with whatever hardware counters the run records, so a
        // trace alone is enough to place this kernel on a roofline.
        sp.arg("flops", crate::serial::gemm_flops(m, n, a.cols()));
        sp.arg(
            "min_bytes",
            crate::serial::gemm_min_bytes(m, n, a.cols(), std::mem::size_of::<T>()),
        );
    }
    let layout = c.layout();
    let ds = DisjointSlice::new(c.as_mut_slice());
    match sched {
        SchedMode::Graph => {
            let (totals, gstats) =
                run_pipelined_dispatch(pool, a, b, &ds, (m, n), layout, params, isa);
            totals.emit(params.tile, isa);
            RegionStats {
                items_per_thread: gstats.tasks_per_worker.clone(),
                chunks_per_thread: gstats.tasks_per_worker,
                elapsed: gstats.elapsed,
                // No barrier exists in graph mode; the idle analogue is
                // recorded by the graph run itself (`pool/idle_ns`).
                fork_join_overhead: Duration::ZERO,
                barrier_wait_per_thread: Vec::new(),
            }
        }
        SchedMode::Barrier => {
            let mc = params.blocks.mc;
            let n_blocks = m.div_ceil(mc);
            let pack_a_total = AtomicU64::new(0);
            let pack_b_total = AtomicU64::new(0);
            let micro_total = AtomicU64::new(0);
            let region = pool.parallel_for(n_blocks, Schedule::StaticBlock, |_ctx, chunk| {
                if chunk.is_empty() {
                    return;
                }
                let rows = (chunk.start * mc)..(chunk.end * mc).min(m);
                let stats = with_thread_arena(|arena| {
                    gemm_rows(a, b, &ds, (m, n), layout, rows, params, arena)
                });
                pack_a_total.fetch_add(stats.pack_a_bytes, Ordering::Relaxed);
                pack_b_total.fetch_add(stats.pack_b_bytes, Ordering::Relaxed);
                micro_total.fetch_add(stats.microkernel_calls, Ordering::Relaxed);
            });
            let totals = TunedStats {
                pack_a_bytes: pack_a_total.into_inner(),
                pack_b_bytes: pack_b_total.into_inner(),
                microkernel_calls: micro_total.into_inner(),
            };
            totals.emit(params.tile, isa);
            region
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::gemm_reference_f64;
    use perfport_half::F16;

    fn tuned_vs_reference<T: Scalar>(m: usize, k: usize, n: usize, layout: Layout, tol: f64) {
        let a = Matrix::<T>::random(m, k, layout, 31);
        let b = Matrix::<T>::random(k, n, layout, 32);
        let reference = gemm_reference_f64(&a, &b);
        let params = TunedParams::for_cache::<T>(CacheInfo::DEFAULT);
        let mut arena = PackArena::new();
        let mut c = Matrix::<T>::zeros(m, n, layout);
        gemm_serial(&a, &b, &mut c, &params, &mut arena);
        let cast: Matrix<f64> = c.cast();
        let err = cast.max_abs_diff(&reference);
        assert!(err < tol, "{m}x{k}x{n} {layout}: error {err}");
    }

    #[test]
    fn serial_matches_reference_all_precisions() {
        tuned_vs_reference::<f64>(65, 33, 47, Layout::RowMajor, 1e-12);
        tuned_vs_reference::<f32>(65, 33, 47, Layout::RowMajor, 1e-3);
        tuned_vs_reference::<F16>(17, 9, 13, Layout::RowMajor, 0.2);
        tuned_vs_reference::<f64>(65, 33, 47, Layout::ColMajor, 1e-12);
    }

    #[test]
    fn every_tile_shape_matches_reference() {
        let (m, k, n) = (37, 29, 41);
        let a = Matrix::<f64>::random(m, k, Layout::RowMajor, 1);
        let b = Matrix::<f64>::random(k, n, Layout::RowMajor, 2);
        let reference = gemm_reference_f64(&a, &b);
        for tile in TileShape::ALL {
            let params = TunedParams::with_tile(CacheInfo::DEFAULT, tile, 8);
            let mut arena = PackArena::new();
            let mut c = Matrix::<f64>::zeros(m, n, Layout::RowMajor);
            gemm_serial(&a, &b, &mut c, &params, &mut arena);
            assert!(c.max_abs_diff(&reference) < 1e-12, "tile {tile}");
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        // Accumulation order per element depends only on the Kc
        // blocking, never on which worker owns a row block.
        let pool = ThreadPool::new(5);
        let (m, k, n) = (83, 57, 43);
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let a = Matrix::<f64>::random(m, k, layout, 3);
            let b = Matrix::<f64>::random(k, n, layout, 4);
            let params = TunedParams {
                tile: TileShape { mr: 4, nr: 4 },
                // Tiny blocks force many chunks and k-panels.
                blocks: BlockSizes {
                    mc: 8,
                    kc: 12,
                    nc: 16,
                },
            };
            let mut arena = PackArena::new();
            let mut c_serial = Matrix::<f64>::zeros(m, n, layout);
            gemm_serial(&a, &b, &mut c_serial, &params, &mut arena);
            let mut c_par = Matrix::<f64>::zeros(m, n, layout);
            gemm(&pool, &a, &b, &mut c_par, &params);
            assert_eq!(c_serial, c_par, "{layout}");
        }
    }

    /// Serial reference vs an explicit scheduler, bitwise.
    fn sched_vs_serial<T: Scalar>(m: usize, k: usize, n: usize, jobs: usize, sched: SchedMode) {
        let pool = ThreadPool::new(jobs);
        let params = TunedParams {
            tile: TileShape { mr: 4, nr: 4 },
            // Tiny blocks force many row blocks and (jc, p0) panels, so
            // the double buffers wrap repeatedly.
            blocks: BlockSizes {
                mc: 8,
                kc: 12,
                nc: 16,
            },
        };
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let a = Matrix::<T>::random(m, k, layout, 7);
            let b = Matrix::<T>::random(k, n, layout, 8);
            let mut c_serial = Matrix::<T>::zeros(m, n, layout);
            gemm_serial(&a, &b, &mut c_serial, &params, &mut PackArena::new());
            let mut c_sched = Matrix::<T>::zeros(m, n, layout);
            gemm_with_sched(&pool, &a, &b, &mut c_sched, &params, sched);
            assert_eq!(
                c_serial,
                c_sched,
                "{} {layout} jobs={jobs} sched={sched}",
                T::NAME
            );
        }
    }

    #[test]
    fn both_schedulers_are_bit_identical_to_serial_all_precisions() {
        for jobs in [1, 2, 7] {
            for sched in [SchedMode::Barrier, SchedMode::Graph] {
                sched_vs_serial::<f64>(83, 57, 43, jobs, sched);
                sched_vs_serial::<f32>(61, 45, 39, jobs, sched);
                sched_vs_serial::<F16>(33, 29, 21, jobs, sched);
            }
        }
    }

    #[test]
    fn double_buffer_reuse_survives_many_panels() {
        // k and n large relative to kc/nc: 8 k-panels × 4 jc panels = 32
        // B-panel packs through 2 buffers, while 7 workers race the
        // pipeline. Any reuse-before-drained bug corrupts C.
        let pool = ThreadPool::new(7);
        let params = TunedParams {
            tile: TileShape { mr: 4, nr: 4 },
            blocks: BlockSizes {
                mc: 8,
                kc: 8,
                nc: 8,
            },
        };
        let (m, k, n) = (40, 64, 31);
        let a = Matrix::<f64>::random(m, k, Layout::RowMajor, 11);
        let b = Matrix::<f64>::random(k, n, Layout::RowMajor, 12);
        let mut c_serial = Matrix::<f64>::zeros(m, n, Layout::RowMajor);
        gemm_serial(&a, &b, &mut c_serial, &params, &mut PackArena::new());
        for _ in 0..16 {
            let mut c_graph = Matrix::<f64>::zeros(m, n, Layout::RowMajor);
            gemm_with_sched(&pool, &a, &b, &mut c_graph, &params, SchedMode::Graph);
            assert_eq!(c_serial, c_graph);
        }
    }

    #[test]
    fn graph_mode_reports_tasks_and_overlap_monotonically() {
        let pool = ThreadPool::new(4);
        let params = TunedParams {
            tile: TileShape { mr: 4, nr: 4 },
            blocks: BlockSizes {
                mc: 8,
                kc: 8,
                nc: 16,
            },
        };
        let (m, k, n) = (64, 48, 32);
        let a = Matrix::<f64>::random(m, k, Layout::RowMajor, 13);
        let b = Matrix::<f64>::random(k, n, Layout::RowMajor, 14);
        let before = pack_overlap_ns();
        let mut c = Matrix::<f64>::zeros(m, n, Layout::RowMajor);
        let region = gemm_with_sched(&pool, &a, &b, &mut c, &params, SchedMode::Graph);
        // (2 jc × 6 k) panels × 8 row-block compute tasks + 12 packs.
        assert_eq!(region.items_per_thread.iter().sum::<usize>(), 12 * 8 + 12);
        assert!(pack_overlap_ns() >= before);
    }

    #[test]
    fn accumulates_into_existing_c() {
        let a = Matrix::<f64>::ones(5, 5, Layout::RowMajor);
        let b = Matrix::<f64>::ones(5, 5, Layout::RowMajor);
        let mut c = Matrix::<f64>::from_fn(5, 5, Layout::RowMajor, |_, _| 2.0);
        let params = TunedParams::for_cache::<f64>(CacheInfo::DEFAULT);
        gemm_serial(&a, &b, &mut c, &params, &mut PackArena::new());
        assert!(c.as_slice().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn degenerate_shapes() {
        // 1×1, empty k, empty m/n.
        tuned_vs_reference::<f64>(1, 1, 1, Layout::RowMajor, 1e-15);
        let a = Matrix::<f64>::zeros(4, 0, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(0, 3, Layout::RowMajor);
        let mut c = Matrix::<f64>::from_fn(4, 3, Layout::RowMajor, |_, _| 9.0);
        let params = TunedParams::for_cache::<f64>(CacheInfo::DEFAULT);
        gemm_serial(&a, &b, &mut c, &params, &mut PackArena::new());
        assert!(c.as_slice().iter().all(|&x| x == 9.0), "empty k adds zero");
        let a = Matrix::<f64>::zeros(0, 5, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(5, 0, Layout::RowMajor);
        let mut c = Matrix::<f64>::zeros(0, 0, Layout::RowMajor);
        gemm_serial(&a, &b, &mut c, &params, &mut PackArena::new());
    }

    #[test]
    fn block_sizes_respect_caches_and_tiles() {
        for tile in TileShape::ALL {
            for bytes in [2usize, 4, 8] {
                let b = BlockSizes::for_cache(CacheInfo::DEFAULT, tile, bytes);
                assert!(b.kc >= 64 && b.kc <= 512 && b.kc.is_multiple_of(4));
                assert_eq!(b.mc % tile.mr, 0);
                assert_eq!(b.nc % tile.nr, 0);
                // Kc×NR B micropanel really fits L1d.
                assert!(b.kc * tile.nr * bytes <= CacheInfo::DEFAULT.l1d_bytes);
                // Mc×Kc A block really fits L2.
                assert!(b.mc * b.kc * bytes <= CacheInfo::DEFAULT.l2_bytes);
            }
        }
        // A tiny cache still yields runnable (clamped) blocks.
        let tiny = CacheInfo {
            l1d_bytes: 1024,
            l2_bytes: 4096,
            l3_bytes: 65536,
            ..CacheInfo::DEFAULT
        };
        let b = BlockSizes::for_cache(tiny, TileShape { mr: 8, nr: 8 }, 8);
        assert!(b.kc >= 64 && b.mc >= 8 && b.nc >= 8);
    }

    #[test]
    fn stats_count_packing_and_microkernels() {
        let (m, k, n) = (16, 8, 16);
        let a = Matrix::<f64>::random(m, k, Layout::RowMajor, 5);
        let b = Matrix::<f64>::random(k, n, Layout::RowMajor, 6);
        let params = TunedParams {
            tile: TileShape { mr: 4, nr: 4 },
            blocks: BlockSizes {
                mc: 16,
                kc: 8,
                nc: 16,
            },
        };
        let mut c = Matrix::<f64>::zeros(m, n, Layout::RowMajor);
        let stats = gemm_serial(&a, &b, &mut c, &params, &mut PackArena::new());
        // One k-panel, one row block: A packed once (16×8), B once (8×16),
        // and (16/4)·(16/4) microkernel tiles.
        assert_eq!(stats.pack_a_bytes, 16 * 8 * 8);
        assert_eq!(stats.pack_b_bytes, 8 * 16 * 8);
        assert_eq!(stats.microkernel_calls, 16);
    }

    #[test]
    fn default_tiles_per_width() {
        assert_eq!(TileShape::default_for(8), TileShape { mr: 4, nr: 4 });
        assert_eq!(TileShape::default_for(4), TileShape { mr: 4, nr: 8 });
        assert_eq!(TileShape::default_for(2), TileShape { mr: 4, nr: 8 });
        assert_eq!(TileShape { mr: 4, nr: 8 }.name(), "4x8");
    }

    #[test]
    #[should_panic(expected = "unsupported tile shape")]
    fn unsupported_tile_panics() {
        let a = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        let mut c = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        let params = TunedParams {
            tile: TileShape { mr: 3, nr: 5 },
            blocks: BlockSizes {
                mc: 8,
                kc: 8,
                nc: 8,
            },
        };
        gemm_serial(&a, &b, &mut c, &params, &mut PackArena::new());
    }
}
