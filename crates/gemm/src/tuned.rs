//! The measured vendor-BLAS stand-in: a packed, register-tiled,
//! cache-blocked GEMM.
//!
//! The paper's Table III divides each portable model's throughput by a
//! *vendor* library curve. The naive kernels in [`crate::serial`] and
//! [`crate::variants`] deliberately stop at loop ordering, so dividing by
//! them is naive-vs-naive. This module provides the honest denominator:
//! the standard BLAS decomposition (Goto/BLIS; see also "Flexible
//! Performant GEMM Kernels on GPUs", arXiv:2009.12263) of `C += A·B`
//! into
//!
//! 1. **Packing** — `Mc×Kc` blocks of `A` and `Kc×Nc` panels of `B` are
//!    copied once into contiguous, 64-byte-aligned buffers laid out in
//!    micropanel order, so the inner loop streams unit-stride regardless
//!    of the source [`Layout`] and never suffers a TLB/conflict miss;
//! 2. **Register tiling** — an `MR×NR` accumulator tile lives entirely
//!    in registers across the `Kc` contraction ([`TileShape`]); the
//!    microkernel is written so LLVM autovectorizes it (const-generic
//!    tile extents, unit-stride panel reads, no `fma` libcall);
//! 3. **Cache blocking** — `Kc` sizes the `B` micropanel to half of L1d,
//!    `Mc×Kc` sizes the `A` block to half of L2, and `Kc×Nc` sizes the
//!    `B` panel to an L3 share ([`BlockSizes::for_cache`], fed from
//!    [`CacheInfo`]).
//!
//! Parallelisation follows the paper's CPU strategy: macro-row-blocks of
//! `C` are the work-sharing index space on the existing [`ThreadPool`],
//! and every worker packs into a thread-local [`PackArena`] that is
//! reused across calls, so sweep loops do not reallocate per size point.
//!
//! The microkernel itself is dispatched **once per process** through
//! [`crate::simd`]: explicit AVX2+FMA / AVX-512 / NEON register tiles
//! when the CPU supports them (`PERFPORT_SIMD` overrides for A/B runs),
//! the autovectorized const-generic tile otherwise. See the `simd`
//! module docs for the dispatch contract and the FMA-contraction caveat.
//!
//! The result is generic over [`Scalar`]; `f32`/`f64` get their fast
//! paths through monomorphisation (the accumulator tile and panel loads
//! vectorise per element width), while the software [`F16`] packs
//! *widened*: the pack routines convert `f16 → f32` once per panel and
//! the contraction runs the native `f32` microkernel, so the O(n³) inner
//! loop never executes a software-half operation (each `C` element is
//! re-rounded to `f16` once per `Kc` panel). Accumulation order per
//! element of `C` is a fixed function of the `Kc` blocking alone, so
//! serial and parallel execution are bit-identical per dispatched
//! kernel.

use crate::matrix::{Layout, Matrix};
use crate::scalar::Scalar;
use crate::simd::{self, Isa};
use perfport_half::F16;
use perfport_pool::{CacheInfo, DisjointSlice, RegionStats, Schedule, ThreadPool};
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Register-tile extents of the microkernel: `MR` rows × `NR` columns of
/// `C` accumulated in registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileShape {
    /// Accumulator rows.
    pub mr: usize,
    /// Accumulator columns.
    pub nr: usize,
}

impl TileShape {
    /// The shapes the ablation sweeps (every combination the dispatch
    /// supports).
    pub const ALL: [TileShape; 4] = [
        TileShape { mr: 4, nr: 4 },
        TileShape { mr: 8, nr: 4 },
        TileShape { mr: 4, nr: 8 },
        TileShape { mr: 8, nr: 8 },
    ];

    /// Default tile for an element width: wide elements get the small
    /// square tile (the accumulator must fit the 16 SIMD registers of a
    /// baseline x86-64 target), narrow elements can afford a wider tile.
    pub fn default_for(elem_bytes: usize) -> TileShape {
        if elem_bytes >= 8 {
            TileShape { mr: 4, nr: 4 }
        } else {
            TileShape { mr: 4, nr: 8 }
        }
    }

    /// Default tile for an element width under a dispatched ISA.
    ///
    /// The portable fallback keeps the conservative [`default_for`]
    /// choice (the autovectorized accumulator must fit a baseline
    /// x86-64's 16 xmm registers). Native kernels hold one accumulator
    /// row in `NR·BYTES/width` registers, so they afford taller tiles:
    /// 256-bit ISAs (AVX2, and NEON with four 128-bit accumulators per
    /// row) take `8×4` for 8-byte elements and `8×8` for narrower ones;
    /// AVX-512 takes `8×8` so an `f64` row is exactly one zmm register.
    ///
    /// [`default_for`]: TileShape::default_for
    pub fn for_isa(isa: Isa, elem_bytes: usize) -> TileShape {
        match isa {
            Isa::Portable => Self::default_for(elem_bytes),
            Isa::Avx2 | Isa::Neon => {
                if elem_bytes >= 8 {
                    TileShape { mr: 8, nr: 4 }
                } else {
                    TileShape { mr: 8, nr: 8 }
                }
            }
            Isa::Avx512 => TileShape { mr: 8, nr: 8 },
        }
    }

    /// `"4x8"`-style identifier used in ablation tables.
    pub fn name(&self) -> String {
        format!("{}x{}", self.mr, self.nr)
    }
}

impl fmt::Display for TileShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.mr, self.nr)
    }
}

/// Cache-blocking extents: the loop structure is
/// `jc (Nc) → p (Kc) → ic (Mc) → jr (NR) → ir (MR)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizes {
    /// Rows of `A` packed per L2-resident block.
    pub mc: usize,
    /// Contraction depth per packed panel (L1-resident `B` micropanel).
    pub kc: usize,
    /// Columns of `B` packed per L3-resident panel.
    pub nc: usize,
}

impl BlockSizes {
    /// Sizes the blocks from cache capacities for `elem_bytes`-wide
    /// elements and `tile`:
    ///
    /// * `kc` so the `Kc×NR` `B` micropanel fills about half of L1d,
    /// * `mc` so the `Mc×Kc` packed `A` block fills about half of L2,
    /// * `nc` so the `Kc×Nc` packed `B` panel fills an eighth of the
    ///   shared L3 (its nominal per-thread share on a server core).
    pub fn for_cache(cache: CacheInfo, tile: TileShape, elem_bytes: usize) -> Self {
        let kc = (cache.l1d_bytes / 2 / (tile.nr * elem_bytes)).clamp(64, 512) & !3;
        let mc_raw = (cache.l2_bytes / 2 / (kc * elem_bytes)).clamp(tile.mr, 1024);
        let mc = mc_raw / tile.mr * tile.mr;
        let nc_raw = (cache.l3_bytes / 8 / (kc * elem_bytes)).clamp(tile.nr, 4096);
        let nc = nc_raw / tile.nr * tile.nr;
        BlockSizes { mc, kc, nc }
    }
}

/// A full tuned-kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunedParams {
    /// Microkernel register tile.
    pub tile: TileShape,
    /// Cache-blocking extents derived from the cache description.
    pub blocks: BlockSizes,
}

impl TunedParams {
    /// Parameters for `T` on caches `cache` with the portable default
    /// tile. Blocks are sized by [`Scalar::PACK_BYTES`] — the width of
    /// the elements that actually occupy the packed panels (`f32` for
    /// the widened `F16` path).
    pub fn for_cache<T: Scalar>(cache: CacheInfo) -> Self {
        Self::for_cache_isa::<T>(cache, Isa::Portable)
    }

    /// Parameters for `T` on caches `cache` with the tile the dispatched
    /// `isa`'s microkernel prefers ([`TileShape::for_isa`]).
    pub fn for_cache_isa<T: Scalar>(cache: CacheInfo, isa: Isa) -> Self {
        Self::with_tile(cache, TileShape::for_isa(isa, T::PACK_BYTES), T::PACK_BYTES)
    }

    /// Parameters for an explicit tile shape (ablation entry point).
    pub fn with_tile(cache: CacheInfo, tile: TileShape, elem_bytes: usize) -> Self {
        TunedParams {
            tile,
            blocks: BlockSizes::for_cache(cache, tile, elem_bytes),
        }
    }

    /// Parameters for `T` on the build host's detected caches and the
    /// process-wide dispatched ISA ([`simd::active`]).
    pub fn host<T: Scalar>() -> Self {
        Self::for_cache_isa::<T>(CacheInfo::host(), simd::active())
    }
}

// ------------------------------------------------------------ arena --

/// Alignment of packing buffers: one x86 cache line / typical maximal
/// SIMD register width.
const PACK_ALIGN: usize = 64;

/// A 64-byte-aligned, grow-only buffer of scalars.
///
/// Capacity only ever grows, so a sweep loop reusing one buffer across
/// size points allocates O(log sizes) times, not once per GEMM. Freshly
/// grown memory is zero-initialised (scalars are valid all-zeroes), and
/// the packing routines overwrite every element they later read.
struct AlignedBuf<T> {
    ptr: *mut T,
    cap: usize,
}

// SAFETY: the buffer exclusively owns its allocation; scalars are
// plain-old-data, so moving the handle across threads is fine.
unsafe impl<T: Send> Send for AlignedBuf<T> {}

impl<T: Scalar> AlignedBuf<T> {
    fn new() -> Self {
        AlignedBuf {
            ptr: std::ptr::null_mut(),
            cap: 0,
        }
    }

    fn layout(cap: usize) -> std::alloc::Layout {
        std::alloc::Layout::from_size_align(cap * std::mem::size_of::<T>(), PACK_ALIGN)
            .expect("packing buffer layout")
    }

    /// Grows capacity to at least `len` and returns the first `len`
    /// elements as a mutable slice.
    fn slice_for(&mut self, len: usize) -> &mut [T] {
        if len > self.cap {
            let new_cap = len.next_power_of_two();
            // SAFETY: layout has non-zero size (len > cap >= 0 and
            // scalars are non-zero-sized); old pointer/capacity came
            // from the same allocator.
            unsafe {
                if self.cap > 0 {
                    std::alloc::dealloc(self.ptr as *mut u8, Self::layout(self.cap));
                }
                let raw = std::alloc::alloc_zeroed(Self::layout(new_cap));
                if raw.is_null() {
                    std::alloc::handle_alloc_error(Self::layout(new_cap));
                }
                self.ptr = raw as *mut T;
            }
            self.cap = new_cap;
        }
        if len == 0 {
            return &mut [];
        }
        // SAFETY: `ptr` covers `cap >= len` zero-initialised (hence
        // valid) scalars and is exclusively owned.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, len) }
    }
}

impl<T> Drop for AlignedBuf<T> {
    fn drop(&mut self) {
        if self.cap > 0 {
            // SAFETY: allocated in `slice_for` with this exact layout.
            unsafe {
                let layout = std::alloc::Layout::from_size_align_unchecked(
                    self.cap * std::mem::size_of::<T>(),
                    PACK_ALIGN,
                );
                std::alloc::dealloc(self.ptr as *mut u8, layout);
            }
        }
    }
}

/// Reusable packing buffers for one worker thread.
///
/// Holding one of these across a sweep (or using the implicit
/// thread-local arena via [`gemm`]/the `Vendor` variant) means the hot
/// loop never calls the allocator after warm-up.
pub struct PackArena<T> {
    a: AlignedBuf<T>,
    b: AlignedBuf<T>,
    // Widened panels for the F16 path: packs convert f16 → f32 so the
    // contraction runs the native f32 microkernel. Empty for other T.
    aw: AlignedBuf<f32>,
    bw: AlignedBuf<f32>,
}

impl<T: Scalar> PackArena<T> {
    /// An empty arena; buffers grow on first use.
    pub fn new() -> Self {
        PackArena {
            a: AlignedBuf::new(),
            b: AlignedBuf::new(),
            aw: AlignedBuf::new(),
            bw: AlignedBuf::new(),
        }
    }

    /// Typed access to the widened `f32` packing buffers (`A`, `B`).
    ///
    /// The `F16` path packs into these — they exist on every arena
    /// regardless of `T`, so the dispatcher never has to reinterpret a
    /// `PackArena<T>` as a `PackArena<F16>`; an arena checked out for one
    /// scalar type can therefore never alias buffers of another.
    fn widened(&mut self) -> (&mut AlignedBuf<f32>, &mut AlignedBuf<f32>) {
        (&mut self.aw, &mut self.bw)
    }
}

impl<T: Scalar> Default for PackArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    /// Per-thread arenas keyed by scalar type, reused across every tuned
    /// GEMM this thread ever runs (pool workers are persistent, so a
    /// size sweep packs into the same two buffers throughout).
    static THREAD_ARENAS: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// Runs `f` with this thread's reusable arena for `T`.
pub fn with_thread_arena<T: Scalar, R>(f: impl FnOnce(&mut PackArena<T>) -> R) -> R {
    THREAD_ARENAS.with(|map| {
        let mut map = map.borrow_mut();
        let entry = map
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(PackArena::<T>::new()));
        f(entry
            .downcast_mut::<PackArena<T>>()
            .expect("arena type keyed by TypeId"))
    })
}

// ---------------------------------------------------------- counters --

/// Instrumentation of one tuned-GEMM invocation, exported through
/// `perfport-trace` by the public entry points.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TunedStats {
    /// Bytes copied into packed `A` blocks.
    pub pack_a_bytes: u64,
    /// Bytes copied into packed `B` panels.
    pub pack_b_bytes: u64,
    /// Microkernel invocations (full `MR×NR` tiles, edges included).
    pub microkernel_calls: u64,
}

impl TunedStats {
    fn emit(&self, tile: TileShape, isa: Isa) {
        if perfport_trace::enabled() {
            perfport_trace::counter("gemm", "tuned_pack_a_bytes", self.pack_a_bytes as f64);
            perfport_trace::counter("gemm", "tuned_pack_b_bytes", self.pack_b_bytes as f64);
            perfport_trace::counter(
                "gemm",
                "tuned_microkernel_calls",
                self.microkernel_calls as f64,
            );
            perfport_trace::instant(
                "gemm",
                "tuned_tile",
                vec![
                    ("mr".to_string(), (tile.mr as u64).into()),
                    ("nr".to_string(), (tile.nr as u64).into()),
                    ("isa".to_string(), isa.name().into()),
                ],
            );
        }
    }
}

// ----------------------------------------------------------- packing --

/// Row/column strides of a matrix's storage under its layout.
#[inline]
fn strides<T: Scalar>(m: &Matrix<T>) -> (usize, usize) {
    match m.layout() {
        Layout::RowMajor => (m.cols(), 1),
        Layout::ColMajor => (1, m.rows()),
    }
}

/// Packs the `A` block `rows i0..i0+mb × k p0..p0+kb` into `MR`-row
/// micropanels: micropanel `ir` stores element `(i0 + ir*MR + r, p0 + p)`
/// at `ir*kb*MR + p*MR + r`, zero-padding rows past the block edge so
/// the microkernel never needs a row bound check.
fn pack_a<T: Scalar>(
    a: &Matrix<T>,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
    mr: usize,
    buf: &mut AlignedBuf<T>,
) -> u64 {
    let panels = mb.div_ceil(mr);
    let dst = buf.slice_for(panels * kb * mr);
    let (rs, cs) = strides(a);
    let ad = a.as_slice();
    let mut off = 0;
    for ir in 0..panels {
        let base_row = i0 + ir * mr;
        let live = mr.min(i0 + mb - base_row);
        for p in 0..kb {
            let col_off = (p0 + p) * cs;
            for r in 0..live {
                dst[off + r] = ad[(base_row + r) * rs + col_off];
            }
            for r in live..mr {
                dst[off + r] = T::zero();
            }
            off += mr;
        }
    }
    (panels * kb * mr * std::mem::size_of::<T>()) as u64
}

/// Packs the `B` panel `k p0..p0+kb × cols j0..j0+nb` into `NR`-column
/// micropanels: micropanel `jr` stores element `(p0 + p, j0 + jr*NR + c)`
/// at `jr*kb*NR + p*NR + c`, zero-padded past the panel edge.
fn pack_b<T: Scalar>(
    b: &Matrix<T>,
    p0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
    nr: usize,
    buf: &mut AlignedBuf<T>,
) -> u64 {
    let panels = nb.div_ceil(nr);
    let dst = buf.slice_for(panels * kb * nr);
    let (rs, cs) = strides(b);
    let bd = b.as_slice();
    let mut off = 0;
    for jr in 0..panels {
        let base_col = j0 + jr * nr;
        let live = nr.min(j0 + nb - base_col);
        for p in 0..kb {
            let row_off = (p0 + p) * rs;
            for c in 0..live {
                dst[off + c] = bd[row_off + (base_col + c) * cs];
            }
            for c in live..nr {
                dst[off + c] = T::zero();
            }
            off += nr;
        }
    }
    (panels * kb * nr * std::mem::size_of::<T>()) as u64
}

/// Packs the `A` block like [`pack_a`] but *widened*: source elements
/// are `f16`, the packed micropanels hold their exact `f32` values
/// ([`F16::widen_slice`] for the contiguous column-major case). Reported
/// bytes are the widened bytes actually copied.
fn pack_a_f16(
    a: &Matrix<F16>,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
    mr: usize,
    buf: &mut AlignedBuf<f32>,
) -> u64 {
    let panels = mb.div_ceil(mr);
    let dst = buf.slice_for(panels * kb * mr);
    let (rs, cs) = strides(a);
    let ad = a.as_slice();
    let mut off = 0;
    for ir in 0..panels {
        let base_row = i0 + ir * mr;
        let live = mr.min(i0 + mb - base_row);
        for p in 0..kb {
            let col_off = (p0 + p) * cs;
            if rs == 1 {
                let src = &ad[base_row + col_off..base_row + col_off + live];
                F16::widen_slice(src, &mut dst[off..off + live]);
            } else {
                for r in 0..live {
                    dst[off + r] = ad[(base_row + r) * rs + col_off].to_f32();
                }
            }
            for r in live..mr {
                dst[off + r] = 0.0;
            }
            off += mr;
        }
    }
    (panels * kb * mr * std::mem::size_of::<f32>()) as u64
}

/// Packs the `B` panel like [`pack_b`] but widened to `f32` (see
/// [`pack_a_f16`]).
fn pack_b_f16(
    b: &Matrix<F16>,
    p0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
    nr: usize,
    buf: &mut AlignedBuf<f32>,
) -> u64 {
    let panels = nb.div_ceil(nr);
    let dst = buf.slice_for(panels * kb * nr);
    let (rs, cs) = strides(b);
    let bd = b.as_slice();
    let mut off = 0;
    for jr in 0..panels {
        let base_col = j0 + jr * nr;
        let live = nr.min(j0 + nb - base_col);
        for p in 0..kb {
            let row_off = (p0 + p) * rs;
            if cs == 1 {
                let src = &bd[row_off + base_col..row_off + base_col + live];
                F16::widen_slice(src, &mut dst[off..off + live]);
            } else {
                for c in 0..live {
                    dst[off + c] = bd[row_off + (base_col + c) * cs].to_f32();
                }
            }
            for c in live..nr {
                dst[off + c] = 0.0;
            }
            off += nr;
        }
    }
    (panels * kb * nr * std::mem::size_of::<f32>()) as u64
}

// ------------------------------------------------------------- driver --

/// The blocked loop nest over one contiguous row range of `C`.
#[allow(clippy::too_many_arguments)]
fn run_blocked<T: Scalar, const MR: usize, const NR: usize>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &DisjointSlice<'_, T>,
    c_shape: (usize, usize),
    c_layout: Layout,
    rows: Range<usize>,
    blocks: &BlockSizes,
    arena: &mut PackArena<T>,
    isa: Isa,
) -> TunedStats {
    let (m, n) = c_shape;
    let k = a.cols();
    let BlockSizes { mc, kc, nc } = *blocks;
    let microkernel = simd::select::<T, MR, NR>(isa);
    let mut stats = TunedStats::default();

    for jc in (0..n).step_by(nc) {
        let nb = nc.min(n - jc);
        for p0 in (0..k).step_by(kc) {
            let kb = kc.min(k - p0);
            stats.pack_b_bytes += pack_b(b, p0, kb, jc, nb, NR, &mut arena.b);
            for i0 in (rows.start..rows.end).step_by(mc) {
                let mb = mc.min(rows.end - i0);
                stats.pack_a_bytes += pack_a(a, i0, mb, p0, kb, MR, &mut arena.a);
                // SAFETY below: every row index written is inside
                // `rows`, which this call owns exclusively per the
                // `DisjointSlice` contract.
                let ap_all = arena.a.slice_for(mb.div_ceil(MR) * kb * MR);
                let bp_all = arena.b.slice_for(nb.div_ceil(NR) * kb * NR);
                for jr in 0..nb.div_ceil(NR) {
                    let j_base = jc + jr * NR;
                    let jlim = NR.min(jc + nb - j_base);
                    let bp = &bp_all[jr * kb * NR..(jr + 1) * kb * NR];
                    for ir in 0..mb.div_ceil(MR) {
                        let i_base = i0 + ir * MR;
                        let ilim = MR.min(i0 + mb - i_base);
                        let ap = &ap_all[ir * kb * MR..(ir + 1) * kb * MR];
                        let acc = microkernel(kb, ap, bp);
                        stats.microkernel_calls += 1;
                        match c_layout {
                            Layout::RowMajor => {
                                for (r, acc_row) in acc.iter().enumerate().take(ilim) {
                                    // SAFETY: row ownership (see above).
                                    let crow = unsafe { c.row(i_base + r, n) };
                                    for (cj, &v) in
                                        crow[j_base..j_base + jlim].iter_mut().zip(acc_row)
                                    {
                                        *cj += v;
                                    }
                                }
                            }
                            Layout::ColMajor => {
                                for (r, acc_row) in acc.iter().enumerate().take(ilim) {
                                    for (cix, &v) in acc_row.iter().enumerate().take(jlim) {
                                        let idx = c_layout.index(m, n, i_base + r, j_base + cix);
                                        // SAFETY: row ownership (see
                                        // above); each element belongs
                                        // to exactly one owned row.
                                        unsafe {
                                            *c.at(idx) += v;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    stats
}

/// The blocked loop nest for the widened `F16` path: packs convert
/// `f16 → f32`, the contraction runs the dispatched `f32` microkernel,
/// and each `C` element is re-rounded to `f16` once per `Kc` panel.
///
/// One rounding per panel (instead of one per multiply-accumulate in a
/// straight `F16` instantiation) makes this path *more* accurate than
/// the naive software-half kernels, and the rounding points are a fixed
/// function of the `Kc` blocking, so serial ≡ parallel still holds
/// bitwise per dispatched kernel.
#[allow(clippy::too_many_arguments)]
fn run_blocked_f16<const MR: usize, const NR: usize>(
    a: &Matrix<F16>,
    b: &Matrix<F16>,
    c: &DisjointSlice<'_, F16>,
    c_shape: (usize, usize),
    c_layout: Layout,
    rows: Range<usize>,
    blocks: &BlockSizes,
    aw: &mut AlignedBuf<f32>,
    bw: &mut AlignedBuf<f32>,
    isa: Isa,
) -> TunedStats {
    let (m, n) = c_shape;
    let k = a.cols();
    let BlockSizes { mc, kc, nc } = *blocks;
    let microkernel = simd::select::<f32, MR, NR>(isa);
    let mut stats = TunedStats::default();

    for jc in (0..n).step_by(nc) {
        let nb = nc.min(n - jc);
        for p0 in (0..k).step_by(kc) {
            let kb = kc.min(k - p0);
            stats.pack_b_bytes += pack_b_f16(b, p0, kb, jc, nb, NR, bw);
            for i0 in (rows.start..rows.end).step_by(mc) {
                let mb = mc.min(rows.end - i0);
                stats.pack_a_bytes += pack_a_f16(a, i0, mb, p0, kb, MR, aw);
                // SAFETY below: identical row-ownership argument to
                // `run_blocked`.
                let ap_all = aw.slice_for(mb.div_ceil(MR) * kb * MR);
                let bp_all = bw.slice_for(nb.div_ceil(NR) * kb * NR);
                for jr in 0..nb.div_ceil(NR) {
                    let j_base = jc + jr * NR;
                    let jlim = NR.min(jc + nb - j_base);
                    let bp = &bp_all[jr * kb * NR..(jr + 1) * kb * NR];
                    for ir in 0..mb.div_ceil(MR) {
                        let i_base = i0 + ir * MR;
                        let ilim = MR.min(i0 + mb - i_base);
                        let ap = &ap_all[ir * kb * MR..(ir + 1) * kb * MR];
                        let acc = microkernel(kb, ap, bp);
                        stats.microkernel_calls += 1;
                        match c_layout {
                            Layout::RowMajor => {
                                for (r, acc_row) in acc.iter().enumerate().take(ilim) {
                                    // SAFETY: row ownership (see above).
                                    let crow = unsafe { c.row(i_base + r, n) };
                                    for (cj, &v) in
                                        crow[j_base..j_base + jlim].iter_mut().zip(acc_row)
                                    {
                                        *cj = F16::from_f32(cj.to_f32() + v);
                                    }
                                }
                            }
                            Layout::ColMajor => {
                                for (r, acc_row) in acc.iter().enumerate().take(ilim) {
                                    for (cix, &v) in acc_row.iter().enumerate().take(jlim) {
                                        let idx = c_layout.index(m, n, i_base + r, j_base + cix);
                                        // SAFETY: row ownership (see
                                        // above); each element belongs
                                        // to exactly one owned row.
                                        unsafe {
                                            let cj = c.at(idx);
                                            *cj = F16::from_f32((*cj).to_f32() + v);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    stats
}

fn check_shapes<T: Scalar>(a: &Matrix<T>, b: &Matrix<T>, m: usize, n: usize) {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    assert_eq!(a.rows(), m, "A rows must match C rows");
    assert_eq!(b.cols(), n, "B cols must match C cols");
}

/// Runs the tuned kernel over one contiguous row range of `C`, packing
/// through `arena`, with the process-wide dispatched microkernel
/// ([`simd::active`]). This is the chunk-level entry the `Vendor` host
/// variant and the parallel driver share.
///
/// `c` wraps `C`'s backing storage (`m*n` elements, `c_layout` order);
/// the caller must own `rows` exclusively.
///
/// # Panics
///
/// Panics on shape mismatch or an unsupported tile shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_rows<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &DisjointSlice<'_, T>,
    c_shape: (usize, usize),
    c_layout: Layout,
    rows: Range<usize>,
    params: &TunedParams,
    arena: &mut PackArena<T>,
) -> TunedStats {
    gemm_rows_with_isa(
        a,
        b,
        c,
        c_shape,
        c_layout,
        rows,
        params,
        arena,
        simd::active(),
    )
}

/// [`gemm_rows`] with an explicit ISA verdict instead of the process-wide
/// one — the A/B entry point tests and ablations use to compare
/// microkernels without touching `PERFPORT_SIMD`.
///
/// `isa` must be available on this CPU (callers obtain it from
/// [`Isa::detect`], [`simd::active`], or an [`Isa::available`] check);
/// [`simd::select`] falls back to the portable kernel for tile shapes the
/// ISA cannot serve.
///
/// # Panics
///
/// Panics on shape mismatch or an unsupported tile shape.
#[allow(clippy::too_many_arguments)]
pub fn gemm_rows_with_isa<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &DisjointSlice<'_, T>,
    c_shape: (usize, usize),
    c_layout: Layout,
    rows: Range<usize>,
    params: &TunedParams,
    arena: &mut PackArena<T>,
    isa: Isa,
) -> TunedStats {
    let (m, n) = c_shape;
    check_shapes(a, b, m, n);
    assert_eq!(c.len(), m * n, "C storage size mismatch");
    assert!(rows.end <= m, "row range out of bounds");
    if TypeId::of::<T>() == TypeId::of::<F16>() {
        // `T` is exactly `F16`, so the owned matrices downcast safely
        // through `Any`; the widened pack buffers come from the typed
        // accessor, so no `PackArena` is ever reinterpreted across
        // scalar types.
        let a16 = (a as &dyn Any)
            .downcast_ref::<Matrix<F16>>()
            .expect("T is F16");
        let b16 = (b as &dyn Any)
            .downcast_ref::<Matrix<F16>>()
            .expect("T is F16");
        // SAFETY: `T` is exactly `F16` (checked above), so the cast is
        // the identity; the slice's lifetime is preserved by the
        // reborrow. (`DisjointSlice` borrows `C`, so it cannot go
        // through `Any`'s `'static` bound like the matrices above.)
        let c16 = unsafe { &*(c as *const DisjointSlice<'_, T>).cast::<DisjointSlice<'_, F16>>() };
        let (aw, bw) = arena.widened();
        let run = match (params.tile.mr, params.tile.nr) {
            (4, 4) => run_blocked_f16::<4, 4>,
            (8, 4) => run_blocked_f16::<8, 4>,
            (4, 8) => run_blocked_f16::<4, 8>,
            (8, 8) => run_blocked_f16::<8, 8>,
            _ => panic!("unsupported tile shape {}", params.tile),
        };
        return run(
            a16,
            b16,
            c16,
            c_shape,
            c_layout,
            rows,
            &params.blocks,
            aw,
            bw,
            isa,
        );
    }
    let run = match (params.tile.mr, params.tile.nr) {
        (4, 4) => run_blocked::<T, 4, 4>,
        (8, 4) => run_blocked::<T, 8, 4>,
        (4, 8) => run_blocked::<T, 4, 8>,
        (8, 8) => run_blocked::<T, 8, 8>,
        _ => panic!("unsupported tile shape {}", params.tile),
    };
    run(a, b, c, c_shape, c_layout, rows, &params.blocks, arena, isa)
}

/// Serial tuned GEMM: `C += A · B` with explicit parameters and arena,
/// using the process-wide dispatched microkernel.
pub fn gemm_serial<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T>,
    params: &TunedParams,
    arena: &mut PackArena<T>,
) -> TunedStats {
    gemm_serial_with_isa(a, b, c, params, arena, simd::active())
}

/// [`gemm_serial`] with an explicit ISA verdict (see
/// [`gemm_rows_with_isa`] for the availability contract).
pub fn gemm_serial_with_isa<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T>,
    params: &TunedParams,
    arena: &mut PackArena<T>,
    isa: Isa,
) -> TunedStats {
    let shape = (c.rows(), c.cols());
    let layout = c.layout();
    let rows = 0..shape.0;
    let ds = DisjointSlice::new(c.as_mut_slice());
    let stats = gemm_rows_with_isa(a, b, &ds, shape, layout, rows, params, arena, isa);
    stats.emit(params.tile, isa);
    stats
}

/// Parallel tuned GEMM on the work-sharing pool: macro-row-blocks of `C`
/// (`Mc` rows each) are the index space, each worker packs into its
/// thread-local arena. Returns the pool's region instrumentation; the
/// packing/microkernel counters go to `perfport-trace`.
pub fn gemm<T: Scalar>(
    pool: &ThreadPool,
    a: &Matrix<T>,
    b: &Matrix<T>,
    c: &mut Matrix<T>,
    params: &TunedParams,
) -> RegionStats {
    let (m, n) = (c.rows(), c.cols());
    check_shapes(a, b, m, n);
    let isa = simd::active();
    let mut sp = perfport_trace::span("gemm", "tuned");
    if sp.is_recording() {
        sp.arg("m", m);
        sp.arg("n", n);
        sp.arg("k", a.cols());
        sp.arg("tile", params.tile.name());
        sp.arg("isa", isa.name());
        sp.arg("mc", params.blocks.mc);
        sp.arg("kc", params.blocks.kc);
        sp.arg("nc", params.blocks.nc);
        // FLOP/byte annotation: pairs the analytic work and compulsory
        // traffic with whatever hardware counters the run records, so a
        // trace alone is enough to place this kernel on a roofline.
        sp.arg("flops", crate::serial::gemm_flops(m, n, a.cols()));
        sp.arg(
            "min_bytes",
            crate::serial::gemm_min_bytes(m, n, a.cols(), std::mem::size_of::<T>()),
        );
    }
    let layout = c.layout();
    let ds = DisjointSlice::new(c.as_mut_slice());
    let mc = params.blocks.mc;
    let n_blocks = m.div_ceil(mc);
    let pack_a_total = AtomicU64::new(0);
    let pack_b_total = AtomicU64::new(0);
    let micro_total = AtomicU64::new(0);
    let region = pool.parallel_for(n_blocks, Schedule::StaticBlock, |_ctx, chunk| {
        if chunk.is_empty() {
            return;
        }
        let rows = (chunk.start * mc)..(chunk.end * mc).min(m);
        let stats =
            with_thread_arena(|arena| gemm_rows(a, b, &ds, (m, n), layout, rows, params, arena));
        pack_a_total.fetch_add(stats.pack_a_bytes, Ordering::Relaxed);
        pack_b_total.fetch_add(stats.pack_b_bytes, Ordering::Relaxed);
        micro_total.fetch_add(stats.microkernel_calls, Ordering::Relaxed);
    });
    let totals = TunedStats {
        pack_a_bytes: pack_a_total.into_inner(),
        pack_b_bytes: pack_b_total.into_inner(),
        microkernel_calls: micro_total.into_inner(),
    };
    totals.emit(params.tile, isa);
    region
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::gemm_reference_f64;
    use perfport_half::F16;

    fn tuned_vs_reference<T: Scalar>(m: usize, k: usize, n: usize, layout: Layout, tol: f64) {
        let a = Matrix::<T>::random(m, k, layout, 31);
        let b = Matrix::<T>::random(k, n, layout, 32);
        let reference = gemm_reference_f64(&a, &b);
        let params = TunedParams::for_cache::<T>(CacheInfo::DEFAULT);
        let mut arena = PackArena::new();
        let mut c = Matrix::<T>::zeros(m, n, layout);
        gemm_serial(&a, &b, &mut c, &params, &mut arena);
        let cast: Matrix<f64> = c.cast();
        let err = cast.max_abs_diff(&reference);
        assert!(err < tol, "{m}x{k}x{n} {layout}: error {err}");
    }

    #[test]
    fn serial_matches_reference_all_precisions() {
        tuned_vs_reference::<f64>(65, 33, 47, Layout::RowMajor, 1e-12);
        tuned_vs_reference::<f32>(65, 33, 47, Layout::RowMajor, 1e-3);
        tuned_vs_reference::<F16>(17, 9, 13, Layout::RowMajor, 0.2);
        tuned_vs_reference::<f64>(65, 33, 47, Layout::ColMajor, 1e-12);
    }

    #[test]
    fn every_tile_shape_matches_reference() {
        let (m, k, n) = (37, 29, 41);
        let a = Matrix::<f64>::random(m, k, Layout::RowMajor, 1);
        let b = Matrix::<f64>::random(k, n, Layout::RowMajor, 2);
        let reference = gemm_reference_f64(&a, &b);
        for tile in TileShape::ALL {
            let params = TunedParams::with_tile(CacheInfo::DEFAULT, tile, 8);
            let mut arena = PackArena::new();
            let mut c = Matrix::<f64>::zeros(m, n, Layout::RowMajor);
            gemm_serial(&a, &b, &mut c, &params, &mut arena);
            assert!(c.max_abs_diff(&reference) < 1e-12, "tile {tile}");
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        // Accumulation order per element depends only on the Kc
        // blocking, never on which worker owns a row block.
        let pool = ThreadPool::new(5);
        let (m, k, n) = (83, 57, 43);
        for layout in [Layout::RowMajor, Layout::ColMajor] {
            let a = Matrix::<f64>::random(m, k, layout, 3);
            let b = Matrix::<f64>::random(k, n, layout, 4);
            let params = TunedParams {
                tile: TileShape { mr: 4, nr: 4 },
                // Tiny blocks force many chunks and k-panels.
                blocks: BlockSizes {
                    mc: 8,
                    kc: 12,
                    nc: 16,
                },
            };
            let mut arena = PackArena::new();
            let mut c_serial = Matrix::<f64>::zeros(m, n, layout);
            gemm_serial(&a, &b, &mut c_serial, &params, &mut arena);
            let mut c_par = Matrix::<f64>::zeros(m, n, layout);
            gemm(&pool, &a, &b, &mut c_par, &params);
            assert_eq!(c_serial, c_par, "{layout}");
        }
    }

    #[test]
    fn accumulates_into_existing_c() {
        let a = Matrix::<f64>::ones(5, 5, Layout::RowMajor);
        let b = Matrix::<f64>::ones(5, 5, Layout::RowMajor);
        let mut c = Matrix::<f64>::from_fn(5, 5, Layout::RowMajor, |_, _| 2.0);
        let params = TunedParams::for_cache::<f64>(CacheInfo::DEFAULT);
        gemm_serial(&a, &b, &mut c, &params, &mut PackArena::new());
        assert!(c.as_slice().iter().all(|&x| x == 7.0));
    }

    #[test]
    fn degenerate_shapes() {
        // 1×1, empty k, empty m/n.
        tuned_vs_reference::<f64>(1, 1, 1, Layout::RowMajor, 1e-15);
        let a = Matrix::<f64>::zeros(4, 0, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(0, 3, Layout::RowMajor);
        let mut c = Matrix::<f64>::from_fn(4, 3, Layout::RowMajor, |_, _| 9.0);
        let params = TunedParams::for_cache::<f64>(CacheInfo::DEFAULT);
        gemm_serial(&a, &b, &mut c, &params, &mut PackArena::new());
        assert!(c.as_slice().iter().all(|&x| x == 9.0), "empty k adds zero");
        let a = Matrix::<f64>::zeros(0, 5, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(5, 0, Layout::RowMajor);
        let mut c = Matrix::<f64>::zeros(0, 0, Layout::RowMajor);
        gemm_serial(&a, &b, &mut c, &params, &mut PackArena::new());
    }

    #[test]
    fn block_sizes_respect_caches_and_tiles() {
        for tile in TileShape::ALL {
            for bytes in [2usize, 4, 8] {
                let b = BlockSizes::for_cache(CacheInfo::DEFAULT, tile, bytes);
                assert!(b.kc >= 64 && b.kc <= 512 && b.kc.is_multiple_of(4));
                assert_eq!(b.mc % tile.mr, 0);
                assert_eq!(b.nc % tile.nr, 0);
                // Kc×NR B micropanel really fits L1d.
                assert!(b.kc * tile.nr * bytes <= CacheInfo::DEFAULT.l1d_bytes);
                // Mc×Kc A block really fits L2.
                assert!(b.mc * b.kc * bytes <= CacheInfo::DEFAULT.l2_bytes);
            }
        }
        // A tiny cache still yields runnable (clamped) blocks.
        let tiny = CacheInfo {
            l1d_bytes: 1024,
            l2_bytes: 4096,
            l3_bytes: 65536,
            ..CacheInfo::DEFAULT
        };
        let b = BlockSizes::for_cache(tiny, TileShape { mr: 8, nr: 8 }, 8);
        assert!(b.kc >= 64 && b.mc >= 8 && b.nc >= 8);
    }

    #[test]
    fn stats_count_packing_and_microkernels() {
        let (m, k, n) = (16, 8, 16);
        let a = Matrix::<f64>::random(m, k, Layout::RowMajor, 5);
        let b = Matrix::<f64>::random(k, n, Layout::RowMajor, 6);
        let params = TunedParams {
            tile: TileShape { mr: 4, nr: 4 },
            blocks: BlockSizes {
                mc: 16,
                kc: 8,
                nc: 16,
            },
        };
        let mut c = Matrix::<f64>::zeros(m, n, Layout::RowMajor);
        let stats = gemm_serial(&a, &b, &mut c, &params, &mut PackArena::new());
        // One k-panel, one row block: A packed once (16×8), B once (8×16),
        // and (16/4)·(16/4) microkernel tiles.
        assert_eq!(stats.pack_a_bytes, 16 * 8 * 8);
        assert_eq!(stats.pack_b_bytes, 8 * 16 * 8);
        assert_eq!(stats.microkernel_calls, 16);
    }

    #[test]
    fn default_tiles_per_width() {
        assert_eq!(TileShape::default_for(8), TileShape { mr: 4, nr: 4 });
        assert_eq!(TileShape::default_for(4), TileShape { mr: 4, nr: 8 });
        assert_eq!(TileShape::default_for(2), TileShape { mr: 4, nr: 8 });
        assert_eq!(TileShape { mr: 4, nr: 8 }.name(), "4x8");
    }

    #[test]
    #[should_panic(expected = "unsupported tile shape")]
    fn unsupported_tile_panics() {
        let a = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        let b = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        let mut c = Matrix::<f64>::zeros(2, 2, Layout::RowMajor);
        let params = TunedParams {
            tile: TileShape { mr: 3, nr: 5 },
            blocks: BlockSizes {
                mc: 8,
                kc: 8,
                nc: 8,
            },
        };
        gemm_serial(&a, &b, &mut c, &params, &mut PackArena::new());
    }
}
