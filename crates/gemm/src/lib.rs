//! Dense matrices and the paper's hand-rolled GEMM kernels.
//!
//! The study's workload is deliberately naive: `C += A · B` as a triple
//! loop, written the way a domain scientist would while prototyping, once
//! per programming model (Fig. 2 and Fig. 3 of the paper). This crate
//! provides:
//!
//! * [`Matrix`] — a dense matrix with runtime [`Layout`] (row-major as in
//!   NumPy/C, column-major as in Julia), because layout is exactly why the
//!   per-model loop nests differ;
//! * [`Scalar`] — the element abstraction covering `f64`, `f32`, and the
//!   software [`perfport_half::F16`];
//! * [`serial`] — all six loop orders plus a cache-blocked variant, used
//!   as references and for ablations;
//! * [`variants`] — one kernel per programming model, transcribing the
//!   paper's Fig. 2 loop structures (OpenMP-C `ikj`, Kokkos row-lambda,
//!   Julia `jli` column-major, Numba `prange` `ikj`);
//! * [`parallel`] — the same variants executed on the
//!   [`perfport_pool::ThreadPool`] work-sharing runtime;
//! * [`tuned`] — the packed, register-tiled, cache-blocked kernel standing
//!   in for the vendor BLAS: the measured baseline Table III's host
//!   efficiencies divide by;
//! * [`verify`] — numerical verification against an `f64` reference.

pub mod gpu;
pub mod gpu_tiled;
pub mod matrix;
pub mod parallel;
pub mod portable;
pub mod scalar;
pub mod serial;
pub mod tuned;
pub mod variants;
pub mod verify;

pub use gpu::{gpu_gemm, gpu_gemm_mixed, GpuVariant};
pub use gpu_tiled::{gpu_gemm_tiled, TILE};
pub use matrix::{Layout, Matrix};
pub use parallel::{par_gemm, par_gemm_element_grid};
pub use portable::{gemm_element, portable_gemm, Backend, BackendStats, GemmAccess};
pub use scalar::Scalar;
pub use serial::{
    gemm_arithmetic_intensity, gemm_flops, gemm_min_bytes, gemm_reference_f64, LoopOrder,
};
pub use tuned::{BlockSizes, PackArena, TileShape, TunedParams, TunedStats};
pub use variants::CpuVariant;
pub use verify::{max_abs_error, max_rel_error, verify_gemm, Tolerance};
