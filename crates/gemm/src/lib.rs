//! Dense matrices and the paper's hand-rolled GEMM kernels.
//!
//! The study's workload is deliberately naive: `C += A · B` as a triple
//! loop, written the way a domain scientist would while prototyping, once
//! per programming model (Fig. 2 and Fig. 3 of the paper). This crate
//! provides:
//!
//! * [`Matrix`] — a dense matrix with runtime [`Layout`] (row-major as in
//!   NumPy/C, column-major as in Julia), because layout is exactly why the
//!   per-model loop nests differ;
//! * [`Scalar`] — the element abstraction covering `f64`, `f32`, and the
//!   software [`perfport_half::F16`];
//! * [`serial`] — all six loop orders plus a cache-blocked variant, used
//!   as references and for ablations;
//! * [`variants`] — one kernel per programming model, transcribing the
//!   paper's Fig. 2 loop structures (OpenMP-C `ikj`, Kokkos row-lambda,
//!   Julia `jli` column-major, Numba `prange` `ikj`);
//! * [`parallel`] — the same variants executed on the
//!   [`perfport_pool::ThreadPool`] work-sharing runtime;
//! * [`tuned`] — the packed, register-tiled, cache-blocked kernel standing
//!   in for the vendor BLAS: the measured baseline Table III's host
//!   efficiencies divide by;
//! * [`simd`] — the explicit AVX2+FMA / AVX-512 / NEON microkernels the
//!   tuned kernel dispatches to at runtime (portable autovectorized
//!   fallback included), overridable via `PERFPORT_SIMD`;
//! * [`verify`] — numerical verification against an `f64` reference;
//! * [`batch`] — the batched small-GEMM serving layer: shape-bucketed
//!   [`Problem`] streams executed on the pool (or a
//!   [`perfport_pool::WorkQueue`]) under a batch ≡ serial bitwise
//!   contract.
//!
//! # Example
//!
//! Multiply two random matrices with the tuned (vendor stand-in) kernel
//! and verify against the `f64` reference:
//!
//! ```
//! use perfport_gemm::{tuned, Layout, Matrix};
//!
//! let (m, k, n) = (33, 17, 29);
//! let a = Matrix::<f32>::random(m, k, Layout::RowMajor, 1);
//! let b = Matrix::<f32>::random(k, n, Layout::RowMajor, 2);
//! let mut c = Matrix::<f32>::zeros(m, n, Layout::RowMajor);
//!
//! let params = tuned::TunedParams::host::<f32>();
//! tuned::gemm_serial(&a, &b, &mut c, &params, &mut tuned::PackArena::new());
//!
//! let max_rel_err = perfport_gemm::verify_gemm(&a, &b, &c).expect("tuned GEMM verifies");
//! assert!(max_rel_err < 1e-4);
//! ```

#![deny(missing_docs)]

pub mod batch;
pub mod gpu;
pub mod gpu_tiled;
pub mod matrix;
pub mod parallel;
pub mod portable;
pub mod scalar;
pub mod serial;
pub mod simd;
pub mod tuned;
pub mod variants;
pub mod verify;

pub use batch::{
    bucket, bucket_params, enqueue_batch, gemm_batch, gemm_batch_serial, BatchTicket, BucketKey,
    Output, Precision, Problem,
};
pub use gpu::{gpu_gemm, gpu_gemm_mixed, GpuVariant};
pub use gpu_tiled::{gpu_gemm_tiled, gpu_gemm_tiled_mixed, TILE, TILE_SMEM_ELEMS};
pub use matrix::{Layout, Matrix};
pub use parallel::{par_gemm, par_gemm_element_grid};
pub use portable::{gemm_element, portable_gemm, Backend, BackendStats, GemmAccess};
pub use scalar::Scalar;
pub use serial::{
    gemm_arithmetic_intensity, gemm_flops, gemm_min_bytes, gemm_reference_f64, LoopOrder,
};
pub use simd::Isa;
pub use tuned::{BlockSizes, PackArena, TileShape, TunedParams, TunedStats};
pub use variants::CpuVariant;
pub use verify::{max_abs_error, max_rel_error, verify_gemm, Tolerance};
