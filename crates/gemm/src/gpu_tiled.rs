//! Shared-memory tiled GPU GEMM — the optimisation the paper's
//! hand-rolled kernels deliberately leave out.
//!
//! The study's naive kernels re-read `A` and `B` from global memory for
//! every multiply-add; the first optimisation any GPU programming guide
//! teaches is to stage `TILE × TILE` blocks of `A` and `B` through shared
//! memory behind `__syncthreads()`. This module implements that kernel on
//! the simulator's phase-stepped cooperative interface, giving the
//! ablation data for "what was left on the table": global-memory traffic
//! drops by a factor of `TILE` while flops stay identical.
//!
//! Phase layout per tile step `t` (of `k / TILE` steps):
//!
//! * phase `2t`   — each thread loads one element of the `A` tile and one
//!   of the `B` tile into shared memory, then barrier;
//! * phase `2t+1` — each thread accumulates `TILE` multiply-adds from
//!   shared memory into its per-thread accumulator, then barrier;
//! * after the last step, the accumulator is written to `C`.
//!
//! [`gpu_gemm_tiled_mixed`] is the same staging pattern with inputs at
//! precision `I` widened to the accumulator precision `O` on load — the
//! fragment shape of a tensor-core MMA (FP16 tiles in, FP32 accumulate,
//! following Faingnaert et al.). The simulator executes it functionally;
//! the *throughput* of the tensor-core datapath is modelled separately
//! (`perfport_machines::tensor_core_gflops`, occupancy-derived).

use crate::matrix::{Layout, Matrix};
use crate::scalar::Scalar;
use perfport_gpusim::{
    CooperativeKernel, Dim3, Gpu, LaunchConfig, LaunchError, LaunchOptions, LaunchStats, SharedMem,
    ThreadCtx,
};

/// Tile side length (threads per block side).
pub const TILE: usize = 16;

/// Shared-memory footprint of one tiled block, in `O`-sized elements
/// (an `A` tile plus a `B` tile, both staged at accumulator precision).
pub const TILE_SMEM_ELEMS: usize = 2 * TILE * TILE;

struct TiledGemm<'a, I: Scalar, O: Scalar> {
    a: &'a perfport_gpusim::DeviceBuffer<I>,
    b: &'a perfport_gpusim::DeviceBuffer<I>,
    c: &'a perfport_gpusim::DeviceBuffer<O>,
    m: usize,
    n: usize,
    k: usize,
    steps: usize,
}

impl<I: Scalar, O: Scalar> CooperativeKernel<O> for TiledGemm<'_, I, O> {
    /// The running dot-product accumulator lives across barriers.
    type State = Option<O>;

    fn phase(
        &self,
        phase: usize,
        ctx: &ThreadCtx,
        state: &mut Self::State,
        shared: &SharedMem<O>,
    ) -> bool {
        let acc = state.get_or_insert(O::zero());
        let (tx, ty) = (ctx.thread_idx.x as usize, ctx.thread_idx.y as usize);
        let col = ctx.global_x();
        let row = ctx.global_y();
        let step = phase / 2;

        if phase.is_multiple_of(2) {
            // Load phase: stage A[row, step*TILE + tx] and
            // B[step*TILE + ty, col], widened to the accumulator
            // precision; zero-pad outside the matrix so the compute
            // phase stays uniform (no barrier divergence).
            let ka = step * TILE + tx;
            let av = if row < self.m && ka < self.k {
                O::from_f64(self.a.read(ctx, row * self.k + ka).to_f64())
            } else {
                O::zero()
            };
            let kb = step * TILE + ty;
            let bv = if kb < self.k && col < self.n {
                O::from_f64(self.b.read(ctx, kb * self.n + col).to_f64())
            } else {
                O::zero()
            };
            shared.write(ty * TILE + tx, av);
            shared.write(TILE * TILE + ty * TILE + tx, bv);
            true
        } else {
            // Compute phase: TILE multiply-adds from shared memory.
            for l in 0..TILE {
                let av = shared.read(ty * TILE + l);
                let bv = shared.read(TILE * TILE + l * TILE + tx);
                *acc = av.mul_add(bv, *acc);
            }
            ctx.tally_flops(2 * TILE as u64);
            if step + 1 < self.steps {
                true
            } else {
                if row < self.m && col < self.n {
                    self.c.write(ctx, row * self.n + col, *acc);
                }
                false
            }
        }
    }
}

/// Runs the tiled kernel and returns the result with its launch
/// counters.
///
/// # Errors
///
/// Propagates simulator launch errors.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn gpu_gemm_tiled<T: Scalar>(
    gpu: &Gpu,
    a: &Matrix<T>,
    b: &Matrix<T>,
) -> Result<(Matrix<T>, LaunchStats), LaunchError> {
    gpu_gemm_tiled_mixed::<T, T>(gpu, a, b)
}

/// Mixed-precision tiled kernel: inputs at precision `I`, shared-memory
/// staging, accumulation, and output at precision `O` — the functional
/// execution behind the modelled tensor-core variant
/// (`I = F16, O = f32`).
///
/// # Errors
///
/// Propagates simulator launch errors.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn gpu_gemm_tiled_mixed<I: Scalar, O: Scalar>(
    gpu: &Gpu,
    a: &Matrix<I>,
    b: &Matrix<I>,
) -> Result<(Matrix<O>, LaunchStats), LaunchError> {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let a_host = a.to_layout(Layout::RowMajor);
    let b_host = b.to_layout(Layout::RowMajor);
    let da = gpu.alloc_from_slice(a_host.as_slice());
    let db = gpu.alloc_from_slice(b_host.as_slice());
    let dc = gpu.alloc_filled(m * n, O::zero());

    let cfg = LaunchConfig::cover2d(n as u32, m as u32, Dim3::d2(TILE as u32, TILE as u32));
    let kernel = TiledGemm {
        a: &da,
        b: &db,
        c: &dc,
        m,
        n,
        k,
        steps: k.div_ceil(TILE),
    };
    let stats = gpu.launch_cooperative(
        cfg,
        LaunchOptions::default(),
        TILE_SMEM_ELEMS,
        O::zero(),
        &kernel,
    )?;

    let host = dc.to_host();
    let mut c = Matrix::<O>::zeros(m, n, Layout::RowMajor);
    c.as_mut_slice().copy_from_slice(&host);
    Ok((c, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::{gpu_gemm, GpuVariant};
    use crate::serial::gemm_reference_f64;
    use perfport_gpusim::DeviceClass;

    #[test]
    fn tiled_gemm_matches_reference_exact_tiles() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let (m, k, n) = (64, 48, 32);
        let a = Matrix::<f64>::random(m, k, Layout::RowMajor, 1);
        let b = Matrix::<f64>::random(k, n, Layout::RowMajor, 2);
        let reference = gemm_reference_f64(&a, &b);
        let (c, stats) = gpu_gemm_tiled(&gpu, &a, &b).unwrap();
        assert!(c.max_abs_diff(&reference) < 1e-12);
        assert_eq!(stats.flops, {
            // Every resident thread (including padded edge threads)
            // executes TILE MACs per step.
            let blocks = (m as u64 / TILE as u64) * (n as u64 / TILE as u64);
            blocks * (TILE * TILE) as u64 * (k as u64 / TILE as u64) * 2 * TILE as u64
        });
    }

    #[test]
    fn tiled_gemm_matches_reference_ragged_shapes() {
        let gpu = Gpu::new(DeviceClass::AmdLike);
        for (m, k, n) in [(17, 23, 19), (16, 10, 50), (33, 16, 31), (1, 1, 1)] {
            let a = Matrix::<f32>::random(m, k, Layout::RowMajor, 3);
            let b = Matrix::<f32>::random(k, n, Layout::RowMajor, 4);
            let reference = gemm_reference_f64(&a, &b);
            let (c, _) = gpu_gemm_tiled(&gpu, &a, &b).unwrap();
            let cast: Matrix<f64> = c.cast();
            assert!(cast.max_abs_diff(&reference) < 1e-3, "({m},{k},{n})");
        }
    }

    #[test]
    fn tiling_slashes_global_traffic() {
        // The ablation headline: identical problem, ~TILE× fewer global
        // loads than the naive kernel.
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let nsize = 128;
        let a = Matrix::<f64>::random(nsize, nsize, Layout::RowMajor, 5);
        let b = Matrix::<f64>::random(nsize, nsize, Layout::RowMajor, 6);
        let (_, naive) = gpu_gemm(&gpu, GpuVariant::Cuda, &a, &b, Dim3::d2(16, 16)).unwrap();
        let (_, tiled) = gpu_gemm_tiled(&gpu, &a, &b).unwrap();
        let reduction = naive.loads as f64 / tiled.loads as f64;
        assert!(
            (reduction - TILE as f64).abs() < 1.0,
            "expected ~{TILE}x reduction, got {reduction}"
        );
        // The traffic moved into shared memory instead.
        assert!(tiled.shared_loads > tiled.loads);
        assert_eq!(naive.shared_loads, 0);
    }

    #[test]
    fn tiled_kernel_uses_barrier_phases() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let nsize = 64;
        let a = Matrix::<f64>::random(nsize, nsize, Layout::RowMajor, 7);
        let b = Matrix::<f64>::random(nsize, nsize, Layout::RowMajor, 8);
        let (_, stats) = gpu_gemm_tiled(&gpu, &a, &b).unwrap();
        // k/TILE steps × 2 phases each.
        assert_eq!(stats.phases, (nsize / TILE) as u64 * 2);
    }
}
