//! Property tests for the task-graph scheduler: the graph ≡ serial
//! bitwise contract of the software-pipelined tuned GEMM, under ragged
//! proptest-generated shapes (degenerate 0/1 extents included) across
//! all three precisions and worker counts 1, 2, and 7.
//!
//! The barrier scheduler is run through the same cases: both disciplines
//! must reproduce the serial panel accumulation order exactly, so any
//! divergence is a scheduling bug, not round-off.

use perfport_gemm::{tuned, BlockSizes, Layout, Matrix, PackArena, Scalar, TileShape, TunedParams};
use perfport_half::F16;
use perfport_pool::{SchedMode, ThreadPool};
use proptest::prelude::*;

/// Tiny blocks so even small generated shapes produce several row blocks
/// and several (jc, p0) panels — the pipeline's double buffers must wrap.
fn tiny_params() -> TunedParams {
    TunedParams {
        tile: TileShape { mr: 4, nr: 4 },
        blocks: BlockSizes {
            mc: 8,
            kc: 12,
            nc: 16,
        },
    }
}

fn check<T: Scalar>(m: usize, k: usize, n: usize, seed: u64, col: bool, jobs: usize) {
    let layout = if col {
        Layout::ColMajor
    } else {
        Layout::RowMajor
    };
    let params = tiny_params();
    let a = Matrix::<T>::random(m, k, layout, seed);
    let b = Matrix::<T>::random(k, n, layout, seed + 1);
    let mut c_serial = Matrix::<T>::zeros(m, n, layout);
    tuned::gemm_serial(&a, &b, &mut c_serial, &params, &mut PackArena::new());
    let pool = ThreadPool::new(jobs);
    for sched in [SchedMode::Graph, SchedMode::Barrier] {
        let mut c = Matrix::<T>::zeros(m, n, layout);
        tuned::gemm_with_sched(&pool, &a, &b, &mut c, &params, sched);
        assert_eq!(
            c,
            c_serial,
            "{} {m}x{k}x{n} {layout} jobs={jobs} sched={sched} diverged from serial",
            T::NAME
        );
    }
}

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    // 0 included: empty operands must hit the pipeline's early return.
    (0usize..40, 0usize..40, 0usize..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn graph_matches_serial_bitwise_f64(
        (m, k, n) in dims(), seed in 0u64..1000, col in proptest::bool::ANY
    ) {
        for jobs in [1usize, 2, 7] {
            check::<f64>(m, k, n, seed, col, jobs);
        }
    }

    #[test]
    fn graph_matches_serial_bitwise_f32(
        (m, k, n) in dims(), seed in 0u64..1000, col in proptest::bool::ANY
    ) {
        for jobs in [1usize, 2, 7] {
            check::<f32>(m, k, n, seed, col, jobs);
        }
    }

    #[test]
    fn graph_matches_serial_bitwise_f16(
        (m, k, n) in dims(), seed in 0u64..1000, col in proptest::bool::ANY
    ) {
        for jobs in [1usize, 2, 7] {
            check::<F16>(m, k, n, seed, col, jobs);
        }
    }
}
