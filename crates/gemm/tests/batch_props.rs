//! Property tests for the batched serving layer: the shape-bucketing
//! invariants and the batch ≡ serial bitwise contract, under ragged
//! proptest-generated shape mixes (degenerate 0/1 extents included)
//! across all three precisions.

use perfport_gemm::batch::{
    bucket, enqueue_batch, gemm_batch, gemm_batch_serial, Precision, Problem,
};
use perfport_gemm::{Layout, Matrix};
use perfport_pool::{ThreadPool, WorkQueue};
use proptest::prelude::*;

/// One generated problem: precision selector, ragged dims (0 and 1
/// included — empty operands and k = 0 must round-trip), seed, layouts.
#[derive(Debug, Clone)]
struct Spec {
    precision: u8,
    m: usize,
    n: usize,
    k: usize,
    seed: u64,
    col_a: bool,
    col_b: bool,
}

fn spec() -> impl Strategy<Value = Spec> {
    (
        0u8..3,
        0usize..20,
        0usize..20,
        0usize..20,
        0u64..1000,
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(precision, m, n, k, seed, col_a, col_b)| Spec {
            precision,
            m,
            n,
            k,
            seed,
            col_a,
            col_b,
        })
}

fn build(specs: &[Spec]) -> Vec<Problem> {
    specs
        .iter()
        .map(|s| {
            let la = if s.col_a {
                Layout::ColMajor
            } else {
                Layout::RowMajor
            };
            let lb = if s.col_b {
                Layout::ColMajor
            } else {
                Layout::RowMajor
            };
            match s.precision {
                0 => Problem::new_f64(
                    Matrix::random(s.m, s.k, la, s.seed),
                    Matrix::random(s.k, s.n, lb, s.seed + 1),
                ),
                1 => Problem::new_f32(
                    Matrix::random(s.m, s.k, la, s.seed),
                    Matrix::random(s.k, s.n, lb, s.seed + 1),
                ),
                _ => Problem::new_f16(
                    Matrix::random(s.m, s.k, la, s.seed),
                    Matrix::random(s.k, s.n, lb, s.seed + 1),
                ),
            }
        })
        .collect()
}

fn batch_of_specs() -> impl Strategy<Value = Vec<Spec>> {
    proptest::collection::vec(spec(), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bucketing is a partition: every problem index appears in exactly
    /// one bucket, and every bucket's key matches its members.
    #[test]
    fn every_problem_lands_in_exactly_one_bucket(specs in batch_of_specs()) {
        let problems = build(&specs);
        let buckets = bucket(&problems);
        let mut seen: Vec<usize> = Vec::new();
        for (key, indices) in &buckets {
            for &idx in indices {
                prop_assert_eq!(problems[idx].key(), *key, "index {} in wrong bucket", idx);
                seen.push(idx);
            }
        }
        seen.sort_unstable();
        let expected: Vec<usize> = (0..problems.len()).collect();
        prop_assert_eq!(seen, expected, "bucketing must be a partition");
    }

    /// Bucket iteration order is canonical — a pure function of the
    /// problems, never of concurrency — and within a bucket indices keep
    /// submission order.
    #[test]
    fn bucket_order_is_canonical(specs in batch_of_specs()) {
        let problems = build(&specs);
        let buckets = bucket(&problems);
        let keys: Vec<_> = buckets.keys().copied().collect();
        let mut sorted = keys.clone();
        sorted.sort();
        prop_assert_eq!(&keys, &sorted, "bucket-major order must be sorted BucketKey order");
        for indices in buckets.values() {
            prop_assert!(
                indices.windows(2).all(|w| w[0] < w[1]),
                "within-bucket order must be submission order"
            );
        }
        // Re-bucketing (any later call, any thread count) reproduces the
        // same map exactly.
        prop_assert_eq!(buckets, bucket(&problems));
    }

    /// The tentpole contract: concatenated batch outputs are bitwise
    /// identical to per-problem serial execution in submission order,
    /// for any bucketing and any worker count — through both the
    /// pool path and the work-queue path.
    #[test]
    fn batch_equals_serial_bitwise(specs in batch_of_specs()) {
        let problems = build(&specs);
        let serial: Vec<Vec<u8>> = gemm_batch_serial(&problems)
            .iter()
            .map(|o| o.to_le_bytes())
            .collect();
        for jobs in [1usize, 3, 5] {
            let pool = ThreadPool::new(jobs);
            let batch = gemm_batch(&pool, &problems);
            prop_assert_eq!(batch.len(), serial.len());
            for (i, out) in batch.iter().enumerate() {
                prop_assert_eq!(
                    &out.to_le_bytes(),
                    &serial[i],
                    "pool path diverged at problem {} with {} jobs", i, jobs
                );
            }
            let queue = WorkQueue::new();
            let ticket = enqueue_batch(&queue, problems.clone());
            queue.drain(&pool);
            for (i, out) in ticket.collect().iter().enumerate() {
                prop_assert_eq!(
                    &out.to_le_bytes(),
                    &serial[i],
                    "queue path diverged at problem {} with {} jobs", i, jobs
                );
            }
        }
    }
}

/// Non-property regression for the F16 typed-arena fix: a worker that
/// just packed f32 panels must serve an F16 problem (and vice versa)
/// through its own typed arena, never a reinterpreted one. Interleaved
/// same-shape f32/f16 problems force exactly that switch on every
/// worker, and the outputs must still verify numerically and match the
/// serial reference bitwise.
#[test]
fn mixed_f32_f16_batches_use_typed_arenas() {
    let l = Layout::RowMajor;
    let problems: Vec<Problem> = (0..12)
        .map(|i| {
            let seed = 100 + 2 * i as u64;
            if i % 2 == 0 {
                Problem::new_f32(
                    Matrix::random(16, 24, l, seed),
                    Matrix::random(24, 12, l, seed + 1),
                )
            } else {
                Problem::new_f16(
                    Matrix::random(16, 24, l, seed),
                    Matrix::random(24, 12, l, seed + 1),
                )
            }
        })
        .collect();
    let serial = gemm_batch_serial(&problems);
    for jobs in [1usize, 4] {
        let pool = ThreadPool::new(jobs);
        let outputs = gemm_batch(&pool, &problems);
        for (i, (out, reference)) in outputs.iter().zip(&serial).enumerate() {
            assert_eq!(
                out.to_le_bytes(),
                reference.to_le_bytes(),
                "problem {i} diverged with {jobs} jobs"
            );
        }
    }
    // The outputs are not just self-consistent but numerically right.
    for (i, (p, out)) in problems.iter().zip(&serial).enumerate() {
        let err = match (p, out) {
            (Problem::F32 { a, b }, perfport_gemm::batch::Output::F32(c)) => {
                perfport_gemm::verify_gemm(a, b, c).unwrap_or(f64::INFINITY)
            }
            (Problem::F16 { a, b }, perfport_gemm::batch::Output::F16(c)) => {
                perfport_gemm::verify_gemm(a, b, c).unwrap_or(f64::INFINITY)
            }
            _ => panic!("problem {i} precision mismatch"),
        };
        let tol = if matches!(p.precision(), Precision::F16) {
            0.05
        } else {
            1e-4
        };
        assert!(err < tol, "problem {i}: max rel err {err}");
    }
}
