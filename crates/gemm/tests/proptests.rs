//! Property-based tests for the GEMM kernels: algebraic identities that
//! must hold for any shape, layout, loop order, and programming-model
//! variant.

use perfport_gemm::{
    gemm_reference_f64, matrix::Layout, par_gemm, serial::gemm_loop_order, serial::LoopOrder, simd,
    tuned, verify_gemm, BlockSizes, CpuVariant, Isa, Matrix, PackArena, TileShape, TunedParams,
};
use perfport_half::F16;
use perfport_pool::{CacheInfo, Schedule, ThreadPool};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..24, 1usize..24, 1usize..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every loop order computes the same product (to f64 round-off).
    #[test]
    fn loop_orders_agree((m, k, n) in dims(), seed in 0u64..1000, col in proptest::bool::ANY) {
        let layout = if col { Layout::ColMajor } else { Layout::RowMajor };
        let a = Matrix::<f64>::random(m, k, layout, seed);
        let b = Matrix::<f64>::random(k, n, layout, seed + 1);
        let reference = gemm_reference_f64(&a, &b);
        for order in LoopOrder::ALL {
            let mut c = Matrix::<f64>::zeros(m, n, layout);
            gemm_loop_order(order, &a, &b, &mut c);
            prop_assert!(c.max_abs_diff(&reference) < 1e-10, "{}", order.name());
        }
    }

    /// A · I == A for every model variant.
    #[test]
    fn identity_is_neutral((m, k, _) in dims(), seed in 0u64..1000) {
        for v in CpuVariant::ALL {
            let layout = v.layout();
            let a = Matrix::<f64>::random(m, k, layout, seed);
            let eye = Matrix::<f64>::from_fn(k, k, layout, |i, j| {
                if i == j { 1.0 } else { 0.0 }
            });
            let mut c = Matrix::<f64>::zeros(m, k, layout);
            v.run_serial(&a, &eye, &mut c);
            prop_assert!(c.max_abs_diff(&a) < 1e-12, "{v}");
        }
    }

    /// Multiplying by zero leaves C unchanged (accumulate semantics).
    #[test]
    fn zero_product_preserves_c((m, k, n) in dims(), seed in 0u64..1000) {
        let a = Matrix::<f64>::zeros(m, k, Layout::RowMajor);
        let b = Matrix::<f64>::random(k, n, Layout::RowMajor, seed);
        let mut c = Matrix::<f64>::random(m, n, Layout::RowMajor, seed + 2);
        let before = c.clone();
        CpuVariant::OpenMpC.run_serial(&a, &b, &mut c);
        prop_assert_eq!(c, before);
    }

    /// All four model variants compute the same product.
    #[test]
    fn variants_agree((m, k, n) in dims(), seed in 0u64..1000) {
        let mut results = Vec::new();
        for v in CpuVariant::ALL {
            let layout = v.layout();
            let a = Matrix::<f64>::random(m, k, Layout::RowMajor, seed).to_layout(layout);
            let b = Matrix::<f64>::random(k, n, Layout::RowMajor, seed + 1).to_layout(layout);
            let mut c = Matrix::<f64>::zeros(m, n, layout);
            v.run_serial(&a, &b, &mut c);
            results.push(c.to_layout(Layout::RowMajor));
        }
        for r in &results[1..] {
            prop_assert!(results[0].max_abs_diff(r) < 1e-10);
        }
    }

    /// Parallel execution equals serial execution bit-for-bit, regardless
    /// of team size and schedule.
    #[test]
    fn parallel_equals_serial(
        (m, k, n) in dims(),
        seed in 0u64..1000,
        threads in 1usize..6,
        dynamic in proptest::bool::ANY,
    ) {
        let pool = ThreadPool::new(threads);
        let schedule = if dynamic {
            Schedule::Dynamic { chunk: 2 }
        } else {
            Schedule::StaticBlock
        };
        for v in [CpuVariant::OpenMpC, CpuVariant::JuliaThreads] {
            let layout = v.layout();
            let a = Matrix::<f64>::random(m, k, layout, seed);
            let b = Matrix::<f64>::random(k, n, layout, seed + 1);
            let mut serial = Matrix::<f64>::zeros(m, n, layout);
            v.run_serial(&a, &b, &mut serial);
            let mut par = Matrix::<f64>::zeros(m, n, layout);
            par_gemm(&pool, v, &a, &b, &mut par, schedule);
            prop_assert_eq!(&serial, &par, "{} not deterministic", v);
        }
    }

    /// (A·B)ᵀ == Bᵀ·Aᵀ — transpose identity through the reference kernel.
    #[test]
    fn transpose_identity((m, k, n) in dims(), seed in 0u64..1000) {
        let a = Matrix::<f64>::random(m, k, Layout::RowMajor, seed);
        let b = Matrix::<f64>::random(k, n, Layout::RowMajor, seed + 1);
        let ab_t = gemm_reference_f64(&a, &b).transposed();
        let bt_at = gemm_reference_f64(&b.transposed(), &a.transposed());
        prop_assert!(ab_t.max_abs_diff(&bt_at) < 1e-10);
    }
}

/// Shapes for the tuned packed kernel: deliberately not multiples of any
/// tile or block size, down to 1×1 and the empty inner dimension.
fn tuned_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..40, 0usize..40, 1usize..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The tuned packed kernel matches the f64 reference for any shape
    /// (including empty k) and either layout, in both precisions.
    #[test]
    fn tuned_matches_reference((m, k, n) in tuned_dims(), seed in 0u64..1000, col in proptest::bool::ANY) {
        let layout = if col { Layout::ColMajor } else { Layout::RowMajor };
        let a64 = Matrix::<f64>::random(m, k, layout, seed);
        let b64 = Matrix::<f64>::random(k, n, layout, seed + 1);
        let reference = gemm_reference_f64(&a64, &b64);

        let mut c64 = Matrix::<f64>::zeros(m, n, layout);
        tuned::gemm_serial(
            &a64, &b64, &mut c64,
            &TunedParams::for_cache::<f64>(CacheInfo::DEFAULT),
            &mut PackArena::new(),
        );
        prop_assert!(c64.max_abs_diff(&reference) < 1e-12);

        let a32: Matrix<f32> = a64.cast();
        let b32: Matrix<f32> = b64.cast();
        let mut c32 = Matrix::<f32>::zeros(m, n, layout);
        tuned::gemm_serial(
            &a32, &b32, &mut c32,
            &TunedParams::for_cache::<f32>(CacheInfo::DEFAULT),
            &mut PackArena::new(),
        );
        let c32_as_64: Matrix<f64> = c32.cast();
        prop_assert!(c32_as_64.max_abs_diff(&reference) < 1e-3);
    }

    /// Every supported register-tile shape computes the same product.
    #[test]
    fn tuned_tile_shapes_agree((m, k, n) in tuned_dims(), seed in 0u64..1000, col in proptest::bool::ANY) {
        let layout = if col { Layout::ColMajor } else { Layout::RowMajor };
        let a = Matrix::<f64>::random(m, k, layout, seed);
        let b = Matrix::<f64>::random(k, n, layout, seed + 1);
        let reference = gemm_reference_f64(&a, &b);
        for tile in TileShape::ALL {
            let params = TunedParams::with_tile(CacheInfo::DEFAULT, tile, 8);
            let mut c = Matrix::<f64>::zeros(m, n, layout);
            tuned::gemm_serial(&a, &b, &mut c, &params, &mut PackArena::new());
            prop_assert!(c.max_abs_diff(&reference) < 1e-12, "tile {tile}");
        }
    }

    /// Parallel tuned execution is bit-identical to serial for any team
    /// size and (deliberately tiny) blocking, so results never depend on
    /// which worker owns a row block.
    #[test]
    fn tuned_parallel_is_bitwise_serial(
        (m, k, n) in tuned_dims(),
        seed in 0u64..1000,
        threads in 1usize..6,
        mc in 1usize..5,
        kc in 1usize..20,
        col in proptest::bool::ANY,
    ) {
        let layout = if col { Layout::ColMajor } else { Layout::RowMajor };
        let params = TunedParams {
            tile: TileShape { mr: 4, nr: 4 },
            blocks: BlockSizes { mc: mc * 4, kc, nc: 16 },
        };
        let a = Matrix::<f64>::random(m, k, layout, seed);
        let b = Matrix::<f64>::random(k, n, layout, seed + 1);
        let mut serial = Matrix::<f64>::zeros(m, n, layout);
        tuned::gemm_serial(&a, &b, &mut serial, &params, &mut PackArena::new());
        let pool = ThreadPool::new(threads);
        let mut par = Matrix::<f64>::zeros(m, n, layout);
        tuned::gemm(&pool, &a, &b, &mut par, &params);
        prop_assert_eq!(serial, par);
    }

    /// The vendor variant rides the generic parallel driver and equals its
    /// own serial run bit-for-bit, like every other variant.
    #[test]
    fn vendor_variant_parallel_equals_serial(
        (m, k, n) in tuned_dims(),
        seed in 0u64..1000,
        threads in 1usize..6,
    ) {
        let v = CpuVariant::Vendor;
        let layout = v.layout();
        let a = Matrix::<f64>::random(m, k, layout, seed);
        let b = Matrix::<f64>::random(k, n, layout, seed + 1);
        let mut serial = Matrix::<f64>::zeros(m, n, layout);
        v.run_serial(&a, &b, &mut serial);
        let pool = ThreadPool::new(threads);
        let mut par = Matrix::<f64>::zeros(m, n, layout);
        par_gemm(&pool, v, &a, &b, &mut par, Schedule::StaticBlock);
        prop_assert_eq!(serial, par);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every natively dispatched microkernel agrees with the portable
    /// fallback within the FMA-contraction bound for every supported
    /// MR×NR shape and any panel depth (including kb = 0). The portable
    /// kernel rounds multiply and add separately; a native kernel fuses
    /// them, so each of the `kb` accumulation steps differs by at most
    /// one rounding — comfortably inside the `verify` tolerance
    /// `k·u·4` that the tuned GEMM is held to.
    #[test]
    fn simd_microkernels_match_portable(kb in 0usize..35, seed in 0u64..1000) {
        for isa in Isa::ALL {
            if !isa.available() {
                continue;
            }
            for tile in TileShape::ALL {
                simd_vs_portable_f64(isa, tile, kb, seed);
                simd_vs_portable_f32(isa, tile, kb, seed);
            }
        }
    }

    /// The full tuned GEMM run under every available ISA stays within the
    /// `verify` tolerance of the f64 reference for ragged shapes, both
    /// layouts, and all three precisions (FP16 exercises the widened-pack
    /// path).
    #[test]
    fn tuned_gemm_verifies_under_every_isa(
        (m, k, n) in tuned_dims(),
        seed in 0u64..1000,
        col in proptest::bool::ANY,
    ) {
        let layout = if col { Layout::ColMajor } else { Layout::RowMajor };
        for isa in Isa::ALL {
            if !isa.available() {
                continue;
            }
            let a = Matrix::<f64>::random(m, k, layout, seed);
            let b = Matrix::<f64>::random(k, n, layout, seed + 1);
            for tile in TileShape::ALL {
                let params = TunedParams::with_tile(CacheInfo::DEFAULT, tile, 8);
                let mut c = Matrix::<f64>::zeros(m, n, layout);
                tuned::gemm_serial_with_isa(&a, &b, &mut c, &params, &mut PackArena::new(), isa);
                prop_assert!(verify_gemm(&a, &b, &c).is_ok(), "{isa} f64 tile {tile}");
            }
            let a32: Matrix<f32> = a.cast();
            let b32: Matrix<f32> = b.cast();
            let mut c32 = Matrix::<f32>::zeros(m, n, layout);
            let params32 = TunedParams::for_cache_isa::<f32>(CacheInfo::DEFAULT, isa);
            tuned::gemm_serial_with_isa(&a32, &b32, &mut c32, &params32, &mut PackArena::new(), isa);
            prop_assert!(verify_gemm(&a32, &b32, &c32).is_ok(), "{isa} f32");

            let a16: Matrix<F16> = a.cast();
            let b16: Matrix<F16> = b.cast();
            let mut c16 = Matrix::<F16>::zeros(m, n, layout);
            let params16 = TunedParams::for_cache_isa::<F16>(CacheInfo::DEFAULT, isa);
            tuned::gemm_serial_with_isa(&a16, &b16, &mut c16, &params16, &mut PackArena::new(), isa);
            prop_assert!(verify_gemm(&a16, &b16, &c16).is_ok(), "{isa} f16 widened");
        }
    }

    /// The parallel≡serial bitwise guarantee holds per dispatched kernel:
    /// whatever `PERFPORT_SIMD` resolves to in this process, tuned
    /// parallel runs reproduce tuned serial runs exactly (here under the
    /// ISA-preferred default tiles rather than the forced 4×4 above).
    #[test]
    fn tuned_parallel_bitwise_serial_under_dispatched_isa(
        (m, k, n) in tuned_dims(),
        seed in 0u64..1000,
        threads in 1usize..6,
    ) {
        let params = TunedParams {
            blocks: BlockSizes { mc: 8, kc: 12, nc: 16 },
            ..TunedParams::host::<f32>()
        };
        let a = Matrix::<f32>::random(m, k, Layout::RowMajor, seed);
        let b = Matrix::<f32>::random(k, n, Layout::RowMajor, seed + 1);
        let mut serial = Matrix::<f32>::zeros(m, n, Layout::RowMajor);
        tuned::gemm_serial(&a, &b, &mut serial, &params, &mut PackArena::new());
        let pool = ThreadPool::new(threads);
        let mut par = Matrix::<f32>::zeros(m, n, Layout::RowMajor);
        tuned::gemm(&pool, &a, &b, &mut par, &params);
        prop_assert_eq!(serial, par);
    }
}

/// GPU shapes: ragged around the 16-wide shared-memory tile, down to
/// 1×1×1, so partial tiles and zero-padded edge threads are exercised.
fn gpu_dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..40, 1usize..40, 1usize..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tiled shared-memory kernel agrees with the naive GPU kernel
    /// within the `verify` tolerance for ragged shapes on both device
    /// classes; the mixed F16-in/F32-accumulate variant (the functional
    /// execution behind the modelled tensor-core path) stays within the
    /// f32 re-association budget of its naive counterpart.
    #[test]
    fn gpu_tiled_matches_naive((m, k, n) in gpu_dims(), seed in 0u64..1000) {
        use perfport_gemm::{gpu_gemm, gpu_gemm_mixed, gpu_gemm_tiled, gpu_gemm_tiled_mixed, GpuVariant};
        use perfport_gpusim::{DeviceClass, Dim3, Gpu};
        for (class, variant) in [
            (DeviceClass::NvidiaLike, GpuVariant::Cuda),
            (DeviceClass::AmdLike, GpuVariant::Hip),
        ] {
            let gpu = Gpu::new(class);
            let a = Matrix::<f64>::random(m, k, Layout::RowMajor, seed);
            let b = Matrix::<f64>::random(k, n, Layout::RowMajor, seed + 1);
            let (naive, _) = gpu_gemm(&gpu, variant, &a, &b, Dim3::d2(32, 32)).unwrap();
            let (tiled, _) = gpu_gemm_tiled(&gpu, &a, &b).unwrap();
            prop_assert!(verify_gemm(&a, &b, &tiled).is_ok(), "{variant} tiled f64");
            prop_assert!(
                naive.to_layout(Layout::RowMajor).max_abs_diff(&tiled) < 1e-10,
                "{variant} tiled vs naive f64"
            );

            let a16: Matrix<F16> = a.cast();
            let b16: Matrix<F16> = b.cast();
            let (naive16, _) =
                gpu_gemm_mixed::<F16, f32>(&gpu, variant, &a16, &b16, Dim3::d2(32, 32)).unwrap();
            let (tiled16, _) = gpu_gemm_tiled_mixed::<F16, f32>(&gpu, &a16, &b16).unwrap();
            // Same widened products, different summation order: the gap
            // is bounded by f32 re-association over k terms.
            prop_assert!(
                naive16.to_layout(Layout::RowMajor).max_abs_diff(&tiled16) < 1e-3,
                "{variant} tiled vs naive f16/f32"
            );
        }
    }
}

/// One f64 microkernel comparison: build ragged-friendly panels, run the
/// `isa`-selected kernel and the portable one, bound the difference by
/// the per-step FMA rounding budget.
fn simd_vs_portable_f64(isa: Isa, tile: TileShape, kb: usize, seed: u64) {
    let (ap, bp) = match tile {
        TileShape { mr: 4, nr: 4 } => panels_f64::<4, 4>(kb, seed),
        TileShape { mr: 8, nr: 4 } => panels_f64::<8, 4>(kb, seed),
        TileShape { mr: 4, nr: 8 } => panels_f64::<4, 8>(kb, seed),
        TileShape { mr: 8, nr: 8 } => panels_f64::<8, 8>(kb, seed),
        _ => unreachable!(),
    };
    let tol = (kb as f64).max(1.0) * f64::EPSILON * 8.0;
    macro_rules! check {
        ($mr:literal, $nr:literal) => {{
            let native = simd::select::<f64, $mr, $nr>(isa)(kb, &ap, &bp);
            let portable = simd::portable::<f64, $mr, $nr>(kb, &ap, &bp);
            for (nr_row, pr_row) in native.iter().zip(&portable) {
                for (nv, pv) in nr_row.iter().zip(pr_row) {
                    prop_assert!(
                        (nv - pv).abs() <= tol * pv.abs().max(1.0),
                        "{isa} f64 {tile} kb={kb}: {nv} vs {pv}"
                    );
                }
            }
        }};
    }
    match tile {
        TileShape { mr: 4, nr: 4 } => check!(4, 4),
        TileShape { mr: 8, nr: 4 } => check!(8, 4),
        TileShape { mr: 4, nr: 8 } => check!(4, 8),
        TileShape { mr: 8, nr: 8 } => check!(8, 8),
        _ => unreachable!(),
    }
}

/// As [`simd_vs_portable_f64`] for f32 panels.
fn simd_vs_portable_f32(isa: Isa, tile: TileShape, kb: usize, seed: u64) {
    let (ap64, bp64) = match tile {
        TileShape { mr: 4, nr: 4 } => panels_f64::<4, 4>(kb, seed),
        TileShape { mr: 8, nr: 4 } => panels_f64::<8, 4>(kb, seed),
        TileShape { mr: 4, nr: 8 } => panels_f64::<4, 8>(kb, seed),
        TileShape { mr: 8, nr: 8 } => panels_f64::<8, 8>(kb, seed),
        _ => unreachable!(),
    };
    let ap: Vec<f32> = ap64.iter().map(|&x| x as f32).collect();
    let bp: Vec<f32> = bp64.iter().map(|&x| x as f32).collect();
    let tol = (kb as f32).max(1.0) * f32::EPSILON * 8.0;
    macro_rules! check {
        ($mr:literal, $nr:literal) => {{
            let native = simd::select::<f32, $mr, $nr>(isa)(kb, &ap, &bp);
            let portable = simd::portable::<f32, $mr, $nr>(kb, &ap, &bp);
            for (nr_row, pr_row) in native.iter().zip(&portable) {
                for (nv, pv) in nr_row.iter().zip(pr_row) {
                    prop_assert!(
                        (nv - pv).abs() <= tol * pv.abs().max(1.0),
                        "{isa} f32 {tile} kb={kb}: {nv} vs {pv}"
                    );
                }
            }
        }};
    }
    match tile {
        TileShape { mr: 4, nr: 4 } => check!(4, 4),
        TileShape { mr: 8, nr: 4 } => check!(8, 4),
        TileShape { mr: 4, nr: 8 } => check!(4, 8),
        TileShape { mr: 8, nr: 8 } => check!(8, 8),
        _ => unreachable!(),
    }
}

/// Deterministic pseudo-random packed panels for an `MR×NR` tile of
/// depth `kb` (values in roughly `[-1, 1]` so products stay well scaled).
fn panels_f64<const MR: usize, const NR: usize>(kb: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let gen = |i: usize, salt: u64| ((i as u64 + 1).wrapping_mul(seed + salt) as f64 * 0.37).sin();
    let ap = (0..kb * MR).map(|i| gen(i, 17)).collect();
    let bp = (0..kb * NR).map(|i| gen(i, 71)).collect();
    (ap, bp)
}
