//! Per-thread kernel context: CUDA-style indices plus instrumentation.

use crate::device::DeviceClass;
use crate::dim::Dim3;
use std::cell::{Cell, RefCell};

/// One recorded global-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Simulated device address.
    pub addr: u64,
    /// Access width in bytes.
    pub bytes: u8,
    /// `true` for stores.
    pub store: bool,
    /// `true` for atomic read-modify-write operations (exempt from race
    /// detection, counted separately).
    pub atomic: bool,
}

/// Per-thread non-memory observations collected during execution.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Observations {
    pub flops: u64,
    pub atomics: u64,
}

/// The view a kernel thread has of itself — `threadIdx`, `blockIdx`,
/// `blockDim`, `gridDim` — plus the hooks the simulator uses to observe
/// the thread (memory access log, flop tally).
pub struct ThreadCtx {
    /// `blockIdx`.
    pub block_idx: Dim3,
    /// `threadIdx`.
    pub thread_idx: Dim3,
    /// `gridDim`.
    pub grid_dim: Dim3,
    /// `blockDim`.
    pub block_dim: Dim3,
    /// The device class executing this thread.
    pub device: DeviceClass,
    flops: Cell<u64>,
    atomics: Cell<u64>,
    log: RefCell<Vec<Access>>,
}

impl ThreadCtx {
    pub(crate) fn new(
        device: DeviceClass,
        grid_dim: Dim3,
        block_dim: Dim3,
        block_idx: Dim3,
        thread_idx: Dim3,
    ) -> Self {
        ThreadCtx {
            block_idx,
            thread_idx,
            grid_dim,
            block_dim,
            device,
            flops: Cell::new(0),
            atomics: Cell::new(0),
            log: RefCell::new(Vec::new()),
        }
    }

    /// `blockIdx.x * blockDim.x + threadIdx.x`.
    #[inline]
    pub fn global_x(&self) -> usize {
        (self.block_idx.x * self.block_dim.x + self.thread_idx.x) as usize
    }

    /// `blockIdx.y * blockDim.y + threadIdx.y`.
    #[inline]
    pub fn global_y(&self) -> usize {
        (self.block_idx.y * self.block_dim.y + self.thread_idx.y) as usize
    }

    /// `blockIdx.z * blockDim.z + threadIdx.z`.
    #[inline]
    pub fn global_z(&self) -> usize {
        (self.block_idx.z * self.block_dim.z + self.thread_idx.z) as usize
    }

    /// Numba's `cuda.grid(2)`: the `(x, y)` global coordinates.
    #[inline]
    pub fn grid2(&self) -> (usize, usize) {
        (self.global_x(), self.global_y())
    }

    /// Linear thread index within the block (`x` fastest) — the index
    /// warps are formed from.
    #[inline]
    pub fn linear_in_block(&self) -> u64 {
        self.block_dim.linear(self.thread_idx)
    }

    /// Lane within the warp/wavefront.
    #[inline]
    pub fn lane(&self) -> u32 {
        (self.linear_in_block() % self.device.warp_size() as u64) as u32
    }

    /// Warp/wavefront index within the block.
    #[inline]
    pub fn warp_in_block(&self) -> u64 {
        self.linear_in_block() / self.device.warp_size() as u64
    }

    /// Globally unique linear thread id.
    #[inline]
    pub fn global_linear(&self) -> u64 {
        self.grid_dim.linear(self.block_idx) * self.block_dim.count() + self.linear_in_block()
    }

    /// Credits `n` floating-point operations to this thread. Kernels call
    /// this the way real kernels are profiled for flop counts; the GEMM
    /// kernels tally two flops per multiply-add.
    #[inline]
    pub fn tally_flops(&self, n: u64) {
        self.flops.set(self.flops.get() + n);
    }

    #[inline]
    pub(crate) fn record_load(&self, addr: u64, bytes: u8) {
        self.log.borrow_mut().push(Access {
            addr,
            bytes,
            store: false,
            atomic: false,
        });
    }

    #[inline]
    pub(crate) fn record_store(&self, addr: u64, bytes: u8) {
        self.log.borrow_mut().push(Access {
            addr,
            bytes,
            store: true,
            atomic: false,
        });
    }

    #[inline]
    pub(crate) fn record_atomic(&self, addr: u64, bytes: u8) {
        self.atomics.set(self.atomics.get() + 1);
        self.log.borrow_mut().push(Access {
            addr,
            bytes,
            store: true,
            atomic: true,
        });
    }

    pub(crate) fn take_observations(self) -> (Observations, Vec<Access>) {
        (
            Observations {
                flops: self.flops.get(),
                atomics: self.atomics.get(),
            },
            self.log.into_inner(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(block_idx: Dim3, thread_idx: Dim3) -> ThreadCtx {
        ThreadCtx::new(
            DeviceClass::NvidiaLike,
            Dim3::d2(4, 4),
            Dim3::d2(8, 8),
            block_idx,
            thread_idx,
        )
    }

    #[test]
    fn global_coordinates() {
        let c = ctx(Dim3::at2(1, 2), Dim3::at2(3, 4));
        assert_eq!(c.global_x(), 8 + 3);
        assert_eq!(c.global_y(), 16 + 4);
        assert_eq!(c.grid2(), (11, 20));
        assert_eq!(c.global_z(), 0);
    }

    #[test]
    fn warp_formation_is_x_fastest() {
        // 8x8 block, warp size 32: rows 0..4 form warp 0.
        let c = ctx(Dim3::at2(0, 0), Dim3::at2(7, 3));
        assert_eq!(c.linear_in_block(), 31);
        assert_eq!(c.warp_in_block(), 0);
        assert_eq!(c.lane(), 31);
        let c = ctx(Dim3::at2(0, 0), Dim3::at2(0, 4));
        assert_eq!(c.warp_in_block(), 1);
        assert_eq!(c.lane(), 0);
    }

    #[test]
    fn global_linear_is_unique() {
        let mut seen = std::collections::HashSet::new();
        let grid = Dim3::d2(2, 2);
        let block = Dim3::d2(4, 4);
        for b in grid.iter() {
            for t in block.iter() {
                let c = ThreadCtx::new(DeviceClass::NvidiaLike, grid, block, b, t);
                assert!(seen.insert(c.global_linear()));
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn flop_tally_accumulates() {
        let c = ctx(Dim3::at2(0, 0), Dim3::at2(0, 0));
        c.tally_flops(10);
        c.tally_flops(32);
        let (obs, log) = c.take_observations();
        assert_eq!(obs.flops, 42);
        assert_eq!(obs.atomics, 0);
        assert!(log.is_empty());
    }

    #[test]
    fn access_log_preserves_order_and_kind() {
        let c = ctx(Dim3::at2(0, 0), Dim3::at2(0, 0));
        c.record_load(0x100, 8);
        c.record_store(0x200, 4);
        let (_, log) = c.take_observations();
        assert_eq!(log.len(), 2);
        assert!(!log[0].store);
        assert_eq!(log[0].addr, 0x100);
        assert!(log[1].store);
        assert_eq!(log[1].bytes, 4);
    }

    #[test]
    fn amd_wavefront_width() {
        let c = ThreadCtx::new(
            DeviceClass::AmdLike,
            Dim3::d1(1),
            Dim3::d1(128),
            Dim3::at1(0),
            Dim3::at1(100),
        );
        assert_eq!(c.warp_in_block(), 1);
        assert_eq!(c.lane(), 36);
    }
}
