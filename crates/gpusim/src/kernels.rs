//! Small built-in kernels: sanity workloads for the simulator itself and
//! teaching examples for the kernel API. The paper's GEMM kernels live in
//! `perfport-gemm::gpu`, written against this API.

use crate::buffer::DeviceBuffer;
use crate::launch::{Gpu, LaunchConfig, LaunchError};
use crate::stats::LaunchStats;

/// `c[i] = a[i] + b[i]` — the canonical first kernel.
pub fn vector_add(
    gpu: &Gpu,
    a: &DeviceBuffer<f32>,
    b: &DeviceBuffer<f32>,
    c: &DeviceBuffer<f32>,
    block: u32,
) -> Result<LaunchStats, LaunchError> {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    let n = a.len();
    let cfg = LaunchConfig::cover1d(n as u32, block);
    gpu.launch(cfg, |t| {
        let i = t.global_x();
        if i < n {
            let v = a.read(t, i) + b.read(t, i);
            c.write(t, i, v);
            t.tally_flops(1);
        }
    })
}

/// `y[i] = alpha * x[i] + y[i]` — BLAS saxpy.
pub fn saxpy(
    gpu: &Gpu,
    alpha: f32,
    x: &DeviceBuffer<f32>,
    y: &DeviceBuffer<f32>,
    block: u32,
) -> Result<LaunchStats, LaunchError> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let cfg = LaunchConfig::cover1d(n as u32, block);
    gpu.launch(cfg, |t| {
        let i = t.global_x();
        if i < n {
            let v = alpha.mul_add(x.read(t, i), y.read(t, i));
            y.write(t, i, v);
            t.tally_flops(2);
        }
    })
}

/// Naive out-of-place matrix transpose, `dst[j * rows + i] = src[i * cols
/// + j]` — a classic uncoalesced-store workload.
pub fn transpose_naive(
    gpu: &Gpu,
    src: &DeviceBuffer<f32>,
    dst: &DeviceBuffer<f32>,
    rows: usize,
    cols: usize,
    block: u32,
) -> Result<LaunchStats, LaunchError> {
    assert_eq!(src.len(), rows * cols);
    assert_eq!(dst.len(), rows * cols);
    let cfg = LaunchConfig::cover2d(cols as u32, rows as u32, crate::dim::Dim3::d2(block, block));
    gpu.launch(cfg, |t| {
        let (j, i) = t.grid2();
        if i < rows && j < cols {
            dst.write(t, j * rows + i, src.read(t, i * cols + j));
        }
    })
}

/// Grid-wide sum via `atomicAdd` into a single accumulator — the classic
/// (naive) atomic reduction.
pub fn atomic_reduce_sum(
    gpu: &Gpu,
    input: &DeviceBuffer<f64>,
    out: &DeviceBuffer<f64>,
    block: u32,
) -> Result<LaunchStats, LaunchError> {
    assert_eq!(out.len(), 1);
    let n = input.len();
    let cfg = LaunchConfig::cover1d(n as u32, block);
    gpu.launch(cfg, |t| {
        let i = t.global_x();
        if i < n {
            out.atomic_add(t, 0, input.read(t, i));
            t.tally_flops(1);
        }
    })
}

/// Histogram with atomic increments — a data-dependent atomic workload.
pub fn histogram(
    gpu: &Gpu,
    input: &DeviceBuffer<u32>,
    bins: &DeviceBuffer<u32>,
    block: u32,
) -> Result<LaunchStats, LaunchError> {
    let n = input.len();
    let n_bins = bins.len() as u32;
    assert!(n_bins > 0);
    let cfg = LaunchConfig::cover1d(n as u32, block);
    gpu.launch(cfg, |t| {
        let i = t.global_x();
        if i < n {
            let bin = input.read(t, i) % n_bins;
            bins.atomic_add(t, bin as usize, 1);
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceClass;

    #[test]
    fn vector_add_is_correct() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let a = gpu.alloc_from_slice(&[1.0f32, 2.0, 3.0]);
        let b = gpu.alloc_from_slice(&[10.0f32, 20.0, 30.0]);
        let c = gpu.alloc_filled(3, 0.0f32);
        vector_add(&gpu, &a, &b, &c, 128).unwrap();
        assert_eq!(c.to_host(), vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn saxpy_is_correct_and_counts_fma() {
        let gpu = Gpu::new(DeviceClass::AmdLike);
        let x = gpu.alloc_from_slice(&vec![2.0f32; 100]);
        let y = gpu.alloc_from_slice(&vec![1.0f32; 100]);
        let stats = saxpy(&gpu, 3.0, &x, &y, 64).unwrap();
        assert!(y.to_host().iter().all(|&v| v == 7.0));
        assert_eq!(stats.flops, 200);
    }

    #[test]
    fn atomic_reduction_sums_correctly() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let n = 5000;
        let host: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let input = gpu.alloc_from_slice(&host);
        let out = gpu.alloc_filled(1, 0.0f64);
        let stats = atomic_reduce_sum(&gpu, &input, &out, 256).unwrap();
        let expect: f64 = host.iter().sum();
        // f64 atomic adds of non-negative values: exact here because all
        // intermediate sums are exactly representable integers < 2^53.
        assert_eq!(out.get(0), expect);
        assert_eq!(stats.atomic_ops, n as u64);
    }

    #[test]
    fn atomics_pass_the_race_detector() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let input = gpu.alloc_filled(256, 1.0f64);
        let out = gpu.alloc_filled(1, 0.0f64);
        let cfg = LaunchConfig::cover1d(256, 64);
        let opts = crate::launch::LaunchOptions {
            detect_races: true,
            ..Default::default()
        };
        let stats = gpu
            .launch_with(cfg, opts, |t| {
                out.atomic_add(t, 0, input.read(t, t.global_x()));
            })
            .unwrap();
        assert_eq!(out.get(0), 256.0);
        assert_eq!(stats.atomic_ops, 256);
    }

    #[test]
    fn histogram_counts_every_element() {
        let gpu = Gpu::new(DeviceClass::AmdLike);
        let n = 10_000u32;
        let host: Vec<u32> = (0..n).map(|i| i * 7 + 3).collect();
        let input = gpu.alloc_from_slice(&host);
        let bins = gpu.alloc_filled(16, 0u32);
        histogram(&gpu, &input, &bins, 128).unwrap();
        let counts = bins.to_host();
        assert_eq!(counts.iter().map(|&c| c as u64).sum::<u64>(), n as u64);
        // Deterministic per-bin counts regardless of execution order.
        let mut expect = vec![0u32; 16];
        for v in &host {
            expect[(*v % 16) as usize] += 1;
        }
        assert_eq!(counts, expect);
    }

    #[test]
    fn transpose_is_correct_and_badly_coalesced() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let (r, c) = (64usize, 64usize);
        let host: Vec<f32> = (0..r * c).map(|i| i as f32).collect();
        let src = gpu.alloc_from_slice(&host);
        let dst = gpu.alloc_filled(r * c, 0.0f32);
        let stats = transpose_naive(&gpu, &src, &dst, r, c, 32).unwrap();
        for i in 0..r {
            for j in 0..c {
                assert_eq!(dst.get(j * r + i), host[i * c + j]);
            }
        }
        // Loads coalesce along rows; stores scatter across lines, so store
        // transactions far exceed load transactions.
        assert!(stats.store_transactions > 4 * stats.load_transactions);
    }
}
