//! The classic occupancy calculation: how many blocks fit on one SM/CU.
//!
//! The paper repeatedly attributes performance gaps (Kokkos on A100 in
//! particular) to block-size and configuration choices the programming
//! model makes on the user's behalf; occupancy is the standard lens for
//! that discussion, and the GPU timing model consumes it.

use crate::device::DeviceClass;

/// What capped the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OccupancyLimiter {
    /// Per-SM thread capacity.
    Threads,
    /// Per-SM resident-block cap.
    Blocks,
    /// Per-SM shared-memory capacity.
    SharedMemory,
}

/// Result of an occupancy query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Resident blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub warps_per_sm: u32,
    /// Fraction of the SM's warp slots occupied, `0.0..=1.0`.
    pub fraction: f64,
    /// Which resource limited residency.
    pub limiter: OccupancyLimiter,
}

/// Computes achievable occupancy for a block of `block_threads` threads
/// using `smem_per_block` bytes of shared memory.
///
/// # Panics
///
/// Panics if `block_threads` is zero or exceeds the device block limit.
pub fn occupancy(class: DeviceClass, block_threads: u32, smem_per_block: u64) -> Occupancy {
    assert!(block_threads > 0, "block must have threads");
    assert!(
        block_threads <= class.max_threads_per_block(),
        "block exceeds device limit"
    );

    let by_threads = class.max_threads_per_sm() / block_threads;
    let by_blocks = class.max_blocks_per_sm();
    let by_smem = class
        .shared_mem_per_sm()
        .checked_div(smem_per_block)
        .map_or(u32::MAX, |b| b as u32);

    let blocks = by_threads.min(by_blocks).min(by_smem);
    let limiter = if blocks == by_threads {
        OccupancyLimiter::Threads
    } else if blocks == by_blocks {
        OccupancyLimiter::Blocks
    } else {
        OccupancyLimiter::SharedMemory
    };

    let warp = class.warp_size();
    let warps_per_block = block_threads.div_ceil(warp);
    let warps = blocks * warps_per_block;
    let max_warps = class.max_threads_per_sm() / warp;
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        fraction: f64::from(warps) / f64::from(max_warps),
        limiter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_occupancy_with_1024_thread_blocks() {
        let o = occupancy(DeviceClass::NvidiaLike, 1024, 0);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.warps_per_sm, 64);
        assert!((o.fraction - 1.0).abs() < 1e-12);
        assert_eq!(o.limiter, OccupancyLimiter::Threads);
    }

    #[test]
    fn tiny_blocks_hit_the_block_cap() {
        // 32-thread blocks: 2048/32 = 64 by threads, but only 32 resident
        // blocks allowed -> half occupancy.
        let o = occupancy(DeviceClass::NvidiaLike, 32, 0);
        assert_eq!(o.blocks_per_sm, 32);
        assert_eq!(o.limiter, OccupancyLimiter::Blocks);
        assert!((o.fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_can_limit() {
        // 40 KiB per block on an A100-like 164 KiB SM: 4 blocks of 256
        // threads instead of 8.
        let o = occupancy(DeviceClass::NvidiaLike, 256, 40 * 1024);
        assert_eq!(o.blocks_per_sm, 4);
        assert_eq!(o.limiter, OccupancyLimiter::SharedMemory);
        assert!(o.fraction < 1.0);
    }

    #[test]
    fn amd_wavefronts() {
        let o = occupancy(DeviceClass::AmdLike, 1024, 0);
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.warps_per_sm, 32); // 64-wide wavefronts
        assert!((o.fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_fraction_monotone_in_block_size_when_block_limited() {
        let small = occupancy(DeviceClass::NvidiaLike, 64, 0);
        let large = occupancy(DeviceClass::NvidiaLike, 256, 0);
        assert!(small.fraction <= large.fraction);
    }

    #[test]
    #[should_panic(expected = "block must have threads")]
    fn zero_block_panics() {
        let _ = occupancy(DeviceClass::NvidiaLike, 0, 0);
    }

    #[test]
    #[should_panic(expected = "block exceeds device limit")]
    fn oversized_block_panics() {
        let max = DeviceClass::NvidiaLike.max_threads_per_block();
        let _ = occupancy(DeviceClass::NvidiaLike, max + 1, 0);
    }

    #[test]
    fn the_exact_device_block_limit_is_accepted() {
        // The boundary itself must not trip the assert: a full-sized
        // block is the paper's own 32x32 launch configuration.
        for class in [DeviceClass::NvidiaLike, DeviceClass::AmdLike] {
            let o = occupancy(class, class.max_threads_per_block(), 0);
            assert!(o.blocks_per_sm >= 1, "{class:?}");
        }
    }

    #[test]
    fn zero_shared_memory_never_limits() {
        // smem 0 would divide by zero naively; it must read as "no
        // shared-memory constraint", not zero resident blocks.
        for class in [DeviceClass::NvidiaLike, DeviceClass::AmdLike] {
            let o = occupancy(class, 256, 0);
            assert!(o.blocks_per_sm > 0, "{class:?}");
            assert_ne!(o.limiter, OccupancyLimiter::SharedMemory, "{class:?}");
        }
    }

    #[test]
    fn limiter_tie_breaks_prefer_threads_then_blocks() {
        // 256-thread blocks with exactly an eighth of the SM's shared
        // memory each: the thread cap (2048/256 = 8) and the smem cap
        // (8) tie. The reported limiter follows the documented
        // Threads > Blocks > SharedMemory precedence.
        let class = DeviceClass::NvidiaLike;
        let eighth = class.shared_mem_per_sm() / 8;
        let o = occupancy(class, 256, eighth);
        assert_eq!(o.blocks_per_sm, 8);
        assert_eq!(o.limiter, OccupancyLimiter::Threads);
        // 32-thread blocks put the thread cap at 64 but tie the block
        // cap (32) with an smem cap of 32: Blocks wins over
        // SharedMemory.
        let thirty_second = class.shared_mem_per_sm() / 32;
        let o = occupancy(class, 32, thirty_second);
        assert_eq!(o.blocks_per_sm, 32);
        assert_eq!(o.limiter, OccupancyLimiter::Blocks);
    }
}
