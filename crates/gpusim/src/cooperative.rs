//! Phase-stepped cooperative kernels: `__syncthreads` and shared memory.
//!
//! Barrier semantics are realised by *phase stepping*: a cooperative
//! kernel is a sequence of phases, and the engine runs phase `p` for every
//! thread of a block before any thread enters phase `p + 1` — precisely
//! the guarantee `__syncthreads()` provides, realised deterministically
//! without one OS thread per GPU thread. Per-thread locals that must
//! survive a barrier live in the kernel's `State` type.
//!
//! Real GPUs make barrier divergence (some lanes skipping the barrier)
//! undefined behaviour; the engine turns it into
//! [`LaunchError::BarrierDivergence`].

use crate::buffer::DeviceCopy;
use crate::coalesce::analyze_warp;
use crate::ctx::{Access, ThreadCtx};
use crate::launch::{Gpu, LaunchConfig, LaunchError, LaunchOptions};
use crate::stats::LaunchStats;
use parking_lot::Mutex;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Block-local shared memory (`__shared__` / LDS).
///
/// A block's threads run serially within one host worker, so interior
/// mutability with `RefCell` is sound; accesses are counted for the
/// statistics.
pub struct SharedMem<T> {
    data: RefCell<Vec<T>>,
    loads: Cell<u64>,
    stores: Cell<u64>,
    /// Lane currently executing (set by the engine) and that lane's
    /// access-ordinal streams, for the bank-conflict analysis.
    lane: Cell<usize>,
    lane_streams: RefCell<Vec<Vec<u32>>>,
}

/// Number of shared-memory banks (NVIDIA and CDNA both use 32).
pub const SMEM_BANKS: usize = 32;

impl<T: DeviceCopy> SharedMem<T> {
    fn new(len: usize, init: T, warp: usize) -> Self {
        SharedMem {
            data: RefCell::new(vec![init; len]),
            loads: Cell::new(0),
            stores: Cell::new(0),
            lane: Cell::new(0),
            lane_streams: RefCell::new(vec![Vec::new(); warp]),
        }
    }

    fn set_lane(&self, lane: usize) {
        self.lane.set(lane);
    }

    #[inline]
    fn record(&self, idx: usize) {
        let mut streams = self.lane_streams.borrow_mut();
        let lane = self.lane.get();
        if lane < streams.len() {
            streams[lane].push(idx as u32);
        }
    }

    /// Analyses the recorded lane streams for bank conflicts and clears
    /// them. Returns the number of *extra* serialised passes (degree − 1
    /// summed over warp instructions): 0 means conflict-free.
    fn drain_conflicts(&self) -> u64 {
        let mut streams = self.lane_streams.borrow_mut();
        let max_len = streams.iter().map(Vec::len).max().unwrap_or(0);
        let mut conflicts = 0u64;
        let mut per_bank: [Vec<u32>; SMEM_BANKS] = std::array::from_fn(|_| Vec::new());
        for ordinal in 0..max_len {
            for bank in per_bank.iter_mut() {
                bank.clear();
            }
            for stream in streams.iter() {
                if let Some(&idx) = stream.get(ordinal) {
                    per_bank[idx as usize % SMEM_BANKS].push(idx);
                }
            }
            // A bank replays once per *distinct address* it must serve;
            // lanes reading the same address are a free broadcast. The
            // instruction's cost is the worst bank's replay count.
            let worst = per_bank
                .iter_mut()
                .map(|bank| {
                    bank.sort_unstable();
                    bank.dedup();
                    bank.len() as u64
                })
                .max()
                .unwrap_or(0);
            conflicts += worst.saturating_sub(1);
        }
        for stream in streams.iter_mut() {
            stream.clear();
        }
        conflicts
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.borrow().len()
    }

    /// `true` when no shared memory was requested.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads element `idx`.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn read(&self, idx: usize) -> T {
        self.loads.set(self.loads.get() + 1);
        self.record(idx);
        self.data.borrow()[idx]
    }

    /// Writes element `idx`.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn write(&self, idx: usize, value: T) {
        self.stores.set(self.stores.get() + 1);
        self.record(idx);
        self.data.borrow_mut()[idx] = value;
    }
}

/// A kernel whose execution is split into barrier-separated phases.
pub trait CooperativeKernel<T: DeviceCopy>: Sync {
    /// Per-thread state that survives barriers (registers/locals).
    type State: Default + Send;

    /// Runs one phase for one thread. Returning `true` requests another
    /// phase after the implicit barrier; all threads of a block must
    /// agree.
    fn phase(
        &self,
        phase: usize,
        ctx: &ThreadCtx,
        state: &mut Self::State,
        shared: &SharedMem<T>,
    ) -> bool;
}

impl Gpu {
    /// Launches a cooperative kernel with `smem_len` elements of
    /// shared memory per block, initialised to `smem_init` (real shared
    /// memory is uninitialised; deterministic initialisation is a
    /// simulator nicety).
    ///
    /// # Errors
    ///
    /// [`LaunchError::InvalidConfig`] for illegal shapes or shared-memory
    /// requests over the device limit, [`LaunchError::BarrierDivergence`]
    /// when a block's threads disagree about continuing.
    pub fn launch_cooperative<T, K>(
        &self,
        cfg: LaunchConfig,
        opts: LaunchOptions,
        smem_len: usize,
        smem_init: T,
        kernel: &K,
    ) -> Result<LaunchStats, LaunchError>
    where
        T: DeviceCopy,
        K: CooperativeKernel<T>,
    {
        cfg.validate(self.class())?;
        let smem_bytes = (smem_len * std::mem::size_of::<T>()) as u64;
        if smem_bytes > self.class().max_shared_mem_per_block() {
            return Err(LaunchError::InvalidConfig(format!(
                "{smem_bytes} bytes of shared memory exceed the {} byte limit",
                self.class().max_shared_mem_per_block()
            )));
        }

        let start = Instant::now();
        let class = self.class();
        let warp = class.warp_size() as u64;
        let line_bytes = class.transaction_bytes();
        let threads_per_block = cfg.block.count();
        let warps_per_block = threads_per_block.div_ceil(warp);
        let n_blocks = cfg.grid.count();

        let host_threads = {
            let avail = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            let requested = if opts.host_threads == 0 {
                avail
            } else {
                opts.host_threads
            };
            requested.min(n_blocks as usize).max(1)
        };

        let next_block = AtomicU64::new(0);
        let totals = Mutex::new(LaunchStats {
            line_bytes,
            ..Default::default()
        });
        let failure: Mutex<Option<LaunchError>> = Mutex::new(None);

        std::thread::scope(|s| {
            for _ in 0..host_threads {
                s.spawn(|| {
                    let mut local = LaunchStats {
                        line_bytes,
                        ..Default::default()
                    };
                    'blocks: loop {
                        if failure.lock().is_some() {
                            break;
                        }
                        let b = next_block.fetch_add(1, Ordering::Relaxed);
                        if b >= n_blocks {
                            break;
                        }
                        let block_idx = cfg.grid.delinearize(b);
                        local.blocks += 1;
                        let shared = SharedMem::new(smem_len, smem_init, warp as usize);
                        let mut states: Vec<K::State> = (0..threads_per_block)
                            .map(|_| K::State::default())
                            .collect();

                        let mut phase = 0usize;
                        loop {
                            let mut want_more = None;
                            for w in 0..warps_per_block {
                                local.warps += 1;
                                let lane_count = warp.min(threads_per_block - w * warp);
                                let mut lanes: Vec<Vec<Access>> =
                                    Vec::with_capacity(lane_count as usize);
                                for lane in 0..lane_count {
                                    let lin = w * warp + lane;
                                    let thread_idx = cfg.block.delinearize(lin);
                                    let ctx = ThreadCtx::new(
                                        class, cfg.grid, cfg.block, block_idx, thread_idx,
                                    );
                                    shared.set_lane(lane as usize);
                                    let more = kernel.phase(
                                        phase,
                                        &ctx,
                                        &mut states[lin as usize],
                                        &shared,
                                    );
                                    match want_more {
                                        None => want_more = Some(more),
                                        Some(prev) if prev != more => {
                                            *failure.lock() =
                                                Some(LaunchError::BarrierDivergence {
                                                    block: block_idx,
                                                    phase,
                                                });
                                            continue 'blocks;
                                        }
                                        _ => {}
                                    }
                                    let (obs, log) = ctx.take_observations();
                                    local.flops += obs.flops;
                                    local.atomic_ops += obs.atomics;
                                    if phase == 0 {
                                        local.threads += 1;
                                    }
                                    lanes.push(log);
                                }
                                let summary = analyze_warp(&lanes, line_bytes);
                                local.absorb_warp(&summary);
                                local.bank_conflicts += shared.drain_conflicts();
                            }
                            phase += 1;
                            local.phases = local.phases.max(phase as u64);
                            if want_more != Some(true) {
                                break;
                            }
                        }
                        local.shared_loads += shared.loads.get();
                        local.shared_stores += shared.stores.get();
                    }
                    totals.lock().merge(&local);
                });
            }
        });

        if let Some(err) = failure.into_inner() {
            return Err(err);
        }
        let mut stats = totals.into_inner();
        stats.sim_time = start.elapsed();
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DeviceBuffer;
    use crate::device::DeviceClass;

    /// A block-wide sum via shared memory: phase 0 loads one element per
    /// thread into shared memory; phase 1 has thread 0 reduce and store.
    struct BlockSum<'a> {
        input: &'a DeviceBuffer<f32>,
        output: &'a DeviceBuffer<f32>,
        n: usize,
    }

    impl CooperativeKernel<f32> for BlockSum<'_> {
        type State = ();

        fn phase(
            &self,
            phase: usize,
            ctx: &ThreadCtx,
            _state: &mut (),
            shared: &SharedMem<f32>,
        ) -> bool {
            let tid = ctx.linear_in_block() as usize;
            match phase {
                0 => {
                    let i = ctx.global_x();
                    let v = if i < self.n {
                        self.input.read(ctx, i)
                    } else {
                        0.0
                    };
                    shared.write(tid, v);
                    true
                }
                _ => {
                    if tid == 0 {
                        let mut acc = 0.0;
                        for s in 0..shared.len() {
                            acc += shared.read(s);
                            ctx.tally_flops(1);
                        }
                        self.output.write(ctx, ctx.block_idx.x as usize, acc);
                    }
                    false
                }
            }
        }
    }

    #[test]
    fn block_sum_reduces_correctly() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let n = 1000usize;
        let host: Vec<f32> = (0..n).map(|i| (i % 7) as f32).collect();
        let expected: f32 = host.iter().sum();
        let input = gpu.alloc_from_slice(&host);
        let cfg = LaunchConfig::cover1d(n as u32, 128);
        let output = gpu.alloc_filled(cfg.grid.count() as usize, 0.0f32);
        let kernel = BlockSum {
            input: &input,
            output: &output,
            n,
        };
        let stats = gpu
            .launch_cooperative(cfg, LaunchOptions::default(), 128, 0.0f32, &kernel)
            .unwrap();
        let total: f32 = output.to_host().iter().sum();
        assert_eq!(total, expected);
        assert_eq!(stats.phases, 2);
        assert_eq!(stats.shared_stores, cfg.total_threads());
        assert_eq!(stats.shared_loads, 128 * cfg.grid.count());
        assert_eq!(stats.threads, cfg.total_threads());
    }

    /// A kernel that keeps per-thread state across barriers.
    struct Accumulate {
        rounds: usize,
    }

    impl CooperativeKernel<f32> for Accumulate {
        type State = f32;

        fn phase(
            &self,
            phase: usize,
            _ctx: &ThreadCtx,
            state: &mut f32,
            _shared: &SharedMem<f32>,
        ) -> bool {
            *state += 1.0;
            assert_eq!(*state, (phase + 1) as f32, "state must persist");
            phase + 1 < self.rounds
        }
    }

    #[test]
    fn state_persists_across_phases() {
        let gpu = Gpu::new(DeviceClass::AmdLike);
        let cfg = LaunchConfig::cover1d(256, 64);
        let stats = gpu
            .launch_cooperative(
                cfg,
                LaunchOptions::default(),
                0,
                0.0f32,
                &Accumulate { rounds: 5 },
            )
            .unwrap();
        assert_eq!(stats.phases, 5);
    }

    /// Threads disagree about continuing: barrier divergence.
    struct Diverge;

    impl CooperativeKernel<f32> for Diverge {
        type State = ();

        fn phase(&self, _p: usize, ctx: &ThreadCtx, _s: &mut (), _sh: &SharedMem<f32>) -> bool {
            ctx.linear_in_block() == 0
        }
    }

    #[test]
    fn barrier_divergence_is_reported() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let cfg = LaunchConfig::cover1d(64, 64);
        let err = gpu
            .launch_cooperative(cfg, LaunchOptions::default(), 0, 0.0f32, &Diverge)
            .unwrap_err();
        assert!(matches!(
            err,
            LaunchError::BarrierDivergence { phase: 0, .. }
        ));
    }

    #[test]
    fn oversized_shared_memory_rejected() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let cfg = LaunchConfig::cover1d(64, 64);
        let err = gpu
            .launch_cooperative(
                cfg,
                LaunchOptions::default(),
                100_000,
                0.0f32,
                &Accumulate { rounds: 1 },
            )
            .unwrap_err();
        assert!(matches!(err, LaunchError::InvalidConfig(_)));
    }
}

#[cfg(test)]
mod bank_conflict_tests {
    use super::*;
    use crate::device::DeviceClass;
    use crate::launch::{Gpu, LaunchConfig, LaunchOptions};

    /// Each lane touches shared slot `lane * stride`.
    struct StridedSmem {
        stride: usize,
    }

    impl CooperativeKernel<f32> for StridedSmem {
        type State = ();

        fn phase(&self, _p: usize, ctx: &ThreadCtx, _s: &mut (), shared: &SharedMem<f32>) -> bool {
            let lane = (ctx.linear_in_block() as usize % 32) * self.stride;
            shared.write(lane % shared.len(), 1.0);
            false
        }
    }

    fn conflicts_for(stride: usize) -> u64 {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let cfg = LaunchConfig::cover1d(32, 32);
        let stats = gpu
            .launch_cooperative(
                cfg,
                LaunchOptions::default(),
                1024,
                0.0f32,
                &StridedSmem { stride },
            )
            .unwrap();
        stats.bank_conflicts
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        assert_eq!(conflicts_for(1), 0);
    }

    #[test]
    fn stride_two_halves_the_banks() {
        // 32 lanes over 16 banks: every bank double-booked -> one extra
        // pass charged for the worst bank.
        assert!(conflicts_for(2) >= 1);
    }

    #[test]
    fn stride_32_serialises_the_warp() {
        // All lanes hit bank 0 with distinct addresses: worst case,
        // 31 extra passes.
        assert_eq!(conflicts_for(32), 31);
    }

    #[test]
    fn odd_strides_stay_conflict_free() {
        // Classic padding trick: odd strides permute the banks.
        assert_eq!(conflicts_for(33), 0);
        assert_eq!(conflicts_for(17), 0);
    }

    #[test]
    fn tiled_gemm_pattern_reports_no_conflicts_in_stats_merge() {
        // The tiled GEMM's row-major shared tiles use unit-stride lane
        // access; merged stats must carry the (zero) counter through.
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let cfg = LaunchConfig::cover1d(64, 64);
        let stats = gpu
            .launch_cooperative(
                cfg,
                LaunchOptions::default(),
                64,
                0.0f32,
                &StridedSmem { stride: 1 },
            )
            .unwrap();
        assert_eq!(stats.bank_conflicts, 0);
        assert!(stats.shared_stores > 0);
    }
}
