//! Device-global memory buffers.
//!
//! A [`DeviceBuffer`] owns typed storage plus a *simulated base address*
//! used by the coalescing analysis (so that accesses to different buffers
//! never alias a cache line). All element access — from kernel threads and
//! from the host — goes through per-element atomic loads/stores, which
//! keeps even a misbehaving (racy) kernel free of undefined behaviour in
//! the simulator; the optional race detector then reports such kernels
//! instead of the process corrupting itself.

use crate::ctx::ThreadCtx;
use std::cell::UnsafeCell;
use std::mem::{align_of, size_of};
use std::sync::atomic::{AtomicU16, AtomicU32, AtomicU64, AtomicU8, Ordering};

/// Element types storable in device memory: plain-old-data of a power-of-
/// two size up to 8 bytes with natural alignment (covers `f64`, `f32`,
/// `F16`, and the integer types).
pub trait DeviceCopy: Copy + Send + Sync + 'static {}
impl<T: Copy + Send + Sync + 'static> DeviceCopy for T {}

/// A typed allocation in simulated device-global memory.
pub struct DeviceBuffer<T> {
    data: Box<[UnsafeCell<T>]>,
    base: u64,
    id: u32,
}

// SAFETY: all access to the cells goes through atomic loads/stores of the
// element's bit pattern (see `load_raw`/`store_raw`), so concurrent use
// from multiple simulated threads cannot produce UB.
unsafe impl<T: DeviceCopy> Sync for DeviceBuffer<T> {}
unsafe impl<T: DeviceCopy> Send for DeviceBuffer<T> {}

fn assert_supported<T>() {
    let s = size_of::<T>();
    assert!(
        matches!(s, 1 | 2 | 4 | 8) && align_of::<T>() >= s.min(align_of::<u64>()),
        "device elements must be 1/2/4/8 bytes with natural alignment"
    );
}

/// Atomically loads the bit pattern of the element behind `cell`.
///
/// # Safety
///
/// `cell` must be a live element of a `DeviceBuffer` (guaranteed by the
/// callers, which index-check first).
unsafe fn load_raw<T: Copy>(cell: &UnsafeCell<T>) -> T {
    let p = cell.get();
    // SAFETY: size/alignment validated at buffer construction; the atomic
    // types have the same layout as the corresponding integers.
    unsafe {
        match size_of::<T>() {
            1 => {
                let bits = (*(p as *const AtomicU8)).load(Ordering::Relaxed);
                std::mem::transmute_copy(&bits)
            }
            2 => {
                let bits = (*(p as *const AtomicU16)).load(Ordering::Relaxed);
                std::mem::transmute_copy(&bits)
            }
            4 => {
                let bits = (*(p as *const AtomicU32)).load(Ordering::Relaxed);
                std::mem::transmute_copy(&bits)
            }
            8 => {
                let bits = (*(p as *const AtomicU64)).load(Ordering::Relaxed);
                std::mem::transmute_copy(&bits)
            }
            _ => unreachable!("validated at construction"),
        }
    }
}

/// Atomically stores the bit pattern of `value` into `cell`.
///
/// # Safety
///
/// Same contract as [`load_raw`].
unsafe fn store_raw<T: Copy>(cell: &UnsafeCell<T>, value: T) {
    let p = cell.get();
    // SAFETY: as in `load_raw`.
    unsafe {
        match size_of::<T>() {
            1 => {
                let bits: u8 = std::mem::transmute_copy(&value);
                (*(p as *const AtomicU8)).store(bits, Ordering::Relaxed);
            }
            2 => {
                let bits: u16 = std::mem::transmute_copy(&value);
                (*(p as *const AtomicU16)).store(bits, Ordering::Relaxed);
            }
            4 => {
                let bits: u32 = std::mem::transmute_copy(&value);
                (*(p as *const AtomicU32)).store(bits, Ordering::Relaxed);
            }
            8 => {
                let bits: u64 = std::mem::transmute_copy(&value);
                (*(p as *const AtomicU64)).store(bits, Ordering::Relaxed);
            }
            _ => unreachable!("validated at construction"),
        }
    }
}

impl<T: DeviceCopy> DeviceBuffer<T> {
    pub(crate) fn new(id: u32, base: u64, host: Vec<T>) -> Self {
        assert_supported::<T>();
        let data = host
            .into_iter()
            .map(UnsafeCell::new)
            .collect::<Vec<_>>()
            .into_boxed_slice();
        DeviceBuffer { data, base, id }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The simulated device address of element 0.
    pub fn base_addr(&self) -> u64 {
        self.base
    }

    /// Allocation id within its [`crate::Gpu`].
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Simulated address of element `idx`.
    #[inline]
    pub fn addr_of(&self, idx: usize) -> u64 {
        self.base + (idx * size_of::<T>()) as u64
    }

    /// Device-side load: returns element `idx` and records the access on
    /// the calling thread (for coalescing analysis and traffic counters).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access — the simulator's equivalent of
    /// `CUDA_ERROR_ILLEGAL_ADDRESS`.
    #[inline]
    pub fn read(&self, ctx: &ThreadCtx, idx: usize) -> T {
        assert!(
            idx < self.data.len(),
            "illegal device address: load at index {idx} of buffer {} (len {})",
            self.id,
            self.data.len()
        );
        ctx.record_load(self.addr_of(idx), size_of::<T>() as u8);
        // SAFETY: bounds checked above.
        unsafe { load_raw(&self.data[idx]) }
    }

    /// Device-side store of `value` into element `idx`, recording the
    /// access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn write(&self, ctx: &ThreadCtx, idx: usize, value: T) {
        assert!(
            idx < self.data.len(),
            "illegal device address: store at index {idx} of buffer {} (len {})",
            self.id,
            self.data.len()
        );
        ctx.record_store(self.addr_of(idx), size_of::<T>() as u8);
        // SAFETY: bounds checked above.
        unsafe { store_raw(&self.data[idx], value) }
    }

    /// Host-side read (no traffic recorded) — a `cudaMemcpy` back.
    pub fn get(&self, idx: usize) -> T {
        assert!(idx < self.data.len(), "host read out of bounds");
        // SAFETY: bounds checked above.
        unsafe { load_raw(&self.data[idx]) }
    }

    /// Host-side write (no traffic recorded).
    pub fn set(&self, idx: usize, value: T) {
        assert!(idx < self.data.len(), "host write out of bounds");
        // SAFETY: bounds checked above.
        unsafe { store_raw(&self.data[idx], value) }
    }

    /// Copies the whole buffer back to the host.
    pub fn to_host(&self) -> Vec<T> {
        // SAFETY: indices in range by construction.
        self.data.iter().map(|c| unsafe { load_raw(c) }).collect()
    }
}

/// Element types supporting device atomics (`atomicAdd`).
pub trait DeviceAtomicAdd: DeviceCopy {
    /// Atomically adds `value` to the element behind `cell`, returning
    /// the previous value.
    ///
    /// # Safety
    ///
    /// `cell` must be a live element of a `DeviceBuffer`.
    unsafe fn raw_atomic_add(cell: &UnsafeCell<Self>, value: Self) -> Self;
}

impl DeviceAtomicAdd for u32 {
    unsafe fn raw_atomic_add(cell: &UnsafeCell<u32>, value: u32) -> u32 {
        // SAFETY: alignment/size validated at construction.
        unsafe { (*(cell.get() as *const AtomicU32)).fetch_add(value, Ordering::Relaxed) }
    }
}

impl DeviceAtomicAdd for u64 {
    unsafe fn raw_atomic_add(cell: &UnsafeCell<u64>, value: u64) -> u64 {
        // SAFETY: alignment/size validated at construction.
        unsafe { (*(cell.get() as *const AtomicU64)).fetch_add(value, Ordering::Relaxed) }
    }
}

impl DeviceAtomicAdd for f32 {
    unsafe fn raw_atomic_add(cell: &UnsafeCell<f32>, value: f32) -> f32 {
        // Compare-exchange loop on the bit pattern — how pre-sm_60
        // atomicAdd(float) is implemented, and exactly equivalent to the
        // hardware instruction's result.
        // SAFETY: alignment/size validated at construction.
        let atom = unsafe { &*(cell.get() as *const AtomicU32) };
        let mut cur = atom.load(Ordering::Relaxed);
        loop {
            let new = f32::from_bits(cur) + value;
            match atom.compare_exchange_weak(
                cur,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(old) => return f32::from_bits(old),
                Err(seen) => cur = seen,
            }
        }
    }
}

impl DeviceAtomicAdd for f64 {
    unsafe fn raw_atomic_add(cell: &UnsafeCell<f64>, value: f64) -> f64 {
        // SAFETY: alignment/size validated at construction.
        let atom = unsafe { &*(cell.get() as *const AtomicU64) };
        let mut cur = atom.load(Ordering::Relaxed);
        loop {
            let new = f64::from_bits(cur) + value;
            match atom.compare_exchange_weak(
                cur,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(old) => return f64::from_bits(old),
                Err(seen) => cur = seen,
            }
        }
    }
}

impl<T: DeviceAtomicAdd> DeviceBuffer<T> {
    /// Device-side `atomicAdd`: atomically adds `value` to element `idx`
    /// and returns the previous value. Recorded as an atomic RMW (exempt
    /// from race detection, counted in `LaunchStats::atomic_ops`).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    pub fn atomic_add(&self, ctx: &ThreadCtx, idx: usize, value: T) -> T {
        assert!(
            idx < self.data.len(),
            "illegal device address: atomic at index {idx} of buffer {} (len {})",
            self.id,
            self.data.len()
        );
        ctx.record_atomic(self.addr_of(idx), size_of::<T>() as u8);
        // SAFETY: bounds checked above.
        unsafe { T::raw_atomic_add(&self.data[idx], value) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfport_half::F16;

    #[test]
    fn round_trip_f64() {
        let b = DeviceBuffer::new(0, 0x1000, vec![1.0f64, 2.0, 3.0]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_host(), vec![1.0, 2.0, 3.0]);
        b.set(1, 20.0);
        assert_eq!(b.get(1), 20.0);
    }

    #[test]
    fn round_trip_f16() {
        let b = DeviceBuffer::new(1, 0x2000, vec![F16::ONE, F16::from_f32(0.5)]);
        assert_eq!(b.get(1).to_f32(), 0.5);
        b.set(0, F16::from_f32(-2.0));
        assert_eq!(b.get(0).to_f32(), -2.0);
    }

    #[test]
    fn addresses_follow_element_size() {
        let b = DeviceBuffer::new(0, 0x100, vec![0.0f32; 8]);
        assert_eq!(b.addr_of(0), 0x100);
        assert_eq!(b.addr_of(3), 0x100 + 12);
        let h = DeviceBuffer::new(0, 0x100, vec![F16::ZERO; 8]);
        assert_eq!(h.addr_of(3), 0x100 + 6);
    }

    #[test]
    fn concurrent_disjoint_device_writes_are_visible() {
        let b = DeviceBuffer::new(0, 0, vec![0u64; 1024]);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let b = &b;
                s.spawn(move || {
                    for i in (t as usize..1024).step_by(4) {
                        b.set(i, t + 1);
                    }
                });
            }
        });
        let host = b.to_host();
        for (i, v) in host.iter().enumerate() {
            assert_eq!(*v, (i % 4) as u64 + 1);
        }
    }

    #[test]
    #[should_panic(expected = "host read out of bounds")]
    fn host_oob_read_panics() {
        let b = DeviceBuffer::new(0, 0, vec![0u8; 4]);
        let _ = b.get(4);
    }

    #[test]
    fn empty_buffer() {
        let b = DeviceBuffer::<f32>::new(0, 0, vec![]);
        assert!(b.is_empty());
        assert_eq!(b.to_host(), Vec::<f32>::new());
    }
}
