//! A functional SIMT GPU simulator.
//!
//! The paper's GPU experiments run hand-rolled GEMM kernels through CUDA,
//! HIP, Kokkos, CUDA.jl, AMDGPU.jl, and Numba-CUDA on hardware this
//! reproduction does not have. Per the substitution methodology in
//! `DESIGN.md`, those launches run here instead: kernels are ordinary Rust
//! closures over a [`ThreadCtx`], executed for every thread of a
//! grid/block hierarchy with CUDA-compatible index semantics, and the
//! simulator observes what real profilers would report:
//!
//! * **global-memory traffic** — element loads/stores and *coalesced
//!   transactions* (distinct cache lines touched per warp access),
//! * **branch divergence** — warps whose lanes executed different access
//!   streams (e.g. the `row < m && col < n` guard),
//! * **flops** — tallied by the kernel through [`ThreadCtx::tally_flops`],
//! * **occupancy** — the classic limits calculation from block size and
//!   shared-memory usage.
//!
//! Execution is *functional and deterministic*: every thread really runs,
//! results are bit-exact, and the counters feed the analytical timing
//! model in `perfport-machines` the way `nvprof` counters feed a roofline
//! analysis. Warps are 32-wide on NVIDIA-class devices and 64-wide
//! (wavefronts) on AMD-class devices.
//!
//! Intra-block synchronisation (`__syncthreads`) is supported through the
//! phase-stepped [`cooperative`] interface: a block's threads all finish
//! phase *p* before any enters phase *p + 1*, which realises barrier
//! semantics deterministically without one OS thread per GPU thread.

pub mod buffer;
pub mod coalesce;
pub mod cooperative;
pub mod ctx;
pub mod device;
pub mod dim;
pub mod kernels;
pub mod launch;
pub mod occupancy;
pub mod stats;

pub use buffer::{DeviceAtomicAdd, DeviceBuffer};
pub use cooperative::{CooperativeKernel, SharedMem, SMEM_BANKS};
pub use ctx::ThreadCtx;
pub use device::DeviceClass;
pub use dim::Dim3;
pub use launch::{Gpu, LaunchConfig, LaunchError, LaunchOptions};
pub use occupancy::{occupancy, Occupancy, OccupancyLimiter};
pub use stats::LaunchStats;
