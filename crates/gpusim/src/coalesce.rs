//! Warp-level memory coalescing analysis.
//!
//! Real GPUs service a warp's memory instruction with one transaction per
//! distinct cache line the lanes touch: 32 adjacent `f32` loads coalesce
//! into a single 128-byte transaction, while a column-strided pattern
//! needs one transaction per lane. The simulator reconstructs this from
//! the per-thread access logs: accesses are grouped by *ordinal* (the
//! n-th access of each lane corresponds to the same static instruction,
//! valid because SIMT lanes execute the kernel in lockstep), and each
//! group is billed `distinct cache lines` transactions.

use crate::ctx::Access;

/// Coalescing summary of one warp's execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarpSummary {
    /// Element loads performed by all lanes.
    pub loads: u64,
    /// Element stores performed by all lanes.
    pub stores: u64,
    /// Memory transactions needed to service the loads.
    pub load_transactions: u64,
    /// Memory transactions needed to service the stores.
    pub store_transactions: u64,
    /// Bytes requested by loads (element bytes, not line bytes).
    pub load_bytes: u64,
    /// Bytes requested by stores.
    pub store_bytes: u64,
    /// `true` when the lanes' access streams differ in shape — the
    /// footprint of branch divergence (e.g. a bounds guard disabling some
    /// lanes).
    pub divergent: bool,
    /// `true` when at least one lane made an access.
    pub active: bool,
}

/// Analyses the access streams of one warp's lanes (empty streams are
/// inactive lanes).
pub fn analyze_warp(lanes: &[Vec<Access>], line_bytes: u64) -> WarpSummary {
    assert!(line_bytes > 0, "cache line size must be positive");
    let mut summary = WarpSummary::default();
    let max_len = lanes.iter().map(Vec::len).max().unwrap_or(0);
    if max_len == 0 {
        return summary;
    }
    summary.active = true;

    // Divergence: any lane with a stream shorter than the longest, or
    // whose access kinds differ at any ordinal from another lane's.
    let min_len = lanes.iter().map(Vec::len).min().unwrap_or(0);
    if min_len != max_len {
        summary.divergent = true;
    }

    let mut lines: Vec<u64> = Vec::with_capacity(lanes.len());
    for ordinal in 0..max_len {
        // Split the ordinal group by kind; mixed kinds at one ordinal also
        // indicate divergence.
        for store in [false, true] {
            lines.clear();
            let mut elems = 0u64;
            let mut bytes = 0u64;
            for lane in lanes {
                if let Some(a) = lane.get(ordinal) {
                    if a.store == store {
                        lines.push(a.addr / line_bytes);
                        elems += 1;
                        bytes += a.bytes as u64;
                    }
                }
            }
            if elems == 0 {
                continue;
            }
            lines.sort_unstable();
            lines.dedup();
            let transactions = lines.len() as u64;
            if store {
                summary.stores += elems;
                summary.store_bytes += bytes;
                summary.store_transactions += transactions;
            } else {
                summary.loads += elems;
                summary.load_bytes += bytes;
                summary.load_transactions += transactions;
            }
        }
        // If both kinds appeared at this ordinal the lanes took different
        // paths.
        let kinds: (bool, bool) =
            lanes
                .iter()
                .fold((false, false), |acc, lane| match lane.get(ordinal) {
                    Some(a) if a.store => (acc.0, true),
                    Some(_) => (true, acc.1),
                    None => acc,
                });
        if kinds.0 && kinds.1 {
            summary.divergent = true;
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(addr: u64) -> Access {
        Access {
            addr,
            bytes: 4,
            store: false,
            atomic: false,
        }
    }

    fn store(addr: u64) -> Access {
        Access {
            addr,
            bytes: 4,
            store: true,
            atomic: false,
        }
    }

    #[test]
    fn fully_coalesced_loads_are_one_transaction() {
        // 32 lanes loading 32 consecutive f32 = 128 bytes = 1 line.
        let lanes: Vec<Vec<Access>> = (0..32).map(|l| vec![load(l * 4)]).collect();
        let s = analyze_warp(&lanes, 128);
        assert_eq!(s.loads, 32);
        assert_eq!(s.load_transactions, 1);
        assert_eq!(s.load_bytes, 128);
        assert!(!s.divergent);
        assert!(s.active);
    }

    #[test]
    fn strided_loads_need_one_transaction_per_lane() {
        // Stride of one line per lane: worst case.
        let lanes: Vec<Vec<Access>> = (0..32).map(|l| vec![load(l * 128)]).collect();
        let s = analyze_warp(&lanes, 128);
        assert_eq!(s.load_transactions, 32);
    }

    #[test]
    fn broadcast_load_is_one_transaction() {
        // All lanes read the same address (e.g. A[row*k+l] within a GEMM
        // row of threads).
        let lanes: Vec<Vec<Access>> = (0..32).map(|_| vec![load(0x1000)]).collect();
        let s = analyze_warp(&lanes, 128);
        assert_eq!(s.loads, 32);
        assert_eq!(s.load_transactions, 1);
    }

    #[test]
    fn f64_full_warp_spans_two_lines() {
        // 32 lanes × 8 bytes = 256 bytes = 2 × 128-byte lines.
        let lanes: Vec<Vec<Access>> = (0..32)
            .map(|l| {
                vec![Access {
                    addr: l * 8,
                    bytes: 8,
                    store: false,
                    atomic: false,
                }]
            })
            .collect();
        let s = analyze_warp(&lanes, 128);
        assert_eq!(s.load_transactions, 2);
        assert_eq!(s.load_bytes, 256);
    }

    #[test]
    fn amd_64_byte_lines_double_transactions() {
        let lanes: Vec<Vec<Access>> = (0..32).map(|l| vec![load(l * 4)]).collect();
        assert_eq!(analyze_warp(&lanes, 64).load_transactions, 2);
        assert_eq!(analyze_warp(&lanes, 128).load_transactions, 1);
    }

    #[test]
    fn multiple_ordinals_counted_independently() {
        // Each lane: coalesced load, then strided load, then coalesced
        // store.
        let lanes: Vec<Vec<Access>> = (0..4)
            .map(|l| vec![load(l * 4), load(l * 256), store(0x4000 + l * 4)])
            .collect();
        let s = analyze_warp(&lanes, 128);
        assert_eq!(s.loads, 8);
        assert_eq!(s.stores, 4);
        assert_eq!(s.load_transactions, 1 + 4);
        assert_eq!(s.store_transactions, 1);
        assert!(!s.divergent);
    }

    #[test]
    fn shorter_stream_marks_divergence() {
        // Lane 3 is masked out by a bounds guard.
        let mut lanes: Vec<Vec<Access>> = (0..4).map(|l| vec![load(l * 4)]).collect();
        lanes[3].clear();
        let s = analyze_warp(&lanes, 128);
        assert!(s.divergent);
        assert_eq!(s.loads, 3);
    }

    #[test]
    fn mixed_kinds_at_same_ordinal_mark_divergence() {
        let lanes = vec![vec![load(0)], vec![store(4)]];
        let s = analyze_warp(&lanes, 128);
        assert!(s.divergent);
        assert_eq!(s.loads, 1);
        assert_eq!(s.stores, 1);
    }

    #[test]
    fn inactive_warp() {
        let lanes: Vec<Vec<Access>> = vec![vec![]; 32];
        let s = analyze_warp(&lanes, 128);
        assert!(!s.active);
        assert!(!s.divergent);
        assert_eq!(s.loads + s.stores, 0);
    }

    #[test]
    fn accesses_straddling_lines_split() {
        // Two lanes in different lines, two in the same line.
        let lanes = vec![
            vec![load(0)],
            vec![load(4)],
            vec![load(128)],
            vec![load(132)],
        ];
        let s = analyze_warp(&lanes, 128);
        assert_eq!(s.load_transactions, 2);
    }
}
