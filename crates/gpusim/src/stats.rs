//! Aggregated launch statistics — the simulator's `nvprof` output.

use crate::coalesce::WarpSummary;
use std::time::Duration;

/// Counters aggregated over one kernel launch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaunchStats {
    /// Blocks in the grid.
    pub blocks: u64,
    /// Warps/wavefronts executed (including partially populated ones).
    pub warps: u64,
    /// Threads launched (grid × block).
    pub threads: u64,
    /// Floating-point operations tallied by the kernel.
    pub flops: u64,
    /// Global-memory element loads.
    pub loads: u64,
    /// Global-memory element stores.
    pub stores: u64,
    /// Coalesced load transactions.
    pub load_transactions: u64,
    /// Coalesced store transactions.
    pub store_transactions: u64,
    /// Bytes requested by loads.
    pub load_bytes: u64,
    /// Bytes requested by stores.
    pub store_bytes: u64,
    /// Atomic read-modify-write operations.
    pub atomic_ops: u64,
    /// Warps whose lanes took different paths (detected from access
    /// streams).
    pub divergent_warps: u64,
    /// Warps with at least one active lane.
    pub active_warps: u64,
    /// Shared-memory element loads (cooperative launches).
    pub shared_loads: u64,
    /// Shared-memory element stores (cooperative launches).
    pub shared_stores: u64,
    /// Extra serialised shared-memory passes from bank conflicts
    /// (cooperative launches).
    pub bank_conflicts: u64,
    /// Barrier phases executed (cooperative launches).
    pub phases: u64,
    /// Host-side wall time spent simulating the launch.
    pub sim_time: Duration,
    /// Transaction granularity used for the analysis, bytes.
    pub line_bytes: u64,
}

impl LaunchStats {
    pub(crate) fn absorb_warp(&mut self, w: &WarpSummary) {
        self.loads += w.loads;
        self.stores += w.stores;
        self.load_transactions += w.load_transactions;
        self.store_transactions += w.store_transactions;
        self.load_bytes += w.load_bytes;
        self.store_bytes += w.store_bytes;
        if w.divergent {
            self.divergent_warps += 1;
        }
        if w.active {
            self.active_warps += 1;
        }
    }

    pub(crate) fn merge(&mut self, other: &LaunchStats) {
        self.blocks += other.blocks;
        self.warps += other.warps;
        self.threads += other.threads;
        self.flops += other.flops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.load_transactions += other.load_transactions;
        self.store_transactions += other.store_transactions;
        self.load_bytes += other.load_bytes;
        self.store_bytes += other.store_bytes;
        self.atomic_ops += other.atomic_ops;
        self.divergent_warps += other.divergent_warps;
        self.active_warps += other.active_warps;
        self.shared_loads += other.shared_loads;
        self.shared_stores += other.shared_stores;
        self.bank_conflicts += other.bank_conflicts;
        self.phases = self.phases.max(other.phases);
    }

    /// Total DRAM traffic implied by the coalesced transactions, bytes.
    pub fn dram_bytes(&self) -> u64 {
        (self.load_transactions + self.store_transactions) * self.line_bytes
    }

    /// Arithmetic intensity against the *transaction* traffic,
    /// flops per DRAM byte — the roofline x-coordinate.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.dram_bytes();
        if bytes == 0 {
            return f64::INFINITY;
        }
        self.flops as f64 / bytes as f64
    }

    /// Ratio of requested bytes to transferred bytes: 1.0 means perfectly
    /// coalesced, lower means wasted bandwidth.
    pub fn coalescing_efficiency(&self) -> f64 {
        let transferred = self.dram_bytes();
        if transferred == 0 {
            return 1.0;
        }
        (self.load_bytes + self.store_bytes) as f64 / transferred as f64
    }

    /// Fraction of active warps that diverged.
    pub fn divergence_rate(&self) -> f64 {
        if self.active_warps == 0 {
            return 0.0;
        }
        self.divergent_warps as f64 / self.active_warps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_and_merge() {
        let mut a = LaunchStats {
            line_bytes: 128,
            ..Default::default()
        };
        a.absorb_warp(&WarpSummary {
            loads: 32,
            stores: 8,
            load_transactions: 2,
            store_transactions: 1,
            load_bytes: 128,
            store_bytes: 32,
            divergent: true,
            active: true,
        });
        assert_eq!(a.loads, 32);
        assert_eq!(a.divergent_warps, 1);
        assert_eq!(a.active_warps, 1);

        let mut b = LaunchStats {
            blocks: 2,
            warps: 4,
            threads: 128,
            flops: 100,
            line_bytes: 128,
            ..Default::default()
        };
        b.merge(&a);
        assert_eq!(b.loads, 32);
        assert_eq!(b.blocks, 2);
        assert_eq!(b.flops, 100);
    }

    #[test]
    fn derived_metrics() {
        let s = LaunchStats {
            flops: 1280,
            load_transactions: 4,
            store_transactions: 1,
            load_bytes: 512,
            store_bytes: 64,
            line_bytes: 128,
            active_warps: 10,
            divergent_warps: 3,
            ..Default::default()
        };
        assert_eq!(s.dram_bytes(), 5 * 128);
        assert!((s.arithmetic_intensity() - 2.0).abs() < 1e-12);
        assert!((s.coalescing_efficiency() - 576.0 / 640.0).abs() < 1e-12);
        assert!((s.divergence_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn zero_traffic_edge_cases() {
        let s = LaunchStats::default();
        assert_eq!(s.dram_bytes(), 0);
        assert!(s.arithmetic_intensity().is_infinite());
        assert_eq!(s.coalescing_efficiency(), 1.0);
        assert_eq!(s.divergence_rate(), 0.0);
    }
}
