//! The launch engine: grid iteration, host-parallel block execution,
//! counter aggregation, and optional data-race detection.

use crate::buffer::{DeviceBuffer, DeviceCopy};
use crate::coalesce::analyze_warp;
use crate::ctx::{Access, ThreadCtx};
use crate::device::DeviceClass;
use crate::dim::Dim3;
use crate::stats::LaunchStats;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

/// Grid and block shape of a launch — the `<<<grid, block>>>` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Blocks in the grid.
    pub grid: Dim3,
    /// Threads per block.
    pub block: Dim3,
}

impl LaunchConfig {
    /// A 1-D launch covering `n` threads with `block`-sized blocks.
    pub fn cover1d(n: u32, block: u32) -> Self {
        LaunchConfig {
            grid: Dim3::cover(Dim3::d1(n.max(1)), Dim3::d1(block)),
            block: Dim3::d1(block),
        }
    }

    /// A 2-D launch covering an `nx × ny` problem — the paper's GEMM grid
    /// with 32×32 thread blocks.
    pub fn cover2d(nx: u32, ny: u32, block: Dim3) -> Self {
        LaunchConfig {
            grid: Dim3::cover(Dim3::d2(nx.max(1), ny.max(1)), block),
            block,
        }
    }

    /// Checks the configuration against device limits.
    pub fn validate(&self, class: DeviceClass) -> Result<(), LaunchError> {
        if self.grid.count() == 0 || self.block.count() == 0 {
            return Err(LaunchError::InvalidConfig(
                "grid and block extents must be non-zero".into(),
            ));
        }
        let per_block = self.block.count();
        if per_block > class.max_threads_per_block() as u64 {
            return Err(LaunchError::InvalidConfig(format!(
                "block has {per_block} threads, device limit is {}",
                class.max_threads_per_block()
            )));
        }
        Ok(())
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid.count() * self.block.count()
    }
}

/// Knobs for one launch.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaunchOptions {
    /// Host threads used to simulate blocks in parallel; `0` = one per
    /// available core.
    pub host_threads: usize,
    /// Record every thread's accesses and report write-write or
    /// cross-thread read-write sharing. Forces serial simulation; intended
    /// for kernel debugging at small sizes (compare `compute-sanitizer
    /// --tool racecheck`).
    pub detect_races: bool,
}

/// Launch failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// The grid/block shape violates a device limit.
    InvalidConfig(String),
    /// Two simulated threads raced on a global address (race detector
    /// enabled).
    DataRace {
        /// Conflicting simulated address.
        addr: u64,
        /// Global linear id of the first thread involved.
        thread_a: u64,
        /// Global linear id of the second thread involved.
        thread_b: u64,
    },
    /// Threads of one block disagreed about continuing at a barrier
    /// (cooperative launches) — undefined behaviour on real hardware.
    BarrierDivergence {
        /// The offending block.
        block: Dim3,
        /// The phase at which lanes disagreed.
        phase: usize,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::InvalidConfig(msg) => write!(f, "invalid launch config: {msg}"),
            LaunchError::DataRace {
                addr,
                thread_a,
                thread_b,
            } => write!(
                f,
                "data race on device address {addr:#x} between threads {thread_a} and {thread_b}"
            ),
            LaunchError::BarrierDivergence { block, phase } => {
                write!(f, "barrier divergence in block {block} at phase {phase}")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// A simulated GPU: an address space for buffers plus the launch engine.
///
/// ```
/// use perfport_gpusim::{DeviceClass, Gpu, LaunchConfig};
///
/// let gpu = Gpu::new(DeviceClass::NvidiaLike);
/// let xs = gpu.alloc_from_slice(&[1.0f32, 2.0, 3.0, 4.0]);
/// let ys = gpu.alloc_filled(4, 0.0f32);
/// let stats = gpu
///     .launch(LaunchConfig::cover1d(4, 32), |t| {
///         let i = t.global_x();
///         if i < 4 {
///             ys.write(t, i, xs.read(t, i) * 10.0);
///             t.tally_flops(1);
///         }
///     })
///     .unwrap();
/// assert_eq!(ys.to_host(), vec![10.0, 20.0, 30.0, 40.0]);
/// assert_eq!(stats.flops, 4);
/// ```
pub struct Gpu {
    class: DeviceClass,
    next_base: AtomicU64,
    next_id: AtomicU32,
}

/// Alignment of simulated allocations (matches `cudaMalloc`'s 256-byte
/// guarantee, and keeps buffers from sharing cache lines).
const ALLOC_ALIGN: u64 = 256;

impl Gpu {
    /// Creates a device of the given class.
    pub fn new(class: DeviceClass) -> Self {
        Gpu {
            class,
            next_base: AtomicU64::new(ALLOC_ALIGN),
            next_id: AtomicU32::new(0),
        }
    }

    /// The device's execution class.
    pub fn class(&self) -> DeviceClass {
        self.class
    }

    fn bump(&self, bytes: u64) -> (u32, u64) {
        let size = bytes.max(1).div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN;
        let base = self.next_base.fetch_add(size, Ordering::Relaxed);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        (id, base)
    }

    /// Copies a host slice into a fresh device buffer (`cudaMemcpy` H2D).
    pub fn alloc_from_slice<T: DeviceCopy>(&self, host: &[T]) -> DeviceBuffer<T> {
        let (id, base) = self.bump(std::mem::size_of_val(host) as u64);
        DeviceBuffer::new(id, base, host.to_vec())
    }

    /// Allocates `len` elements initialised to `value`.
    pub fn alloc_filled<T: DeviceCopy>(&self, len: usize, value: T) -> DeviceBuffer<T> {
        let (id, base) = self.bump((len * std::mem::size_of::<T>()) as u64);
        DeviceBuffer::new(id, base, vec![value; len])
    }

    /// Launches `kernel` over `cfg` with default options.
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::InvalidConfig`] for illegal shapes.
    ///
    /// # Panics
    ///
    /// Propagates kernel panics (e.g. out-of-bounds buffer access — the
    /// simulator's illegal-address fault).
    pub fn launch<F>(&self, cfg: LaunchConfig, kernel: F) -> Result<LaunchStats, LaunchError>
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        self.launch_with(cfg, LaunchOptions::default(), kernel)
    }

    /// Launches with explicit [`LaunchOptions`].
    pub fn launch_with<F>(
        &self,
        cfg: LaunchConfig,
        opts: LaunchOptions,
        kernel: F,
    ) -> Result<LaunchStats, LaunchError>
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        cfg.validate(self.class)?;
        let mut sp = perfport_trace::span("gpu", "launch");
        let start = Instant::now();
        let class = self.class;
        let warp = class.warp_size() as u64;
        let line_bytes = class.transaction_bytes();
        let threads_per_block = cfg.block.count();
        let warps_per_block = threads_per_block.div_ceil(warp);
        let n_blocks = cfg.grid.count();

        let host_threads = if opts.detect_races {
            1
        } else {
            let avail = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            let requested = if opts.host_threads == 0 {
                avail
            } else {
                opts.host_threads
            };
            requested.min(n_blocks as usize).max(1)
        };

        let next_block = AtomicU64::new(0);
        let totals = Mutex::new(LaunchStats {
            line_bytes,
            ..Default::default()
        });
        let race_log: Mutex<Vec<(u64, Vec<Access>)>> = Mutex::new(Vec::new());
        // First kernel panic, preserved so the caller sees the original
        // message (e.g. the illegal-address fault) instead of the scope's
        // generic one.
        let fault: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        std::thread::scope(|s| {
            for _ in 0..host_threads {
                s.spawn(|| {
                    let mut local = LaunchStats {
                        line_bytes,
                        ..Default::default()
                    };
                    let mut lanes: Vec<Vec<Access>> = Vec::with_capacity(warp as usize);
                    loop {
                        if fault.lock().is_some() {
                            break;
                        }
                        let b = next_block.fetch_add(1, Ordering::Relaxed);
                        if b >= n_blocks {
                            break;
                        }
                        let block_idx = cfg.grid.delinearize(b);
                        local.blocks += 1;
                        for w in 0..warps_per_block {
                            local.warps += 1;
                            lanes.clear();
                            let lane_count = warp.min(threads_per_block - w * warp);
                            for lane in 0..lane_count {
                                let lin = w * warp + lane;
                                let thread_idx = cfg.block.delinearize(lin);
                                let ctx = ThreadCtx::new(
                                    class, cfg.grid, cfg.block, block_idx, thread_idx,
                                );
                                let global_id = ctx.global_linear();
                                if let Err(payload) =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        kernel(&ctx)
                                    }))
                                {
                                    let mut slot = fault.lock();
                                    if slot.is_none() {
                                        *slot = Some(payload);
                                    }
                                    return;
                                }
                                let (obs, log) = ctx.take_observations();
                                local.flops += obs.flops;
                                local.atomic_ops += obs.atomics;
                                local.threads += 1;
                                if opts.detect_races {
                                    race_log.lock().push((global_id, log.clone()));
                                }
                                lanes.push(log);
                            }
                            let summary = analyze_warp(&lanes, line_bytes);
                            local.absorb_warp(&summary);
                        }
                    }
                    totals.lock().merge(&local);
                });
            }
        });

        if let Some(payload) = fault.into_inner() {
            std::panic::resume_unwind(payload);
        }

        if opts.detect_races {
            check_races(&race_log.into_inner())?;
        }

        let mut stats = totals.into_inner();
        stats.sim_time = start.elapsed();
        if sp.is_recording() {
            let occ = crate::occupancy::occupancy(class, threads_per_block as u32, 0);
            sp.arg("class", format!("{class:?}"));
            sp.arg("grid", cfg.grid.to_string());
            sp.arg("block", cfg.block.to_string());
            sp.arg("host_threads", host_threads);
            sp.arg("blocks", stats.blocks);
            sp.arg("threads", stats.threads);
            sp.arg("flops", stats.flops);
            sp.arg("load_transactions", stats.load_transactions);
            sp.arg("store_transactions", stats.store_transactions);
            sp.arg("divergent_warps", stats.divergent_warps);
            sp.arg("occupancy", occ.fraction);
            sp.arg("occupancy_limiter", format!("{:?}", occ.limiter));
            perfport_trace::counter(
                "gpu",
                "coalescing_efficiency",
                stats.coalescing_efficiency(),
            );
            perfport_trace::counter("gpu", "occupancy", occ.fraction);
        }
        Ok(stats)
    }
}

/// Scans the full access trace for unsynchronised sharing: two distinct
/// threads writing one address, or one thread reading an address another
/// thread wrote. In a data-parallel launch (no cross-block or cross-warp
/// ordering), any such sharing is a race.
fn check_races(trace: &[(u64, Vec<Access>)]) -> Result<(), LaunchError> {
    let mut writers: HashMap<u64, u64> = HashMap::new();
    for (tid, log) in trace {
        for a in log.iter().filter(|a| a.store && !a.atomic) {
            if let Some(&other) = writers.get(&a.addr) {
                if other != *tid {
                    return Err(LaunchError::DataRace {
                        addr: a.addr,
                        thread_a: other,
                        thread_b: *tid,
                    });
                }
            } else {
                writers.insert(a.addr, *tid);
            }
        }
    }
    for (tid, log) in trace {
        for a in log.iter().filter(|a| !a.store && !a.atomic) {
            if let Some(&w) = writers.get(&a.addr) {
                if w != *tid {
                    return Err(LaunchError::DataRace {
                        addr: a.addr,
                        thread_a: w,
                        thread_b: *tid,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_add_runs_and_counts() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let n = 1000u32;
        let a = gpu.alloc_from_slice(&(0..n).map(|i| i as f32).collect::<Vec<_>>());
        let b = gpu.alloc_from_slice(&vec![2.0f32; n as usize]);
        let c = gpu.alloc_filled(n as usize, 0.0f32);
        let cfg = LaunchConfig::cover1d(n, 128);
        let stats = gpu
            .launch(cfg, |t| {
                let i = t.global_x();
                if i < n as usize {
                    let v = a.read(t, i) + b.read(t, i);
                    c.write(t, i, v);
                    t.tally_flops(1);
                }
            })
            .unwrap();
        for i in 0..n as usize {
            assert_eq!(c.get(i), i as f32 + 2.0);
        }
        assert_eq!(stats.flops, n as u64);
        assert_eq!(stats.loads, 2 * n as u64);
        assert_eq!(stats.stores, n as u64);
        assert_eq!(stats.blocks, 8);
        assert_eq!(stats.threads, 8 * 128);
        // 1000 of 1024 threads active: the tail warp is divergent.
        assert_eq!(stats.divergent_warps, 1);
    }

    #[test]
    fn coalesced_vs_strided_transactions() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let n = 1024usize;
        let src = gpu.alloc_filled(n * 32, 1.0f32);
        let dst = gpu.alloc_filled(n, 0.0f32);
        let cfg = LaunchConfig::cover1d(n as u32, 256);

        let coalesced = gpu
            .launch(cfg, |t| {
                let i = t.global_x();
                dst.write(t, i, src.read(t, i));
            })
            .unwrap();
        let strided = gpu
            .launch(cfg, |t| {
                let i = t.global_x();
                dst.write(t, i, src.read(t, i * 32));
            })
            .unwrap();
        // 32 f32 per 128-byte line: coalesced warp = 1 transaction, stride
        // 32 puts every lane in its own line.
        assert_eq!(coalesced.load_transactions, (n / 32) as u64);
        assert_eq!(strided.load_transactions, n as u64);
        assert!(strided.coalescing_efficiency() < coalesced.coalescing_efficiency());
    }

    #[test]
    fn grid2_semantics_match_cuda() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let out = gpu.alloc_filled(16 * 8, 0u32);
        let cfg = LaunchConfig::cover2d(16, 8, Dim3::d2(4, 4));
        gpu.launch(cfg, |t| {
            let (x, y) = t.grid2();
            if x < 16 && y < 8 {
                out.write(t, y * 16 + x, (1000 * y + x) as u32);
            }
        })
        .unwrap();
        for y in 0..8 {
            for x in 0..16 {
                assert_eq!(out.get(y * 16 + x), (1000 * y + x) as u32);
            }
        }
    }

    #[test]
    fn amd_wavefronts_change_warp_count() {
        let na = Gpu::new(DeviceClass::NvidiaLike);
        let aa = Gpu::new(DeviceClass::AmdLike);
        let cfg = LaunchConfig::cover1d(512, 256);
        let sn = na.launch(cfg, |_t| {}).unwrap();
        let sa = aa.launch(cfg, |_t| {}).unwrap();
        assert_eq!(sn.warps, 2 * 8); // 256/32 per block × 2 blocks
        assert_eq!(sa.warps, 2 * 4); // 256/64 per block × 2 blocks
    }

    #[test]
    fn invalid_configs_rejected() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let too_big = LaunchConfig {
            grid: Dim3::d1(1),
            block: Dim3::d2(64, 32),
        };
        assert!(matches!(
            gpu.launch(too_big, |_t| {}),
            Err(LaunchError::InvalidConfig(_))
        ));
        let empty = LaunchConfig {
            grid: Dim3::d1(1),
            block: Dim3 { x: 0, y: 1, z: 1 },
        };
        assert!(gpu.launch(empty, |_t| {}).is_err());
    }

    #[test]
    #[should_panic(expected = "illegal device address")]
    fn out_of_bounds_access_faults() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let buf = gpu.alloc_filled(8, 0.0f32);
        let cfg = LaunchConfig::cover1d(32, 32);
        let _ = gpu.launch(cfg, |t| {
            // No bounds guard: threads 8..32 fault.
            buf.write(t, t.global_x(), 1.0);
        });
    }

    #[test]
    fn race_detector_catches_write_write() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let buf = gpu.alloc_filled(1, 0u32);
        let cfg = LaunchConfig::cover1d(64, 32);
        let opts = LaunchOptions {
            detect_races: true,
            ..Default::default()
        };
        let err = gpu
            .launch_with(cfg, opts, |t| {
                buf.write(t, 0, t.global_x() as u32);
            })
            .unwrap_err();
        assert!(matches!(err, LaunchError::DataRace { .. }));
    }

    #[test]
    fn race_detector_catches_read_write_sharing() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let buf = gpu.alloc_filled(64, 0u32);
        let cfg = LaunchConfig::cover1d(64, 32);
        let opts = LaunchOptions {
            detect_races: true,
            ..Default::default()
        };
        let err = gpu
            .launch_with(cfg, opts, |t| {
                let i = t.global_x();
                // Neighbour read of a written cell: racy.
                let v = buf.read(t, (i + 1) % 64);
                buf.write(t, i, v + 1);
            })
            .unwrap_err();
        assert!(matches!(err, LaunchError::DataRace { .. }));
    }

    #[test]
    fn race_free_kernel_passes_detector() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let a = gpu.alloc_filled(64, 1u32);
        let b = gpu.alloc_filled(64, 0u32);
        let cfg = LaunchConfig::cover1d(64, 32);
        let opts = LaunchOptions {
            detect_races: true,
            ..Default::default()
        };
        let stats = gpu
            .launch_with(cfg, opts, |t| {
                let i = t.global_x();
                b.write(t, i, a.read(t, i) * 2);
            })
            .unwrap();
        assert_eq!(stats.threads, 64);
        assert!(b.to_host().iter().all(|&x| x == 2));
    }

    #[test]
    fn deterministic_across_host_parallelism() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let n = 4096;
        let src = gpu.alloc_from_slice(&(0..n).map(|i| i as f32).collect::<Vec<_>>());
        let d1 = gpu.alloc_filled(n, 0.0f32);
        let d2 = gpu.alloc_filled(n, 0.0f32);
        let cfg = LaunchConfig::cover1d(n as u32, 128);
        let serial = gpu
            .launch_with(
                cfg,
                LaunchOptions {
                    host_threads: 1,
                    detect_races: false,
                },
                |t| {
                    let i = t.global_x();
                    d1.write(t, i, src.read(t, i) * 3.0);
                },
            )
            .unwrap();
        let parallel = gpu
            .launch(cfg, |t| {
                let i = t.global_x();
                d2.write(t, i, src.read(t, i) * 3.0);
            })
            .unwrap();
        assert_eq!(d1.to_host(), d2.to_host());
        assert_eq!(serial.loads, parallel.loads);
        assert_eq!(serial.load_transactions, parallel.load_transactions);
        assert_eq!(serial.divergent_warps, parallel.divergent_warps);
    }

    #[test]
    fn allocations_do_not_share_lines() {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let a = gpu.alloc_filled(3, 0u8);
        let b = gpu.alloc_filled(3, 0u8);
        assert!(b.base_addr() >= a.base_addr() + 256 || a.base_addr() >= b.base_addr() + 256);
        assert_ne!(a.id(), b.id());
    }
}
