//! Grid and block dimensions with CUDA-compatible semantics.

use std::fmt;

/// A three-component extent or index, `x` varying fastest — exactly
/// CUDA's `dim3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Fastest-varying component.
    pub x: u32,
    /// Middle component.
    pub y: u32,
    /// Slowest-varying component.
    pub z: u32,
}

impl Dim3 {
    /// A 1-D extent `(x, 1, 1)`.
    pub const fn d1(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D extent `(x, y, 1)`.
    pub const fn d2(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// A 3-D extent.
    pub const fn d3(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// A 1-D *index* `(x, 0, 0)` — unlike [`Dim3::d1`], unused components
    /// are zero because indices are positions, not extents.
    pub const fn at1(x: u32) -> Self {
        Dim3 { x, y: 0, z: 0 }
    }

    /// A 2-D *index* `(x, y, 0)`.
    pub const fn at2(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 0 }
    }

    /// Product of the components.
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Linearises an index within this extent (`x` fastest — the CUDA
    /// thread numbering used for warp formation).
    pub fn linear(&self, idx: Dim3) -> u64 {
        debug_assert!(idx.x < self.x && idx.y < self.y && idx.z < self.z);
        (idx.z as u64 * self.y as u64 + idx.y as u64) * self.x as u64 + idx.x as u64
    }

    /// Inverse of [`Dim3::linear`].
    pub fn delinearize(&self, linear: u64) -> Dim3 {
        debug_assert!(linear < self.count());
        let x = (linear % self.x as u64) as u32;
        let rest = linear / self.x as u64;
        let y = (rest % self.y as u64) as u32;
        let z = (rest / self.y as u64) as u32;
        Dim3 { x, y, z }
    }

    /// Iterates all indices in linear order.
    pub fn iter(&self) -> impl Iterator<Item = Dim3> + '_ {
        (0..self.count()).map(move |l| self.delinearize(l))
    }

    /// Ceil-divides a problem extent by a block extent — the usual grid
    /// sizing idiom `(n + block - 1) / block` per component.
    pub fn cover(problem: Dim3, block: Dim3) -> Dim3 {
        assert!(block.count() > 0, "block must be non-empty");
        Dim3 {
            x: problem.x.div_ceil(block.x.max(1)),
            y: problem.y.div_ceil(block.y.max(1)),
            z: problem.z.div_ceil(block.z.max(1)),
        }
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Dim3::d1(5), Dim3 { x: 5, y: 1, z: 1 });
        assert_eq!(Dim3::d2(3, 4), Dim3 { x: 3, y: 4, z: 1 });
        assert_eq!(Dim3::d3(2, 3, 4).count(), 24);
    }

    #[test]
    fn linearisation_round_trips() {
        let ext = Dim3::d3(5, 7, 3);
        for l in 0..ext.count() {
            let idx = ext.delinearize(l);
            assert_eq!(ext.linear(idx), l);
        }
    }

    #[test]
    fn x_varies_fastest() {
        let ext = Dim3::d2(4, 4);
        assert_eq!(ext.linear(Dim3::at2(1, 0)), 1);
        assert_eq!(ext.linear(Dim3::at2(0, 1)), 4);
        let idx = ext.delinearize(5);
        assert_eq!(idx, Dim3::at2(1, 1));
    }

    #[test]
    fn iter_visits_all_in_order() {
        let ext = Dim3::d2(2, 2);
        let all: Vec<Dim3> = ext.iter().collect();
        assert_eq!(
            all,
            vec![
                Dim3::at2(0, 0),
                Dim3::at2(1, 0),
                Dim3::at2(0, 1),
                Dim3::at2(1, 1)
            ]
        );
    }

    #[test]
    fn cover_rounds_up() {
        let grid = Dim3::cover(Dim3::d2(100, 65), Dim3::d2(32, 32));
        assert_eq!(grid, Dim3::d2(4, 3));
        // Exact fit does not over-allocate.
        assert_eq!(
            Dim3::cover(Dim3::d2(64, 64), Dim3::d2(32, 32)),
            Dim3::d2(2, 2)
        );
    }

    #[test]
    fn display() {
        assert_eq!(Dim3::d3(1, 2, 3).to_string(), "(1, 2, 3)");
    }
}
