//! Execution-semantics description of a simulated device.
//!
//! This is the part of a GPU that affects *what the counters mean*:
//! warp/wavefront width, memory transaction granularity, and launch
//! limits. Throughput numbers (peak flops, bandwidth) live in
//! `perfport-machines`, which pairs one of these device classes with a
//! performance envelope.

use std::fmt;

/// The SIMT execution class of a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// NVIDIA-style: 32-wide warps, 128-byte L1 transactions (e.g. A100).
    NvidiaLike,
    /// AMD CDNA-style: 64-wide wavefronts, 64-byte transactions
    /// (e.g. MI250X).
    AmdLike,
}

impl DeviceClass {
    /// Threads per warp (NVIDIA) / wavefront (AMD).
    pub fn warp_size(&self) -> u32 {
        match self {
            DeviceClass::NvidiaLike => 32,
            DeviceClass::AmdLike => 64,
        }
    }

    /// Bytes per global-memory transaction (cache-line granularity used
    /// for the coalescing analysis).
    pub fn transaction_bytes(&self) -> u64 {
        match self {
            DeviceClass::NvidiaLike => 128,
            DeviceClass::AmdLike => 64,
        }
    }

    /// Maximum threads per block.
    pub fn max_threads_per_block(&self) -> u32 {
        1024
    }

    /// Maximum threads resident per SM / CU.
    pub fn max_threads_per_sm(&self) -> u32 {
        match self {
            DeviceClass::NvidiaLike => 2048,
            DeviceClass::AmdLike => 2048,
        }
    }

    /// Maximum resident blocks per SM / CU.
    pub fn max_blocks_per_sm(&self) -> u32 {
        32
    }

    /// Shared memory (LDS on AMD) per block, bytes.
    pub fn max_shared_mem_per_block(&self) -> u64 {
        match self {
            DeviceClass::NvidiaLike => 48 * 1024,
            DeviceClass::AmdLike => 64 * 1024,
        }
    }

    /// Shared memory per SM / CU, bytes (limits occupancy).
    pub fn shared_mem_per_sm(&self) -> u64 {
        match self {
            DeviceClass::NvidiaLike => 164 * 1024, // A100 configurable carve-out
            DeviceClass::AmdLike => 64 * 1024,
        }
    }

    /// The vendor's name for a group of lockstep lanes.
    pub fn lane_group_name(&self) -> &'static str {
        match self {
            DeviceClass::NvidiaLike => "warp",
            DeviceClass::AmdLike => "wavefront",
        }
    }
}

impl fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceClass::NvidiaLike => write!(f, "nvidia-like"),
            DeviceClass::AmdLike => write!(f, "amd-like"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_widths_match_vendors() {
        assert_eq!(DeviceClass::NvidiaLike.warp_size(), 32);
        assert_eq!(DeviceClass::AmdLike.warp_size(), 64);
    }

    #[test]
    fn transaction_granularity() {
        assert_eq!(DeviceClass::NvidiaLike.transaction_bytes(), 128);
        assert_eq!(DeviceClass::AmdLike.transaction_bytes(), 64);
    }

    #[test]
    fn limits_are_sane() {
        for d in [DeviceClass::NvidiaLike, DeviceClass::AmdLike] {
            assert!(d.max_threads_per_block() >= 1024);
            assert!(d.max_threads_per_sm() >= d.max_threads_per_block());
            assert!(d.max_shared_mem_per_block() > 0);
            assert!(d.shared_mem_per_sm() >= d.max_shared_mem_per_block());
        }
    }

    #[test]
    fn naming() {
        assert_eq!(DeviceClass::NvidiaLike.lane_group_name(), "warp");
        assert_eq!(DeviceClass::AmdLike.lane_group_name(), "wavefront");
        assert_eq!(DeviceClass::AmdLike.to_string(), "amd-like");
    }
}
