//! Property-based tests for the SIMT simulator: counter invariants that
//! must hold for any launch geometry.

use perfport_gpusim::{DeviceClass, Dim3, Gpu, LaunchConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every thread of the grid executes exactly once: a per-thread
    /// counter kernel sums to grid × block.
    #[test]
    fn every_thread_runs_once(
        gx in 1u32..5, gy in 1u32..4, bx in 1u32..17, by in 1u32..9,
        amd in proptest::bool::ANY,
    ) {
        let class = if amd { DeviceClass::AmdLike } else { DeviceClass::NvidiaLike };
        let gpu = Gpu::new(class);
        let cfg = LaunchConfig { grid: Dim3::d2(gx, gy), block: Dim3::d2(bx, by) };
        let total = cfg.total_threads() as usize;
        let marks = gpu.alloc_filled(total, 0u32);
        let stats = gpu.launch(cfg, |t| {
            let id = t.global_linear() as usize;
            marks.write(t, id, marks.read(t, id) + 1);
        }).unwrap();
        prop_assert_eq!(stats.threads, total as u64);
        prop_assert!(marks.to_host().iter().all(|&m| m == 1));
    }

    /// Transactions are bounded: at least the bytes-determined minimum,
    /// at most one per element access.
    #[test]
    fn transaction_bounds(n in 1usize..2000, block in 1u32..257, stride in 1usize..5) {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let src = gpu.alloc_filled(n * stride, 1.0f32);
        let dst = gpu.alloc_filled(n, 0.0f32);
        let cfg = LaunchConfig::cover1d(n as u32, block);
        let stats = gpu.launch(cfg, |t| {
            let i = t.global_x();
            if i < n {
                dst.write(t, i, src.read(t, i * stride));
            }
        }).unwrap();
        prop_assert_eq!(stats.loads, n as u64);
        prop_assert!(stats.load_transactions <= stats.loads);
        // Lower bound: total requested bytes / line size, rounded up.
        let min = (stats.load_bytes).div_ceil(stats.line_bytes);
        prop_assert!(stats.load_transactions >= min,
            "{} transactions < floor {}", stats.load_transactions, min);
        prop_assert!(stats.coalescing_efficiency() <= 1.0 + 1e-9);
    }

    /// Warp accounting: warps = blocks × ceil(block_threads / warp).
    #[test]
    fn warp_count_formula(gx in 1u32..8, bx in 1u32..513, amd in proptest::bool::ANY) {
        let class = if amd { DeviceClass::AmdLike } else { DeviceClass::NvidiaLike };
        let gpu = Gpu::new(class);
        let cfg = LaunchConfig { grid: Dim3::d1(gx), block: Dim3::d1(bx) };
        let stats = gpu.launch(cfg, |_t| {}).unwrap();
        let expect = u64::from(gx) * u64::from(bx).div_ceil(u64::from(class.warp_size()));
        prop_assert_eq!(stats.warps, expect);
    }

    /// Determinism: any race-free kernel produces identical results and
    /// counters under serial and parallel host execution.
    #[test]
    fn host_parallelism_invariance(n in 1usize..1500, block in 1u32..129) {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let src = gpu.alloc_filled(n, 2.0f32);
        let d1 = gpu.alloc_filled(n, 0.0f32);
        let d2 = gpu.alloc_filled(n, 0.0f32);
        let cfg = LaunchConfig::cover1d(n as u32, block);
        let serial = gpu.launch_with(cfg,
            perfport_gpusim::LaunchOptions { host_threads: 1, detect_races: false },
            |t| { let i = t.global_x(); if i < n { d1.write(t, i, src.read(t, i) + i as f32); } },
        ).unwrap();
        let parallel = gpu.launch_with(cfg,
            perfport_gpusim::LaunchOptions { host_threads: 3, detect_races: false },
            |t| { let i = t.global_x(); if i < n { d2.write(t, i, src.read(t, i) + i as f32); } },
        ).unwrap();
        prop_assert_eq!(d1.to_host(), d2.to_host());
        prop_assert_eq!(serial.load_transactions, parallel.load_transactions);
        prop_assert_eq!(serial.divergent_warps, parallel.divergent_warps);
        prop_assert_eq!(serial.flops, parallel.flops);
    }

    /// The race detector never fires on an embarrassingly parallel
    /// kernel, for any geometry.
    #[test]
    fn no_false_race_positives(n in 1usize..800, block in 1u32..129) {
        let gpu = Gpu::new(DeviceClass::AmdLike);
        let buf = gpu.alloc_filled(n, 0u64);
        let cfg = LaunchConfig::cover1d(n as u32, block);
        let result = gpu.launch_with(cfg,
            perfport_gpusim::LaunchOptions { host_threads: 0, detect_races: true },
            |t| { let i = t.global_x(); if i < n { buf.write(t, i, i as u64); } },
        );
        prop_assert!(result.is_ok(), "{result:?}");
    }

    /// Divergence detection: a guard that masks out a suffix of threads
    /// flags a warp iff the cut falls strictly inside it.
    #[test]
    fn divergence_localised_to_boundary_warp(active in 1usize..256) {
        let gpu = Gpu::new(DeviceClass::NvidiaLike);
        let buf = gpu.alloc_filled(active, 0u32);
        let cfg = LaunchConfig::cover1d(256, 256);
        let stats = gpu.launch(cfg, |t| {
            let i = t.global_x();
            if i < active {
                buf.write(t, i, 1);
            }
        }).unwrap();
        let divergent = if active % 32 == 0 { 0 } else { 1 };
        prop_assert_eq!(stats.divergent_warps, divergent);
    }
}
