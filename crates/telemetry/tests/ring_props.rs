//! Property tests for the flight-recorder ring and the histogram
//! quantile bound.
//!
//! - A ring of capacity N fed K events keeps exactly the newest
//!   `min(N, K)` events, in recording order.
//! - A histogram-derived quantile never under-states the exact
//!   nearest-rank value and never exceeds twice it (one log₂ bucket
//!   of relative error) — the bound the serving-path cross-check
//!   relies on.

use perfport_telemetry::flight::{FlightEvent, Ring};
use perfport_telemetry::histogram::Histogram;
use proptest::prelude::*;

fn ev(i: u64) -> FlightEvent {
    FlightEvent {
        ts_ns: i,
        worker: format!("w{}", i % 4),
        kind: "step".to_string(),
        detail: format!("event {i}"),
    }
}

/// Exact nearest-rank quantile over raw samples (the serving path's
/// reference definition).
fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ring_keeps_exactly_the_newest_n_in_order(
        capacity in 1usize..40,
        pushed in 0usize..200,
    ) {
        let mut ring = Ring::new(capacity);
        for i in 0..pushed as u64 {
            ring.push(ev(i));
        }
        let kept: Vec<u64> = ring.events().map(|e| e.ts_ns).collect();
        let expect_len = pushed.min(capacity);
        prop_assert_eq!(kept.len(), expect_len);
        prop_assert_eq!(ring.len(), expect_len);
        // The survivors are the newest `expect_len` events, oldest
        // first — i.e. the tail of the push sequence, order intact.
        let first = (pushed - expect_len) as u64;
        let expected: Vec<u64> = (first..pushed as u64).collect();
        prop_assert_eq!(kept, expected);
    }

    #[test]
    fn histogram_quantiles_bracket_nearest_rank(
        samples in proptest::collection::vec(1u64..2_000_000, 1..300),
        q in 0.01f64..1.0,
    ) {
        let hist = Histogram::new();
        for &s in &samples {
            hist.observe(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = nearest_rank(&sorted, q);
        let est = hist.snapshot().quantile(q);
        prop_assert!(est >= exact, "q={}: estimate {} under exact {}", q, est, exact);
        prop_assert!(est < exact.saturating_mul(2), "q={}: estimate {} ≥ 2× exact {}", q, est, exact);
    }
}
