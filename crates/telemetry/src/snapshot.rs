//! The canonical merged view of every metric shard.
//!
//! [`Snapshot`] is plain data: three sorted maps (counters, gauges,
//! histograms) keyed by metric name. It is what the bench snapshots
//! embed as their `telemetry` block, what `telemetry_report` renders
//! as Prometheus text, and — because counters and histograms are
//! monotonic — what [`Snapshot::delta_since`] subtracts to isolate one
//! run from everything else the process has done (same epoch idiom as
//! `perfport_pool::SchedTotals::delta_since`).

use std::collections::BTreeMap;

use crate::histogram::{bucket_upper_bound, HistogramSnapshot};

/// A merged, immutable view of all shards at one instant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters, summed across shards.
    pub counters: BTreeMap<String, u64>,
    /// Gauges: last value set per shard, merged by maximum (the
    /// useful aggregate for depth-style gauges such as queue depth).
    pub gauges: BTreeMap<String, u64>,
    /// Streaming histograms, bucket-wise summed across shards.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// `true` when no metric has been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Everything recorded between `earlier` and this snapshot.
    /// Counters and histograms subtract (saturating); gauges keep this
    /// snapshot's value, since a gauge is a point-in-time reading, not
    /// an accumulation. Metrics absent from `earlier` pass through
    /// whole.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, &now)| {
                let then = earlier.counters.get(name).copied().unwrap_or(0);
                (name.clone(), now.saturating_sub(then))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, now)| {
                let delta = match earlier.histograms.get(name) {
                    Some(then) => now.delta_since(then),
                    None => now.clone(),
                };
                (name.clone(), delta)
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Serializes the snapshot as a JSON object, each line prefixed
    /// with `indent`, in the same hand-rolled style as the bench
    /// snapshots. Histograms embed their exact count/sum, three
    /// headline quantile estimates, and a sparse `[bucket, count]`
    /// list so empty buckets cost nothing on disk.
    pub fn to_json(&self, indent: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{indent}{{");
        let inner = format!("{indent}  ");
        let close = |first: bool| {
            if first {
                String::new()
            } else {
                format!("\n{inner}")
            }
        };

        let _ = write!(out, "{inner}\"counters\": {{");
        let mut first = true;
        for (name, value) in &self.counters {
            let sep = if first { "" } else { "," };
            let _ = write!(out, "{sep}\n{inner}  \"{}\": {value}", escape(name));
            first = false;
        }
        let _ = writeln!(out, "{}}},", close(first));

        let _ = write!(out, "{inner}\"gauges\": {{");
        let mut first = true;
        for (name, value) in &self.gauges {
            let sep = if first { "" } else { "," };
            let _ = write!(out, "{sep}\n{inner}  \"{}\": {value}", escape(name));
            first = false;
        }
        let _ = writeln!(out, "{}}},", close(first));

        let _ = write!(out, "{inner}\"histograms\": {{");
        let mut first = true;
        for (name, hist) in &self.histograms {
            let sep = if first { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n{inner}  \"{}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": [",
                escape(name),
                hist.count,
                hist.sum,
                hist.quantile(0.50),
                hist.quantile(0.95),
                hist.quantile(0.99),
            );
            let mut first_bucket = true;
            for (i, &c) in hist.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let sep = if first_bucket { "" } else { ", " };
                let _ = write!(out, "{sep}[{i}, {c}]");
                first_bucket = false;
            }
            let _ = write!(out, "]}}");
            first = false;
        }
        let _ = writeln!(out, "{}}}", close(first));

        let _ = write!(out, "{indent}}}");
        out
    }

    /// Renders the snapshot as Prometheus text exposition (the
    /// `telemetry_report` bin's output). Metric names are sanitized to
    /// the Prometheus alphabet and prefixed `perfport_`; histograms
    /// expand into cumulative `_bucket{le="…"}` series plus exact
    /// `_sum`/`_count`.
    pub fn prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, hist) in &self.histograms {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} histogram");
            let mut cumulative = 0u64;
            for (i, &c) in hist.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_upper_bound(i)
                );
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
            let _ = writeln!(out, "{name}_sum {}", hist.sum);
            let _ = writeln!(out, "{name}_count {}", hist.count);
        }
        out
    }
}

/// Maps a metric name onto the Prometheus alphabet
/// (`[a-zA-Z0-9_:]`): every other byte becomes `_`, and the result is
/// prefixed with `perfport_` so exported series are namespaced.
pub fn prometheus_name(name: &str) -> String {
    let sanitized: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("perfport_{sanitized}")
}

/// Minimal JSON string escaping for metric names and event payloads
/// (quote, backslash, and control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.counters.insert("pool/regions".into(), 3);
        snap.gauges.insert("queue/depth".into(), 7);
        let mut h = HistogramSnapshot::empty();
        h.buckets[10] = 2;
        h.buckets[12] = 1;
        h.count = 3;
        h.sum = 9000;
        snap.histograms.insert("serve/latency_ns".into(), h);
        snap
    }

    #[test]
    fn json_round_trips_braces_and_fields() {
        let json = sample().to_json("  ");
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"pool/regions\": 3"));
        assert!(json.contains("\"queue/depth\": 7"));
        assert!(json.contains("\"serve/latency_ns\""));
        assert!(json.contains("\"buckets\": [[10, 2], [12, 1]]"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in:\n{json}"
        );
    }

    #[test]
    fn empty_snapshot_serializes_to_empty_maps() {
        let json = Snapshot::default().to_json("");
        assert!(json.contains("\"counters\": {}"));
        assert!(json.contains("\"gauges\": {}"));
        assert!(json.contains("\"histograms\": {}"));
    }

    #[test]
    fn prometheus_exposition_has_types_and_cumulative_buckets() {
        let text = sample().prometheus();
        assert!(text.contains("# TYPE perfport_pool_regions counter"));
        assert!(text.contains("perfport_pool_regions 3"));
        assert!(text.contains("# TYPE perfport_queue_depth gauge"));
        assert!(text.contains("# TYPE perfport_serve_latency_ns histogram"));
        // Bucket 10 holds 2, bucket 12 cumulative 3, then +Inf.
        assert!(text.contains("perfport_serve_latency_ns_bucket{le=\"2047\"} 2"));
        assert!(text.contains("perfport_serve_latency_ns_bucket{le=\"8191\"} 3"));
        assert!(text.contains("perfport_serve_latency_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("perfport_serve_latency_ns_sum 9000"));
        assert!(text.contains("perfport_serve_latency_ns_count 3"));
    }

    #[test]
    fn delta_since_subtracts_counters_and_keeps_gauges() {
        let earlier = sample();
        let mut later = sample();
        *later.counters.get_mut("pool/regions").unwrap() = 10;
        later.counters.insert("queue/submitted".into(), 4);
        *later.gauges.get_mut("queue/depth").unwrap() = 2;
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.counters["pool/regions"], 7);
        assert_eq!(delta.counters["queue/submitted"], 4);
        assert_eq!(delta.gauges["queue/depth"], 2);
        assert!(delta.histograms["serve/latency_ns"].is_empty());
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("plain/name"), "plain/name");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
