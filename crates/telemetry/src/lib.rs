//! Always-on runtime telemetry for the perfport workspace.
//!
//! `--trace` and `--profile` (PRs 1 and 3) are opt-in: precise, but
//! off by default, so they tell you nothing about the run that just
//! failed or the service that has been up for a week. This crate is
//! the third observability tier — cheap enough to leave on
//! unconditionally:
//!
//! - **Sharded metrics** ([`counter_add`], [`gauge_set`],
//!   [`observe`]): every thread writes its own shard with relaxed
//!   atomics and zero cross-thread traffic; [`snapshot()`] merges the
//!   shards on demand into a canonical [`Snapshot`] with summed
//!   counters, max-merged gauges, and log₂-bucketed streaming
//!   histograms ([`histogram::HistogramSnapshot`]) carrying exact
//!   count/sum.
//! - **Flight recorder** ([`event`], [`flight_dump`]): a fixed-size
//!   per-worker ring of structured runtime events that costs nothing
//!   on disk until a region poisons or a task panics, at which point
//!   the merged rings are serialized to `flight-<pid>.json` for
//!   post-mortem inspection.
//!
//! Instrumentation is **observation-only** by construction: nothing
//! recorded here feeds back into scheduling or numerics, and the
//! workspace's bitwise contracts (serial ≡ parallel, batch ≡ serial,
//! shard concat) are tested with telemetry enabled — because it is
//! always enabled.
//!
//! # Overhead budget and the `stub` feature
//!
//! CI measures the cost of the always-on default by rebuilding the
//! bench harness with this crate's `stub` feature, which replaces
//! every entry point below with an empty inline function, and gating
//! the two `host_gemm` runs against each other (≤2%). Shipping code
//! never enables `stub`; it exists purely as the A/B baseline.

#![deny(missing_docs)]

pub mod flight;
pub mod histogram;
pub mod snapshot;

#[cfg(not(feature = "stub"))]
mod metrics;

pub use flight::panic_message;
pub use histogram::HistogramSnapshot;
pub use snapshot::Snapshot;

#[cfg(not(feature = "stub"))]
pub use metrics::{counter_add, gauge_set, observe, snapshot};

/// Records a flight-recorder event on the calling thread's ring.
#[cfg(not(feature = "stub"))]
#[inline]
pub fn event(kind: &str, detail: impl Into<String>) {
    flight::event(kind, detail)
}

/// Dumps the flight recorder (first trigger only); returns the path
/// written.
#[cfg(not(feature = "stub"))]
pub fn flight_dump(trigger_kind: &str, trigger_detail: &str) -> Option<std::path::PathBuf> {
    flight::dump(trigger_kind, trigger_detail)
}

/// How this binary was built: `"on"` (the default, telemetry live) or
/// `"stub"` (every entry point compiled to a no-op). Stamped into the
/// run-provenance manifest.
#[cfg(not(feature = "stub"))]
pub fn build_mode() -> &'static str {
    "on"
}

/// Stubbed no-op entry points: same signatures, empty bodies.
#[cfg(feature = "stub")]
mod stubbed {
    use crate::snapshot::Snapshot;

    /// No-op in a `stub` build.
    #[inline]
    pub fn counter_add(_name: &str, _delta: u64) {}

    /// No-op in a `stub` build.
    #[inline]
    pub fn gauge_set(_name: &str, _value: u64) {}

    /// No-op in a `stub` build.
    #[inline]
    pub fn observe(_name: &str, _value: u64) {}

    /// Always the empty snapshot in a `stub` build.
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }

    /// No-op in a `stub` build.
    #[inline]
    pub fn event(_kind: &str, _detail: impl Into<String>) {}

    /// Never dumps in a `stub` build.
    pub fn flight_dump(_trigger_kind: &str, _trigger_detail: &str) -> Option<std::path::PathBuf> {
        None
    }

    /// How this binary was built (`"stub"` here).
    pub fn build_mode() -> &'static str {
        "stub"
    }
}

#[cfg(feature = "stub")]
pub use stubbed::{build_mode, counter_add, event, flight_dump, gauge_set, observe, snapshot};
