//! The flight recorder: per-worker ring buffers of runtime events,
//! dumped to disk when something goes wrong.
//!
//! Every thread that records an event owns a fixed-size [`Ring`]
//! (capacity [`DEFAULT_RING_CAPACITY`]) holding the newest structured
//! events — region begin/end, graph task run/skip, queue
//! submit/drain, scheduler decisions. Recording is a push into a
//! thread-owned ring behind an uncontended mutex; memory is bounded
//! no matter how long the process runs. The rings are invisible in
//! steady state: nothing is ever written to disk until a pool region
//! poisons or a task panics, at which point [`dump`] merges every
//! ring in timestamp order, appends the triggering event **last**,
//! and serializes the lot to `flight-<pid>.json` (in
//! `PERFPORT_FLIGHT_DIR`, or the working directory) for post-mortem
//! inspection.
//!
//! Only the first trigger in a process dumps; later poisons see the
//! guard already taken and skip, so the file on disk always describes
//! the *first* failure.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::snapshot::escape;

/// Events kept per worker thread before the oldest falls off.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Schema tag stamped into every dump.
pub const FLIGHT_SCHEMA: &str = "perfport-flight/1";

/// One structured runtime event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the process-wide telemetry epoch (the first
    /// event ever recorded).
    pub ts_ns: u64,
    /// Label of the thread that recorded the event.
    pub worker: String,
    /// Event kind, e.g. `region_begin`, `task_panic`, `queue_poison`.
    pub kind: String,
    /// Free-form detail payload.
    pub detail: String,
}

impl FlightEvent {
    fn to_json(&self) -> String {
        format!(
            "{{\"ts_ns\": {}, \"worker\": \"{}\", \"kind\": \"{}\", \"detail\": \"{}\"}}",
            self.ts_ns,
            escape(&self.worker),
            escape(&self.kind),
            escape(&self.detail)
        )
    }
}

/// A fixed-capacity event ring: pushing beyond capacity evicts the
/// oldest entry, so the ring always holds the newest `capacity`
/// events in recording order.
#[derive(Debug)]
pub struct Ring {
    capacity: usize,
    events: VecDeque<FlightEvent>,
}

impl Ring {
    /// An empty ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Ring {
        Ring {
            capacity: capacity.max(1),
            events: VecDeque::new(),
        }
    }

    /// Appends `event`, evicting the oldest entry when full.
    pub fn push(&mut self, event: FlightEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Maximum number of events the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The process-wide timestamp origin, fixed at the first event.
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// All per-thread rings; locked only at thread registration and dump.
static RINGS: OnceLock<Mutex<Vec<Arc<Mutex<Ring>>>>> = OnceLock::new();

fn rings() -> &'static Mutex<Vec<Arc<Mutex<Ring>>>> {
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Monotonic label source for unnamed threads.
static WORKER_SEQ: AtomicU64 = AtomicU64::new(0);

struct LocalRing {
    worker: String,
    ring: Arc<Mutex<Ring>>,
}

impl LocalRing {
    fn register() -> LocalRing {
        let worker = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{}", WORKER_SEQ.fetch_add(1, Ordering::Relaxed)));
        let ring = Arc::new(Mutex::new(Ring::new(DEFAULT_RING_CAPACITY)));
        rings()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&ring));
        LocalRing { worker, ring }
    }
}

thread_local! {
    static LOCAL_RING: LocalRing = LocalRing::register();
}

/// Records one event into the calling thread's ring.
#[inline]
pub fn event(kind: &str, detail: impl Into<String>) {
    let ts_ns = now_ns();
    LOCAL_RING.with(|l| {
        l.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(FlightEvent {
                ts_ns,
                worker: l.worker.clone(),
                kind: kind.to_string(),
                detail: detail.into(),
            });
    });
}

/// Best-effort extraction of a panic payload's message, for poison
/// events and dump triggers (`&str` and `String` payloads; anything
/// else gets a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Whether [`dump`] has already fired in this process.
static DUMPED: AtomicBool = AtomicBool::new(false);

/// Serializes every ring to `flight-<pid>.json` with the triggering
/// event appended last, and returns the path written. Only the first
/// call in a process dumps (the file describes the first failure);
/// later calls — and calls where the write fails — return `None`.
///
/// The destination directory is `PERFPORT_FLIGHT_DIR` when set, else
/// the current working directory.
pub fn dump(trigger_kind: &str, trigger_detail: &str) -> Option<PathBuf> {
    if DUMPED.swap(true, Ordering::SeqCst) {
        return None;
    }
    let trigger = FlightEvent {
        ts_ns: now_ns(),
        worker: LOCAL_RING.with(|l| l.worker.clone()),
        kind: trigger_kind.to_string(),
        detail: trigger_detail.to_string(),
    };

    let mut merged: Vec<FlightEvent> = Vec::new();
    {
        let rings = rings().lock().unwrap_or_else(|e| e.into_inner());
        for ring in rings.iter() {
            merged.extend(
                ring.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .events()
                    .cloned(),
            );
        }
    }
    merged.sort_by_key(|e| e.ts_ns);
    merged.push(trigger.clone());

    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!("  \"schema\": \"{FLIGHT_SCHEMA}\",\n"));
    body.push_str(&format!("  \"pid\": {},\n", std::process::id()));
    body.push_str(&format!("  \"trigger\": {},\n", trigger.to_json()));
    body.push_str("  \"events\": [\n");
    for (i, ev) in merged.iter().enumerate() {
        let sep = if i + 1 == merged.len() { "" } else { "," };
        body.push_str(&format!("    {}{sep}\n", ev.to_json()));
    }
    body.push_str("  ]\n}\n");

    let dir = std::env::var_os("PERFPORT_FLIGHT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let path = dir.join(format!("flight-{}.json", std::process::id()));
    match std::fs::write(&path, body) {
        Ok(()) => {
            eprintln!(
                "perfport-telemetry: flight recorder dumped {} events to {}",
                merged.len(),
                path.display()
            );
            Some(path)
        }
        Err(err) => {
            eprintln!(
                "perfport-telemetry: failed to write flight recording to {}: {err}",
                path.display()
            );
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_newest_in_order() {
        let mut ring = Ring::new(3);
        for i in 0..5u64 {
            ring.push(FlightEvent {
                ts_ns: i,
                worker: "t".into(),
                kind: "k".into(),
                detail: i.to_string(),
            });
        }
        let kept: Vec<u64> = ring.events().map(|e| e.ts_ns).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn ring_below_capacity_keeps_everything() {
        let mut ring = Ring::new(8);
        for i in 0..4u64 {
            ring.push(FlightEvent {
                ts_ns: i,
                worker: "t".into(),
                kind: "k".into(),
                detail: String::new(),
            });
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.capacity(), 8);
    }

    #[test]
    fn event_json_escapes_payload() {
        let ev = FlightEvent {
            ts_ns: 1,
            worker: "w".into(),
            kind: "task_panic".into(),
            detail: "said \"boom\"".into(),
        };
        let json = ev.to_json();
        assert!(json.contains("\\\"boom\\\""));
        assert!(json.contains("\"ts_ns\": 1"));
    }
}
