//! Per-thread metric shards merged on demand.
//!
//! Every thread that records a metric owns a **shard**: a private set
//! of counters, gauges, and histograms registered once in a global
//! list. The hot path — [`counter_add`], [`gauge_set`], [`observe`] —
//! is a thread-local handle-cache lookup plus one relaxed atomic
//! update; no lock is taken and no other thread's cache line is
//! written, which is what makes it safe to leave enabled inside the
//! pool's region and task paths. Locks exist only on the cold edges:
//! the first time a thread touches a given metric name (shard map
//! insert) and whenever [`snapshot`] merges all shards into one
//! [`Snapshot`].
//!
//! Shards are append-only for the process lifetime: a thread that
//! exits leaves its totals behind, so counters and histograms stay
//! monotonic and snapshot deltas remain meaningful.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::Histogram;
use crate::snapshot::Snapshot;

/// One thread's private slice of the metric space.
#[derive(Default)]
struct Shard {
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<HashMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
}

/// All shards ever registered. Guarded by a mutex that is only taken
/// at thread registration and snapshot time.
static SHARDS: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();

fn shards() -> &'static Mutex<Vec<Arc<Shard>>> {
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Thread-local handle caches: once a thread has resolved a metric
/// name to its `Arc`, later updates touch no map but this one.
struct Local {
    shard: Arc<Shard>,
    counters: RefCell<HashMap<String, Arc<AtomicU64>>>,
    gauges: RefCell<HashMap<String, Arc<AtomicU64>>>,
    histograms: RefCell<HashMap<String, Arc<Histogram>>>,
}

impl Local {
    fn register() -> Local {
        let shard = Arc::new(Shard::default());
        shards()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&shard));
        Local {
            shard,
            counters: RefCell::new(HashMap::new()),
            gauges: RefCell::new(HashMap::new()),
            histograms: RefCell::new(HashMap::new()),
        }
    }
}

thread_local! {
    static LOCAL: Local = Local::register();
}

fn cached<T>(
    cache: &RefCell<HashMap<String, Arc<T>>>,
    registry: &Mutex<HashMap<String, Arc<T>>>,
    name: &str,
    init: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(handle) = cache.borrow().get(name) {
        return Arc::clone(handle);
    }
    let handle = {
        let mut map = registry.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(init())),
        )
    };
    cache
        .borrow_mut()
        .insert(name.to_string(), Arc::clone(&handle));
    handle
}

/// Adds `delta` to the calling thread's shard of counter `name`.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    LOCAL.with(|l| {
        cached(&l.counters, &l.shard.counters, name, || AtomicU64::new(0))
            .fetch_add(delta, Ordering::Relaxed);
    });
}

/// Sets the calling thread's shard of gauge `name` to `value`.
/// Shards merge by maximum at snapshot time.
#[inline]
pub fn gauge_set(name: &str, value: u64) {
    LOCAL.with(|l| {
        cached(&l.gauges, &l.shard.gauges, name, || AtomicU64::new(0))
            .store(value, Ordering::Relaxed);
    });
}

/// Records `value` into the calling thread's shard of histogram
/// `name`.
#[inline]
pub fn observe(name: &str, value: u64) {
    LOCAL.with(|l| {
        cached(&l.histograms, &l.shard.histograms, name, Histogram::new).observe(value);
    });
}

/// Merges every shard into one canonical [`Snapshot`]: counters sum,
/// gauges take the per-shard maximum, histograms add bucket-wise.
pub fn snapshot() -> Snapshot {
    let mut snap = Snapshot::default();
    let shards = shards().lock().unwrap_or_else(|e| e.into_inner());
    for shard in shards.iter() {
        for (name, counter) in shard
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            *snap.counters.entry(name.clone()).or_insert(0) += counter.load(Ordering::Relaxed);
        }
        for (name, gauge) in shard
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            let value = gauge.load(Ordering::Relaxed);
            let slot = snap.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(value);
        }
        for (name, hist) in shard
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            snap.histograms
                .entry(name.clone())
                .or_default()
                .merge_from(&hist.snapshot());
        }
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    // Metric names namespaced per test: the registry is process-global
    // and the test harness runs tests concurrently in one process.

    #[test]
    fn counters_sum_across_threads() {
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        counter_add("test_metrics/ctr", 2);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(snapshot().counters["test_metrics/ctr"], 800);
    }

    #[test]
    fn gauges_merge_by_max() {
        let threads: Vec<_> = [3u64, 9, 5]
            .into_iter()
            .map(|v| std::thread::spawn(move || gauge_set("test_metrics/gauge", v)))
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(snapshot().gauges["test_metrics/gauge"], 9);
    }

    #[test]
    fn histograms_merge_and_keep_exact_totals() {
        let threads: Vec<_> = (0..3)
            .map(|i: u64| {
                std::thread::spawn(move || {
                    for v in 0..50u64 {
                        observe("test_metrics/hist", i * 1000 + v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let h = &snapshot().histograms["test_metrics/hist"];
        assert_eq!(h.count, 150);
        let expected: u64 = (0..3u64)
            .flat_map(|i| (0..50u64).map(move |v| i * 1000 + v))
            .sum();
        assert_eq!(h.sum, expected);
    }

    #[test]
    fn delta_against_live_epoch_only_sees_new_work() {
        counter_add("test_metrics/epoch_ctr", 5);
        let epoch = snapshot();
        counter_add("test_metrics/epoch_ctr", 7);
        let delta = snapshot().delta_since(&epoch);
        assert_eq!(delta.counters["test_metrics/epoch_ctr"], 7);
    }
}
