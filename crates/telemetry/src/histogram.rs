//! Log₂-bucketed streaming histograms.
//!
//! A [`Histogram`] folds a stream of `u64` samples (latencies and
//! durations in nanoseconds, sizes in bytes) into 64 power-of-two
//! buckets plus an **exact** total count and sum. Memory is O(1) no
//! matter how many samples arrive — this is what lets the serving path
//! report tail percentiles for millions of requests without holding a
//! sorted `Vec<u64>` — and recording is one relaxed atomic increment
//! per sample, so the metric shards can share them
//! without locks on the hot path.
//!
//! The price is resolution: a quantile read back from the buckets is
//! exact only up to its bucket, i.e. within one factor of two of the
//! true nearest-rank value (see [`HistogramSnapshot::quantile`] for
//! the precise bound). The serving harness keeps nearest-rank over the
//! raw latencies as the reference and cross-checks the histogram
//! against it in tests.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: one per possible bit position of a `u64`.
pub const BUCKETS: usize = 64;

/// The bucket a sample lands in: `floor(log2(value))`, with zero
/// mapped into bucket 0 alongside 1. Bucket `i` (for `i ≥ 1`) covers
/// `[2^i, 2^(i+1))`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// The largest value bucket `index` can hold (`2^(index+1) - 1`;
/// saturates to `u64::MAX` for the top bucket). Quantile estimates
/// report this bound, so they never under-state a tail.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index >= 63 {
        u64::MAX
    } else {
        (1u64 << (index + 1)) - 1
    }
}

/// A concurrent log₂ histogram. All updates are relaxed atomics; the
/// struct is wait-free for writers and is only ever read via
/// [`Histogram::snapshot`], which tolerates concurrent writes (a
/// snapshot is some valid interleaving point, not a seqlock).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample: one increment in its log₂ bucket plus the
    /// exact count/sum totals.
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Copies the current totals into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a histogram's buckets and exact totals.
/// Snapshots from different shards merge by plain addition
/// ([`HistogramSnapshot::merge_from`]), and because every field is
/// monotonic, two snapshots of the same process subtract into a
/// well-defined delta ([`HistogramSnapshot::delta_since`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; always `BUCKETS` entries.
    pub buckets: Vec<u64>,
    /// Exact number of samples observed.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Adds another snapshot's buckets and totals into this one (the
    /// shard-merge operation).
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The samples recorded between `earlier` and this snapshot.
    /// Saturating per field, so a mismatched pair degrades to zeros
    /// instead of wrapping.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .zip(&earlier.buckets)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Exact arithmetic mean of the stream (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// A nearest-rank quantile estimate from the buckets, `q` in
    /// `[0, 1]`. Returns the upper bound of the bucket holding the
    /// rank-`⌈q·count⌉` sample, so for a true nearest-rank value `v`
    /// the estimate `e` satisfies `v ≤ e < 2·v` (one log₂ bucket of
    /// relative error, never an under-estimate). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(7), 2);
        assert_eq!(bucket_index(8), 3);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn upper_bounds_close_each_bucket() {
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_upper_bound(i)), i);
            if i < 63 {
                assert_eq!(bucket_index(bucket_upper_bound(i) + 1), i + 1);
            }
        }
    }

    #[test]
    fn count_and_sum_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 17, 1024, 999_999] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, [0u64, 1, 17, 1024, 999_999].iter().sum());
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn quantile_brackets_nearest_rank() {
        let mut values: Vec<u64> = (1..=1000u64).map(|i| i * 37 + 5).collect();
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        for q in [0.5, 0.95, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = s.quantile(q);
            assert!(est >= exact, "q={q}: est {est} under-states exact {exact}");
            assert!(est < exact * 2, "q={q}: est {est} ≥ 2× exact {exact}");
        }
    }

    #[test]
    fn merge_equals_single_stream() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..500u64 {
            let target = if v % 3 == 0 { &a } else { &b };
            target.observe(v * v);
            all.observe(v * v);
        }
        let mut merged = a.snapshot();
        merged.merge_from(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn delta_since_isolates_new_samples() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.observe(v);
        }
        let epoch = h.snapshot();
        for v in [1000u64, 2000] {
            h.observe(v);
        }
        let delta = h.snapshot().delta_since(&epoch);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 3000);
        let fresh = Histogram::new();
        fresh.observe(1000);
        fresh.observe(2000);
        assert_eq!(delta, fresh.snapshot());
    }
}
