//! The experiment runner: verify functionally, model timing, apply the
//! paper's measurement protocol.

use crate::counters::{edge_divergence_rate, gemm_gpu_profile, TrafficCoefficients};
use crate::experiment::{Experiment, ExperimentResult, RunError, SizePoint};
use crate::noise::NoiseSource;
use perfport_gemm::{
    gpu_gemm_mixed, par_gemm, verify_gemm, CpuVariant, GpuVariant, Layout, Matrix, Scalar,
};
use perfport_gpusim::{occupancy, Dim3, Gpu, LaunchStats};
use perfport_half::F16;
use perfport_machines::{
    estimate_cpu_gemm, estimate_gpu_kernel, CpuExecution, GemmShape, GpuExecution, Precision,
};
use perfport_models::{
    codegen_efficiency, cpu_profile, gpu_profile, size_penalty, support, ProgModel, Support,
};
use perfport_pool::{PinPolicy, Schedule, ThreadPool};

/// Matrix size used for CPU functional verification.
const CPU_VERIFY_N: usize = 48;
/// Matrix size used for GPU functional verification and counter
/// calibration (a multiple of the 32×32 block).
const GPU_VERIFY_N: usize = 96;
/// The paper's GPU thread-block shape.
const GPU_BLOCK: (u32, u32) = (32, 32);

/// Runs one experiment end to end.
///
/// ```
/// use perfport_core::{run_experiment, Experiment};
/// use perfport_machines::Precision;
/// use perfport_models::{Arch, ProgModel};
///
/// let exp = Experiment::new(Arch::A100, ProgModel::Cuda, Precision::Double, vec![4096]);
/// let result = run_experiment(&exp).unwrap();
/// assert!(result.at(4096).unwrap().gflops > 0.0);
/// assert!(result.verification_rel_err < 1e-10);
/// ```
///
/// # Errors
///
/// [`RunError::Unsupported`] when the support matrix rules the
/// combination out; [`RunError::VerificationFailed`] if the functional
/// kernel does not match the `f64` reference.
pub fn run_experiment(exp: &Experiment) -> Result<ExperimentResult, RunError> {
    let mut sp = perfport_trace::span("runner", "experiment");
    if sp.is_recording() {
        sp.arg("arch", format!("{:?}", exp.arch));
        sp.arg("model", format!("{:?}", exp.model));
        sp.arg("precision", format!("{:?}", exp.precision));
        sp.arg("sizes", exp.sizes.len());
        sp.arg("reps", exp.reps);
    }
    let sup = support(exp.model, exp.arch, exp.precision);
    let note = match sup {
        Support::Unsupported(reason) => {
            return Err(RunError::Unsupported {
                model: exp.model,
                arch: exp.arch,
                reason: reason.to_string(),
            })
        }
        Support::Partial(why) => Some(why.to_string()),
        Support::Supported => None,
    };
    if exp.arch.is_gpu() {
        run_gpu(exp, note)
    } else {
        run_cpu(exp, note)
    }
}

/// Whether this combination uses the paper's ones-filled-input fallback
/// (no `float16` RNG in NumPy).
fn uses_ones_inputs(exp: &Experiment) -> bool {
    exp.precision == Precision::Half
        && matches!(exp.model, ProgModel::NumbaParallel | ProgModel::NumbaCuda)
}

/// The CPU kernel variant a programming model maps to.
fn cpu_variant(model: ProgModel) -> CpuVariant {
    match model {
        ProgModel::COpenMp => CpuVariant::OpenMpC,
        ProgModel::KokkosOpenMp => CpuVariant::KokkosLambda,
        ProgModel::JuliaThreads => CpuVariant::JuliaThreads,
        ProgModel::NumbaParallel => CpuVariant::NumbaPrange,
        other => panic!("{other} is not a CPU model"),
    }
}

/// The GPU kernel variant a programming model maps to.
fn gpu_variant(model: ProgModel) -> GpuVariant {
    match model {
        ProgModel::Cuda => GpuVariant::Cuda,
        ProgModel::Hip => GpuVariant::Hip,
        ProgModel::KokkosCuda => GpuVariant::KokkosCuda,
        ProgModel::KokkosHip => GpuVariant::KokkosHip,
        ProgModel::JuliaCudaJl => GpuVariant::JuliaCudaJl,
        ProgModel::JuliaAmdGpu => GpuVariant::JuliaAmdGpu,
        ProgModel::NumbaCuda => GpuVariant::NumbaCuda,
        other => panic!("{other} is not a GPU model"),
    }
}

/// The noise-stream label for one grid point.
///
/// The label includes the matrix size, so every `(arch, model,
/// precision, n)` point draws from its *own* seeded stream. That makes
/// points order-independent: a size swept inside a multi-size experiment
/// produces bitwise the same [`SizePoint`] as a single-size experiment
/// for that `n`, which is what lets the sharded study runner
/// ([`crate::shard`]) partition the grid arbitrarily and still emit
/// byte-identical output.
fn point_label(exp: &Experiment, n: usize) -> String {
    format!("{:?}/{:?}/{:?}/n{}", exp.arch, exp.model, exp.precision, n)
}

/// The memo key for one functional-verification run: everything the run
/// depends on. Verification is deterministic, so caching by this key is
/// purely an execution-cost optimisation — the sharded study runner
/// ([`crate::shard`]) executes each grid point as its own single-size
/// experiment, which would otherwise re-verify one curve once per size.
fn verify_key<T: 'static>(variant: &dyn std::fmt::Debug, exp: &Experiment) -> String {
    format!(
        "{variant:?}/{}/{}/{}",
        std::any::type_name::<T>(),
        exp.seed,
        uses_ones_inputs(exp)
    )
}

/// One verification outcome, computed at most once per process: the
/// map hands out `Arc<OnceLock>` cells under a brief lock, and
/// `OnceLock::get_or_init` blocks concurrent initialisers, so parallel
/// study jobs hitting the same curve never verify it redundantly
/// (distinct curves still verify in parallel).
type VerifyCell<V> = std::sync::Arc<std::sync::OnceLock<Result<V, RunError>>>;
type VerifyMemo<V> = std::sync::Mutex<Option<std::collections::HashMap<String, VerifyCell<V>>>>;

fn memoized<V: Clone>(
    memo: &'static VerifyMemo<V>,
    key: String,
    compute: impl FnOnce() -> Result<V, RunError>,
) -> Result<V, RunError> {
    let cell = memo
        .lock()
        .unwrap()
        .get_or_insert_with(Default::default)
        .entry(key)
        .or_default()
        .clone();
    cell.get_or_init(compute).clone()
}

/// Memoised CPU verification results (worst relative error).
static CPU_VERIFY_MEMO: VerifyMemo<f64> = std::sync::Mutex::new(None);

/// Memoised GPU verification results (worst relative error plus the
/// launch statistics the timing model scales from).
type GpuVerify = (f64, LaunchStats);
static GPU_VERIFY_MEMO: VerifyMemo<GpuVerify> = std::sync::Mutex::new(None);

// ---------------------------------------------------------------- CPU --

fn run_cpu(exp: &Experiment, note: Option<String>) -> Result<ExperimentResult, RunError> {
    let machine = exp.arch.cpu_machine().expect("CPU arch");
    let profile = cpu_profile(exp.model);
    let variant = cpu_variant(exp.model);

    let rel_err = match exp.precision {
        Precision::Double => verify_cpu::<f64>(variant, exp)?,
        Precision::Single => verify_cpu::<f32>(variant, exp)?,
        Precision::Half => verify_cpu::<F16>(variant, exp)?,
    };

    let threads = machine.total_cores();
    let pinned = profile.pin_policy != PinPolicy::Unpinned;
    let cal = codegen_efficiency(exp.model, exp.arch, exp.precision);

    let mut points = Vec::with_capacity(exp.sizes.len());
    for &n in &exp.sizes {
        let mut noise = NoiseSource::new(exp.seed, &point_label(exp, n));
        let shape = GemmShape::square(n);
        // Static-block imbalance: the last round of rows may not fill
        // the team.
        let imbalance = if n == 0 {
            1.0
        } else {
            (n.div_ceil(threads) * threads) as f64 / n as f64
        };
        let exec = CpuExecution {
            threads,
            pinned,
            codegen_efficiency: cal.value * size_penalty(exp.model, exp.arch, exp.precision, n),
            region_overhead_us: machine.fork_join_us * profile.region_overhead_multiplier,
            imbalance: imbalance.max(1.0),
        };
        let est = estimate_cpu_gemm(&machine, exp.precision, &shape, &exec);
        points.push(size_point_traced(
            n,
            shape.flops(),
            est.seconds,
            est.bound,
            exp.reps,
            &mut noise,
        ));
    }

    let warmup = profile.jit_warmup_s + points.first().map_or(0.0, |p| p.seconds);
    record_warmup(warmup, profile.jit_warmup_s);
    Ok(ExperimentResult {
        experiment: exp.clone(),
        points,
        verification_rel_err: rel_err,
        warmup_excluded_s: warmup,
        support_note: note,
    })
}

fn verify_cpu<T: Scalar>(variant: CpuVariant, exp: &Experiment) -> Result<f64, RunError> {
    let key = verify_key::<T>(&variant, exp);
    // The span stays outside the memo so every experiment traces its
    // verify phase, memo hit or not.
    let n = CPU_VERIFY_N;
    let mut sp = perfport_trace::span("runner", "verify");
    sp.arg("n", n);
    sp.arg("variant", format!("{variant:?}"));
    let mut computed = false;
    let rel_err = memoized(&CPU_VERIFY_MEMO, key, || {
        computed = true;
        let layout = variant.layout();
        let (a, b) = verification_inputs::<T>(exp, n, layout);
        let mut c = Matrix::<T>::zeros(n, n, layout);
        let host = std::thread::available_parallelism().map_or(2, |p| p.get().min(4));
        let pool = ThreadPool::new(host);
        par_gemm(&pool, variant, &a, &b, &mut c, Schedule::StaticBlock);
        verify_gemm(&a, &b, &c).map_err(RunError::VerificationFailed)
    })?;
    sp.arg("cached", !computed);
    sp.arg("rel_err", rel_err);
    Ok(rel_err)
}

fn verification_inputs<T: Scalar>(
    exp: &Experiment,
    n: usize,
    layout: Layout,
) -> (Matrix<T>, Matrix<T>) {
    if uses_ones_inputs(exp) {
        (Matrix::ones(n, n, layout), Matrix::ones(n, n, layout))
    } else {
        (
            Matrix::random(n, n, layout, exp.seed),
            Matrix::random(n, n, layout, exp.seed + 1),
        )
    }
}

// ---------------------------------------------------------------- GPU --

fn run_gpu(exp: &Experiment, note: Option<String>) -> Result<ExperimentResult, RunError> {
    let machine = exp.arch.gpu_machine().expect("GPU arch");
    let profile = gpu_profile(exp.model);
    let variant = gpu_variant(exp.model);

    let (rel_err, stats) = match exp.precision {
        Precision::Double => verify_gpu::<f64, f64>(variant, exp)?,
        Precision::Single => verify_gpu::<f32, f32>(variant, exp)?,
        // Fig. 1c: half inputs, single-precision accumulation/output.
        Precision::Half => verify_gpu::<F16, f32>(variant, exp)?,
    };
    let coeffs = TrafficCoefficients::from_stats(&stats);

    // 32×32 blocks, no shared memory: occupancy comes out of the classic
    // limits calculation.
    let occ = occupancy(machine.class, GPU_BLOCK.0 * GPU_BLOCK.1, 0);
    let cal = codegen_efficiency(exp.model, exp.arch, exp.precision);
    // The FP16 kernels convert to FP32 for the FMA (Fig. 1c), so the
    // compute/L1 ceilings are the single-precision ones.
    let ceiling_precision = match exp.precision {
        Precision::Half => Precision::Single,
        p => p,
    };

    let mut points = Vec::with_capacity(exp.sizes.len());
    for &n in &exp.sizes {
        let mut noise = NoiseSource::new(exp.seed, &point_label(exp, n));
        let shape = GemmShape::square(n);
        let prof = gemm_gpu_profile(&shape, GPU_BLOCK, exp.precision.bytes(), &coeffs);
        let grid_blocks = (shape.n.div_ceil(GPU_BLOCK.0 as usize)
            * shape.m.div_ceil(GPU_BLOCK.1 as usize)) as u64;
        let exec = GpuExecution {
            codegen_efficiency: cal.value * size_penalty(exp.model, exp.arch, exp.precision, n),
            occupancy: occ.fraction,
            divergence_rate: edge_divergence_rate(&shape, GPU_BLOCK),
            launch_overhead_us: machine.launch_latency_us * profile.launch_overhead_multiplier,
            grid_blocks,
            blocks_per_sm: occ.blocks_per_sm,
        };
        let est = estimate_gpu_kernel(&machine, ceiling_precision, &prof, &exec);
        points.push(size_point_traced(
            n,
            shape.flops(),
            est.seconds,
            est.bound,
            exp.reps,
            &mut noise,
        ));
    }

    let warmup = profile.jit_warmup_s + points.first().map_or(0.0, |p| p.seconds);
    record_warmup(warmup, profile.jit_warmup_s);
    Ok(ExperimentResult {
        experiment: exp.clone(),
        points,
        verification_rel_err: rel_err,
        warmup_excluded_s: warmup,
        support_note: note,
    })
}

fn verify_gpu<I: Scalar, O: Scalar>(
    variant: GpuVariant,
    exp: &Experiment,
) -> Result<(f64, LaunchStats), RunError> {
    let key = verify_key::<I>(&variant, exp);
    // As in [`verify_cpu`], the span stays outside the memo so every
    // experiment traces its verify phase, memo hit or not.
    let n = GPU_VERIFY_N;
    let mut sp = perfport_trace::span("runner", "verify");
    sp.arg("n", n);
    sp.arg("variant", format!("{variant:?}"));
    let mut computed = false;
    let (worst, stats) = memoized(&GPU_VERIFY_MEMO, key, || {
        computed = true;
        let (a, b) = verification_inputs::<I>(exp, n, Layout::RowMajor);
        let gpu = Gpu::new(variant.device_class());
        let (c, stats) =
            gpu_gemm_mixed::<I, O>(&gpu, variant, &a, &b, Dim3::d2(GPU_BLOCK.0, GPU_BLOCK.1))
                .map_err(|e| RunError::VerificationFailed(e.to_string()))?;

        // Verify against the f64 reference at the *output* precision's
        // tolerance.
        let reference = perfport_gemm::gemm_reference_f64(&a, &b);
        let c_row = c.to_layout(Layout::RowMajor);
        let tol = perfport_gemm::Tolerance::for_gemm::<I>(n);
        let mut worst = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                let got = c_row[(i, j)].to_f64();
                let want = reference[(i, j)];
                if !tol.accepts(got, want) {
                    return Err(RunError::VerificationFailed(format!(
                        "{variant}: C[{i},{j}] = {got}, reference {want}"
                    )));
                }
                let rel = if want == 0.0 {
                    (got - want).abs()
                } else {
                    ((got - want) / want).abs()
                };
                worst = worst.max(rel);
            }
        }
        Ok((worst, stats))
    })?;
    sp.arg("cached", !computed);
    sp.arg("rel_err", worst);
    Ok((worst, stats))
}

// ------------------------------------------------------------- shared --

/// Runs [`timed_point`] inside a `runner:size_point` span carrying the
/// point's modelled outcome. The noise source is drawn from identically
/// whether tracing is on or off, so results stay bit-identical.
fn size_point_traced(
    n: usize,
    flops: f64,
    modelled_seconds: f64,
    bound: perfport_machines::Bound,
    reps: usize,
    noise: &mut NoiseSource,
) -> SizePoint {
    let mut sp = perfport_trace::span("runner", "size_point");
    let point = timed_point(n, flops, modelled_seconds, bound, reps, noise);
    if sp.is_recording() {
        sp.arg("n", n);
        sp.arg("reps", reps.max(1));
        sp.arg("gflops", point.gflops);
        sp.arg("modelled_seconds", modelled_seconds);
        sp.arg("bound", format!("{:?}", bound));
        perfport_trace::counter("runner", "gflops", point.gflops);
        for s in &point.samples {
            perfport_trace::counter("runner", "rep_gflops", *s);
        }
    }
    point
}

/// Marks the warm-up time the measurement protocol excludes (first
/// iteration + JIT where applicable) — the evidence behind the paper's
/// "first-run excluded" methodology.
fn record_warmup(total_s: f64, jit_s: f64) {
    if perfport_trace::enabled() {
        perfport_trace::instant(
            "runner",
            "warmup_excluded",
            vec![
                ("seconds".to_string(), total_s.into()),
                ("jit_seconds".to_string(), jit_s.into()),
            ],
        );
    }
}

fn timed_point(
    n: usize,
    flops: f64,
    modelled_seconds: f64,
    bound: perfport_machines::Bound,
    reps: usize,
    noise: &mut NoiseSource,
) -> SizePoint {
    let reps = reps.max(1);
    let mut total = 0.0;
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let rep_seconds = modelled_seconds * noise.factor();
        total += rep_seconds;
        samples.push(if rep_seconds > 0.0 {
            flops / rep_seconds / 1e9
        } else {
            0.0
        });
    }
    let seconds = total / reps as f64;
    SizePoint {
        n,
        gflops: if seconds > 0.0 {
            flops / seconds / 1e9
        } else {
            0.0
        },
        seconds,
        bound,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfport_models::Arch;

    fn quick(arch: Arch, model: ProgModel, precision: Precision) -> Experiment {
        Experiment::new(arch, model, precision, vec![1024, 4096])
    }

    #[test]
    fn every_supported_combination_runs_and_verifies() {
        for arch in Arch::ALL {
            for model in ProgModel::candidates(arch) {
                for precision in Precision::ALL {
                    let exp = quick(arch, model, precision);
                    match run_experiment(&exp) {
                        Ok(r) => {
                            assert_eq!(r.points.len(), 2, "{model} on {arch} {precision}");
                            assert!(
                                r.points.iter().all(|p| p.gflops > 0.0),
                                "{model} on {arch} {precision}"
                            );
                            assert!(
                                r.verification_rel_err < 0.05,
                                "{model} on {arch} {precision}: err {}",
                                r.verification_rel_err
                            );
                        }
                        Err(RunError::Unsupported { .. }) => {
                            assert!(
                                !support(model, arch, precision).runs(),
                                "{model} on {arch} {precision} errored but is supported"
                            );
                        }
                        Err(e) => panic!("{model} on {arch} {precision}: {e}"),
                    }
                }
            }
        }
    }

    #[test]
    fn size_points_are_independent_of_the_sweep_partition() {
        // Each (arch, model, precision, n) point draws its own noise
        // stream, so a size swept inside a multi-size experiment is
        // bitwise identical to a single-size experiment at that n — the
        // property the sharded study runner rests on.
        for (arch, model) in [
            (Arch::Mi250x, ProgModel::KokkosHip),
            (Arch::Epyc7A53, ProgModel::JuliaThreads),
        ] {
            let full = run_experiment(&quick(arch, model, Precision::Single)).unwrap();
            for n in [1024usize, 4096] {
                let solo =
                    run_experiment(&Experiment::new(arch, model, Precision::Single, vec![n]))
                        .unwrap();
                let (a, b) = (full.at(n).unwrap(), solo.at(n).unwrap());
                assert_eq!(a.gflops.to_bits(), b.gflops.to_bits());
                assert_eq!(a.seconds.to_bits(), b.seconds.to_bits());
                assert_eq!(a.samples, b.samples);
                assert_eq!(full.verification_rel_err, solo.verification_rel_err);
            }
        }
    }

    #[test]
    fn results_are_deterministic() {
        let exp = quick(Arch::A100, ProgModel::Cuda, Precision::Double);
        let a = run_experiment(&exp).unwrap();
        let b = run_experiment(&exp).unwrap();
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.gflops, y.gflops);
        }
    }

    #[test]
    fn different_seeds_jitter_results_slightly() {
        let mut exp = quick(Arch::A100, ProgModel::Cuda, Precision::Double);
        let a = run_experiment(&exp).unwrap();
        exp.seed = 999;
        let b = run_experiment(&exp).unwrap();
        let (x, y) = (a.points[0].gflops, b.points[0].gflops);
        assert_ne!(x, y);
        assert!((x - y).abs() / x < 0.1, "noise too large: {x} vs {y}");
    }

    #[test]
    fn numba_on_amd_gpu_is_rejected() {
        let exp = quick(Arch::Mi250x, ProgModel::NumbaCuda, Precision::Double);
        match run_experiment(&exp) {
            Err(RunError::Unsupported { reason, .. }) => {
                assert!(reason.contains("deprecated"));
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    #[test]
    fn vendor_models_beat_their_portable_counterparts_fp64() {
        // Fig. 7a ordering on the A100.
        let sizes = vec![4096, 8192];
        let run = |model| {
            run_experiment(&Experiment::new(
                Arch::A100,
                model,
                Precision::Double,
                sizes.clone(),
            ))
            .unwrap()
            .mean_gflops()
        };
        let cuda = run(ProgModel::Cuda);
        let julia = run(ProgModel::JuliaCudaJl);
        let kokkos = run(ProgModel::KokkosCuda);
        let numba = run(ProgModel::NumbaCuda);
        assert!(cuda > julia, "cuda {cuda} vs julia {julia}");
        assert!(julia > kokkos, "julia {julia} vs kokkos {kokkos}");
        assert!(kokkos > numba, "kokkos {kokkos} vs numba {numba}");
    }

    #[test]
    fn julia_edges_out_hip_at_fp32_on_mi250x() {
        // Fig. 6b: AMDGPU.jl slightly above HIP at single precision.
        let sizes = vec![8192];
        let run = |model| {
            run_experiment(&Experiment::new(
                Arch::Mi250x,
                model,
                Precision::Single,
                sizes.clone(),
            ))
            .unwrap()
            .mean_gflops()
        };
        let hip = run(ProgModel::Hip);
        let julia = run(ProgModel::JuliaAmdGpu);
        assert!(julia > hip, "julia {julia} vs hip {hip}");
        assert!(julia < hip * 1.15, "gap should be small");
    }

    #[test]
    fn julia_fp16_shows_no_gain_over_fp32_on_gpus() {
        // Figs. 6c and 7c.
        for (arch, model) in [
            (Arch::A100, ProgModel::JuliaCudaJl),
            (Arch::Mi250x, ProgModel::JuliaAmdGpu),
        ] {
            let sizes = vec![8192];
            let half = run_experiment(&Experiment::new(
                arch,
                model,
                Precision::Half,
                sizes.clone(),
            ))
            .unwrap()
            .mean_gflops();
            let single = run_experiment(&Experiment::new(arch, model, Precision::Single, sizes))
                .unwrap()
                .mean_gflops();
            let ratio = half / single;
            assert!(
                (0.85..1.15).contains(&ratio),
                "{model} on {arch}: FP16/FP32 ratio {ratio}"
            );
        }
    }

    #[test]
    fn kokkos_hip_dips_at_the_largest_size() {
        // Fig. 6a's repeatable slowdown at n = 20480.
        let exp = Experiment::new(
            Arch::Mi250x,
            ProgModel::KokkosHip,
            Precision::Double,
            vec![16384, 20480],
        );
        let r = run_experiment(&exp).unwrap();
        let before = r.at(16384).unwrap().gflops;
        let after = r.at(20480).unwrap().gflops;
        assert!(after < before * 0.85, "no dip: {before} -> {after}");
        // The vendor HIP curve does not dip.
        let hip = run_experiment(&Experiment::new(
            Arch::Mi250x,
            ProgModel::Hip,
            Precision::Double,
            vec![16384, 20480],
        ))
        .unwrap();
        assert!(hip.at(20480).unwrap().gflops > hip.at(16384).unwrap().gflops * 0.9);
    }

    #[test]
    fn jit_models_report_warmup() {
        let julia = run_experiment(&quick(
            Arch::Epyc7A53,
            ProgModel::JuliaThreads,
            Precision::Double,
        ))
        .unwrap();
        let c = run_experiment(&quick(
            Arch::Epyc7A53,
            ProgModel::COpenMp,
            Precision::Double,
        ))
        .unwrap();
        assert!(julia.warmup_excluded_s > c.warmup_excluded_s + 1.0);
    }

    #[test]
    fn numba_half_carries_the_ones_workaround_note() {
        let exp = quick(Arch::A100, ProgModel::NumbaCuda, Precision::Half);
        let r = run_experiment(&exp).unwrap();
        let note = r.support_note.expect("partial support note");
        assert!(note.contains("ones"));
    }
}
