//! Scaling functional-simulation counters to target problem sizes.
//!
//! Running the SIMT simulator at production sizes (n = 20480 ⇒ 4·10¹²
//! thread-steps) is infeasible and unnecessary: the naive GEMM's counters
//! are exactly linear in `m·n·k` with shape-independent coefficients, so
//! the runner measures them at a small calibration size and scales. The
//! scaling is validated against direct simulation in the tests.

use perfport_gpusim::LaunchStats;
use perfport_machines::{GemmShape, GpuKernelProfile};

/// Per-flop traffic coefficients measured from a calibration launch.
#[derive(Debug, Clone, Copy)]
pub struct TrafficCoefficients {
    /// Requested element bytes (loads + stores) per flop.
    pub l1_bytes_per_flop: f64,
}

impl TrafficCoefficients {
    /// Extracts coefficients from a calibration launch's counters.
    ///
    /// # Panics
    ///
    /// Panics if the launch tallied no flops.
    pub fn from_stats(stats: &LaunchStats) -> Self {
        assert!(stats.flops > 0, "calibration launch tallied no flops");
        TrafficCoefficients {
            l1_bytes_per_flop: (stats.load_bytes + stats.store_bytes) as f64 / stats.flops as f64,
        }
    }
}

/// Builds the timing-model input for a target shape from calibration
/// coefficients plus the analytic DRAM footprint.
///
/// DRAM model for the fine-granularity kernel with `bx × by` blocks:
/// every block reads `by` full rows of `A` and `bx` full columns of `B`,
/// so `A` is streamed once per grid column (`n / bx` times), `B` once per
/// grid row (`m / by` times), and `C` is written once.
pub fn gemm_gpu_profile(
    shape: &GemmShape,
    block: (u32, u32),
    elem_bytes: usize,
    coeffs: &TrafficCoefficients,
) -> GpuKernelProfile {
    let flops = shape.flops();
    let (m, n, k) = (shape.m as f64, shape.n as f64, shape.k as f64);
    let b = elem_bytes as f64;
    let grid_cols = (n / f64::from(block.0)).max(1.0);
    let grid_rows = (m / f64::from(block.1)).max(1.0);
    let dram_bytes = m * k * b * grid_cols + k * n * b * grid_rows + m * n * b;
    GpuKernelProfile {
        flops,
        l1_bytes: coeffs.l1_bytes_per_flop * flops,
        dram_bytes,
    }
}

/// Analytic divergence rate for a ragged grid: the fraction of warps
/// containing out-of-bounds lanes. Zero when the block tiles the problem
/// exactly (all the paper's sizes are multiples of 32).
pub fn edge_divergence_rate(shape: &GemmShape, block: (u32, u32)) -> f64 {
    let (bx, by) = (block.0 as usize, block.1 as usize);
    let gx = shape.n.div_ceil(bx);
    let gy = shape.m.div_ceil(by);
    if gx == 0 || gy == 0 {
        return 0.0;
    }
    // Blocks on the ragged right edge and bottom edge contain partial
    // warps; within such a block essentially every warp is divergent.
    let ragged_x = usize::from(!shape.n.is_multiple_of(bx));
    let ragged_y = usize::from(!shape.m.is_multiple_of(by));
    let edge_blocks = ragged_x * gy + ragged_y * gx - ragged_x * ragged_y;
    edge_blocks as f64 / (gx * gy) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfport_gemm::{gpu_gemm, GpuVariant, Layout, Matrix};
    use perfport_gpusim::{Dim3, Gpu};

    fn measure(n: usize) -> LaunchStats {
        let gpu = Gpu::new(GpuVariant::Cuda.device_class());
        let a = Matrix::<f64>::random(n, n, Layout::RowMajor, 1);
        let b = Matrix::<f64>::random(n, n, Layout::RowMajor, 2);
        let (_, stats) = gpu_gemm(&gpu, GpuVariant::Cuda, &a, &b, Dim3::d2(32, 32)).unwrap();
        stats
    }

    #[test]
    fn coefficients_are_size_invariant() {
        // The whole premise of counter scaling: per-flop coefficients at
        // n=64 equal those at n=128.
        let small = TrafficCoefficients::from_stats(&measure(64));
        let large = TrafficCoefficients::from_stats(&measure(128));
        let rel =
            (small.l1_bytes_per_flop - large.l1_bytes_per_flop).abs() / large.l1_bytes_per_flop;
        assert!(rel < 0.02, "coefficients drifted by {rel}");
    }

    #[test]
    fn scaled_l1_bytes_match_direct_simulation() {
        let coeffs = TrafficCoefficients::from_stats(&measure(64));
        let target = measure(160);
        let predicted = gemm_gpu_profile(&GemmShape::square(160), (32, 32), 8, &coeffs);
        let actual = (target.load_bytes + target.store_bytes) as f64;
        let rel = (predicted.l1_bytes - actual).abs() / actual;
        assert!(rel < 0.02, "l1 scaling off by {rel}");
    }

    #[test]
    fn l1_per_flop_is_close_to_theory() {
        // Two 8-byte loads per 2 flops plus the one-off store: ≈ 8
        // bytes/flop for f64.
        let c = TrafficCoefficients::from_stats(&measure(96));
        assert!((c.l1_bytes_per_flop - 8.0).abs() < 0.2, "{c:?}");
    }

    #[test]
    fn dram_footprint_formula() {
        let p = gemm_gpu_profile(
            &GemmShape::square(1024),
            (32, 32),
            8,
            &TrafficCoefficients {
                l1_bytes_per_flop: 8.0,
            },
        );
        let n = 1024.0f64;
        let expected = n * n * 8.0 * (n / 32.0) * 2.0 + n * n * 8.0;
        assert!((p.dram_bytes - expected).abs() < 1.0);
        assert_eq!(p.flops, 2.0 * n * n * n);
    }

    #[test]
    fn divergence_zero_for_exact_tiles() {
        assert_eq!(
            edge_divergence_rate(&GemmShape::square(1024), (32, 32)),
            0.0
        );
        assert_eq!(
            edge_divergence_rate(&GemmShape::square(20480), (32, 32)),
            0.0
        );
    }

    #[test]
    fn divergence_positive_for_ragged_grids() {
        let r = edge_divergence_rate(&GemmShape::square(1000), (32, 32));
        assert!(r > 0.0 && r < 0.2, "{r}");
        // Small ragged problems are mostly edge.
        let tiny = edge_divergence_rate(&GemmShape::square(33), (32, 32));
        assert!(tiny > 0.7, "{tiny}");
    }
}
