//! Single-node thread-scaling study (extension A4).
//!
//! The paper's introduction frames the work as analysing "single node
//! scalability", though the figures only show full-node runs. This
//! module sweeps the team size for any CPU model and reports
//! speedup/parallel-efficiency curves, including the NUMA kink that
//! appears on Crusher once a team spans more than one domain while
//! unpinned.

use crate::experiment::RunError;
use perfport_machines::{estimate_cpu_gemm, CpuExecution, GemmShape, Precision};
use perfport_models::{codegen_efficiency, cpu_profile, support, Arch, ProgModel, Support};
use perfport_pool::PinPolicy;

/// A thread-scaling sweep description.
#[derive(Debug, Clone)]
pub struct ScalingStudy {
    /// CPU architecture.
    pub arch: Arch,
    /// CPU programming model.
    pub model: ProgModel,
    /// Element precision.
    pub precision: Precision,
    /// Square matrix size.
    pub n: usize,
    /// Team sizes to sweep (e.g. `[1, 2, 4, ..., 64]`).
    pub thread_counts: Vec<usize>,
}

impl ScalingStudy {
    /// Power-of-two team sizes up to the machine's core count.
    pub fn pow2(arch: Arch, model: ProgModel, precision: Precision, n: usize) -> Self {
        let cores = arch.cpu_machine().map(|m| m.total_cores()).unwrap_or(64);
        let mut thread_counts = Vec::new();
        let mut t = 1;
        while t < cores {
            thread_counts.push(t);
            t *= 2;
        }
        thread_counts.push(cores);
        ScalingStudy {
            arch,
            model,
            precision,
            n,
            thread_counts,
        }
    }
}

/// One point of the scaling curve.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Team size.
    pub threads: usize,
    /// Modelled throughput, GFLOP/s.
    pub gflops: f64,
}

/// The scaling sweep result.
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// The study that produced this result.
    pub study: ScalingStudy,
    /// Points in sweep order.
    pub points: Vec<ScalingPoint>,
}

impl ScalingResult {
    /// Speedup over the single-thread point.
    pub fn speedup(&self, threads: usize) -> Option<f64> {
        let base = self.points.iter().find(|p| p.threads == 1)?.gflops;
        let at = self.points.iter().find(|p| p.threads == threads)?.gflops;
        Some(at / base)
    }

    /// Parallel efficiency (`speedup / threads`).
    pub fn parallel_efficiency(&self, threads: usize) -> Option<f64> {
        Some(self.speedup(threads)? / threads as f64)
    }
}

/// Runs the sweep.
///
/// # Errors
///
/// [`RunError::Unsupported`] for combinations the study excludes or
/// GPU architectures.
pub fn run_scaling(study: &ScalingStudy) -> Result<ScalingResult, RunError> {
    if let Support::Unsupported(reason) = support(study.model, study.arch, study.precision) {
        return Err(RunError::Unsupported {
            model: study.model,
            arch: study.arch,
            reason: reason.to_string(),
        });
    }
    let machine = study
        .arch
        .cpu_machine()
        .ok_or_else(|| RunError::Unsupported {
            model: study.model,
            arch: study.arch,
            reason: "thread scaling is a CPU study".to_string(),
        })?;
    let profile = cpu_profile(study.model);
    let cal = codegen_efficiency(study.model, study.arch, study.precision);
    let shape = GemmShape::square(study.n);

    let points = study
        .thread_counts
        .iter()
        .map(|&threads| {
            let imbalance = if study.n == 0 {
                1.0
            } else {
                (study.n.div_ceil(threads.max(1)) * threads.max(1)) as f64 / study.n as f64
            };
            let exec = CpuExecution {
                threads: threads.max(1),
                pinned: profile.pin_policy != PinPolicy::Unpinned,
                codegen_efficiency: cal.value,
                region_overhead_us: machine.fork_join_us * profile.region_overhead_multiplier,
                imbalance: imbalance.max(1.0),
            };
            let est = estimate_cpu_gemm(&machine, study.precision, &shape, &exec);
            ScalingPoint {
                threads,
                gflops: est.gflops,
            }
        })
        .collect();

    Ok(ScalingResult {
        study: study.clone(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study(model: ProgModel) -> ScalingStudy {
        ScalingStudy::pow2(Arch::Epyc7A53, model, Precision::Double, 4096)
    }

    #[test]
    fn pow2_sweep_ends_at_core_count() {
        let s = study(ProgModel::COpenMp);
        assert_eq!(*s.thread_counts.first().unwrap(), 1);
        assert_eq!(*s.thread_counts.last().unwrap(), 64);
    }

    #[test]
    fn throughput_is_monotone_in_threads() {
        let r = run_scaling(&study(ProgModel::COpenMp)).unwrap();
        for w in r.points.windows(2) {
            assert!(
                w[1].gflops >= w[0].gflops * 0.999,
                "throughput dropped: {:?}",
                w
            );
        }
    }

    #[test]
    fn speedup_saturates_at_the_bandwidth_wall() {
        // A streaming kernel stops scaling once the shared LLC/DRAM
        // bandwidth is saturated: efficiency at 64 threads is well below
        // 1.
        let r = run_scaling(&study(ProgModel::COpenMp)).unwrap();
        let eff64 = r.parallel_efficiency(64).unwrap();
        let eff2 = r.parallel_efficiency(2).unwrap();
        assert!(eff2 > 0.9, "near-linear at small teams: {eff2}");
        assert!(eff64 < 0.7, "bandwidth wall expected: {eff64}");
        assert!(r.speedup(64).unwrap() > 4.0, "still substantial speedup");
    }

    #[test]
    fn julia_scales_like_openmp_numba_scales_worse() {
        let omp = run_scaling(&study(ProgModel::COpenMp)).unwrap();
        let julia = run_scaling(&study(ProgModel::JuliaThreads)).unwrap();
        let numba = run_scaling(&study(ProgModel::NumbaParallel)).unwrap();
        let last = |r: &ScalingResult| r.points.last().unwrap().gflops;
        assert!(last(&julia) > 0.85 * last(&omp));
        assert!(last(&numba) < 0.65 * last(&omp));
    }

    #[test]
    fn gpu_arch_is_rejected() {
        let s = ScalingStudy::pow2(Arch::A100, ProgModel::Cuda, Precision::Double, 4096);
        assert!(run_scaling(&s).is_err());
    }

    #[test]
    fn unsupported_model_is_rejected() {
        let s = ScalingStudy {
            arch: Arch::Epyc7A53,
            model: ProgModel::COpenMp,
            precision: Precision::Half,
            n: 1024,
            thread_counts: vec![1, 2],
        };
        assert!(matches!(run_scaling(&s), Err(RunError::Unsupported { .. })));
    }
}
