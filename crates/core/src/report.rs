//! The reproduction report: paper-reported vs. regenerated values for
//! every quantitative anchor, as a machine-checkable structure and a
//! rendered markdown section.
//!
//! `EXPERIMENTS.md` is the narrative version of this; the
//! `perfport-bench` `report` binary regenerates the comparison from live
//! runs so drift between code and documentation is detectable
//! (`cargo run -p perfport-bench --bin report`).

use crate::analysis::{efficiency_table_with, HostBaseline};
use crate::study::StudyConfig;
use perfport_machines::Precision;
use perfport_models::{Arch, ModelFamily};

/// One quantitative anchor from the paper, compared against the
/// regenerated value.
#[derive(Debug, Clone)]
pub struct Anchor {
    /// Where the number appears in the paper.
    pub source: &'static str,
    /// What it measures.
    pub quantity: String,
    /// The paper's value (`None` marks an unsupported combination).
    pub paper: Option<f64>,
    /// The regenerated value.
    pub reproduced: Option<f64>,
    /// Acceptance tolerance (absolute).
    pub tolerance: f64,
}

impl Anchor {
    /// Whether the regenerated value matches the paper within tolerance
    /// (including agreeing on "unsupported").
    pub fn matches(&self) -> bool {
        match (self.paper, self.reproduced) {
            (None, None) => true,
            (Some(p), Some(r)) => (p - r).abs() <= self.tolerance,
            _ => false,
        }
    }
}

/// The paper's Table III anchors (both precisions).
pub fn table_iii_anchors() -> Vec<(Arch, ModelFamily, Precision, Option<f64>)> {
    use Arch::*;
    use ModelFamily::*;
    use Precision::*;
    vec![
        (Epyc7A53, Kokkos, Double, Some(0.994)),
        (Epyc7A53, Julia, Double, Some(0.912)),
        (Epyc7A53, PythonNumba, Double, Some(0.550)),
        (AmpereAltra, Kokkos, Double, Some(0.854)),
        (AmpereAltra, Julia, Double, Some(0.907)),
        (AmpereAltra, PythonNumba, Double, Some(0.713)),
        (Mi250x, Kokkos, Double, Some(0.842)),
        (Mi250x, Julia, Double, Some(0.903)),
        (Mi250x, PythonNumba, Double, None),
        (A100, Kokkos, Double, Some(0.260)),
        (A100, Julia, Double, Some(0.867)),
        (A100, PythonNumba, Double, Some(0.130)),
        (Epyc7A53, Kokkos, Single, Some(1.014)),
        (Epyc7A53, Julia, Single, Some(0.976)),
        (Epyc7A53, PythonNumba, Single, Some(0.655)),
        (AmpereAltra, Kokkos, Single, Some(0.836)),
        (AmpereAltra, Julia, Single, Some(0.900)),
        (AmpereAltra, PythonNumba, Single, Some(0.400)),
        (Mi250x, Kokkos, Single, Some(0.677)),
        (Mi250x, Julia, Single, Some(1.050)),
        (Mi250x, PythonNumba, Single, None),
        (A100, Kokkos, Single, Some(0.208)),
        (A100, Julia, Single, Some(0.600)),
        (A100, PythonNumba, Single, Some(0.095)),
    ]
}

/// The paper's Φ_M aggregates.
pub fn phi_anchors() -> Vec<(ModelFamily, Precision, f64)> {
    use ModelFamily::*;
    use Precision::*;
    vec![
        (Kokkos, Double, 0.738),
        (Julia, Double, 0.897),
        (PythonNumba, Double, 0.348),
        (Kokkos, Single, 0.684),
        (Julia, Single, 0.882),
        (PythonNumba, Single, 0.288),
    ]
}

/// Runs the study and compares every Table III anchor.
///
/// The anchors pin this repository to Table III *as printed*, whose
/// efficiencies divide by the naive vendor-toolchain run — so the
/// comparison is made against [`HostBaseline::NaiveModel`] regardless of
/// the default table baseline.
pub fn reproduction_report(cfg: &StudyConfig) -> Vec<Anchor> {
    let double = efficiency_table_with(Precision::Double, cfg, HostBaseline::NaiveModel);
    let single = efficiency_table_with(Precision::Single, cfg, HostBaseline::NaiveModel);
    let pick = |p: Precision| {
        if p == Precision::Double {
            &double
        } else {
            &single
        }
    };

    let mut anchors = Vec::new();
    for (arch, family, precision, paper) in table_iii_anchors() {
        let reproduced = pick(precision)
            .matrix
            .get(arch.table_label(), family.label());
        anchors.push(Anchor {
            source: "Table III",
            quantity: format!(
                "e_{{{}}} {} {}",
                arch.table_label(),
                family.label(),
                precision
            ),
            paper,
            reproduced,
            tolerance: 0.08,
        });
    }
    for (family, precision, paper) in phi_anchors() {
        anchors.push(Anchor {
            source: "Table III",
            quantity: format!("Phi_M {} {}", family.label(), precision),
            paper: Some(paper),
            reproduced: Some(pick(precision).phi(family)),
            tolerance: 0.05,
        });
    }
    anchors
}

/// Renders the anchor comparison as a markdown table.
pub fn render_report(anchors: &[Anchor]) -> String {
    let mut out = String::from(
        "| source | quantity | paper | reproduced | within tol |\n|---|---|---|---|---|\n",
    );
    for a in anchors {
        let fmt = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x:.3}"));
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            a.source,
            a.quantity,
            fmt(a.paper),
            fmt(a.reproduced),
            if a.matches() { "yes" } else { "NO" }
        ));
    }
    let passed = anchors.iter().filter(|a| a.matches()).count();
    out.push_str(&format!(
        "\n{passed}/{} anchors reproduced within tolerance.\n",
        anchors.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchor_matching_logic() {
        let a = Anchor {
            source: "t",
            quantity: "q".into(),
            paper: Some(0.5),
            reproduced: Some(0.52),
            tolerance: 0.05,
        };
        assert!(a.matches());
        let far = Anchor {
            reproduced: Some(0.7),
            ..a.clone()
        };
        assert!(!far.matches());
        let both_missing = Anchor {
            paper: None,
            reproduced: None,
            ..a.clone()
        };
        assert!(both_missing.matches());
        let half_missing = Anchor { paper: None, ..a };
        assert!(!half_missing.matches());
    }

    #[test]
    fn all_anchors_reproduce() {
        let anchors = reproduction_report(&StudyConfig::quick());
        let failures: Vec<String> = anchors
            .iter()
            .filter(|a| !a.matches())
            .map(|a| {
                format!(
                    "{}: paper {:?} vs reproduced {:?}",
                    a.quantity, a.paper, a.reproduced
                )
            })
            .collect();
        assert!(
            failures.is_empty(),
            "anchors failed:\n{}",
            failures.join("\n")
        );
        assert_eq!(anchors.len(), 30);
    }

    #[test]
    fn report_renders_markdown() {
        let anchors = vec![Anchor {
            source: "Table III",
            quantity: "test".into(),
            paper: Some(1.0),
            reproduced: Some(1.0),
            tolerance: 0.1,
        }];
        let text = render_report(&anchors);
        assert!(text.contains("| Table III | test | 1.000 | 1.000 | yes |"));
        assert!(text.contains("1/1 anchors"));
    }
}
