//! Deterministic run-to-run variability.
//!
//! The paper reports "the most likely performance value" from repeated
//! runs and treats variability as a property of the system. The runner
//! reproduces that protocol: each repetition's modelled time is perturbed
//! by a small multiplicative noise drawn from a seeded generator, so
//! results are realistic *and* bit-reproducible.
//!
//! Each `(arch, model, precision, n)` grid point gets its own stream
//! (the label carries the size), so the draws for one point never depend
//! on which other points ran before it in the same process. That
//! order-independence is what lets the sharded study runner partition
//! the grid arbitrarily while reproducing the serial output byte for
//! byte.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative standard deviation of per-repetition noise (~2%, typical of
/// a dedicated HPC node).
pub const NOISE_REL_SIGMA: f64 = 0.02;

/// Derives an independent, reproducible random stream from an experiment
/// seed and a sub-component label (FNV-1a over the label, xor'd into the
/// seed). Every per-entity stream in the workspace — per-grid-point
/// repetition noise here, per-purpose arrival/shape/service streams in
/// the serving harness — goes through this one function so labels
/// decorrelate streams the same way everywhere.
pub fn stream(seed: u64, label: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ h)
}

/// A seeded noise source for one experiment.
pub struct NoiseSource {
    rng: StdRng,
}

impl NoiseSource {
    /// Derives a noise stream from the experiment seed and a
    /// sub-component label (so each (size, model) series gets an
    /// independent but reproducible stream).
    pub fn new(seed: u64, label: &str) -> Self {
        NoiseSource {
            rng: stream(seed, label),
        }
    }

    /// A multiplicative factor near 1.0 (mean 1, sd ≈ [`NOISE_REL_SIGMA`],
    /// clamped positive). Uses the sum of three uniforms as a cheap
    /// approximate Gaussian.
    pub fn factor(&mut self) -> f64 {
        let u: f64 = (0..3).map(|_| self.rng.gen::<f64>()).sum::<f64>() / 3.0; // mean .5, sd ~.167
        let gauss = (u - 0.5) / 0.166;
        (1.0 + gauss * NOISE_REL_SIGMA).max(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_label() {
        let mut a = NoiseSource::new(42, "fig4a");
        let mut b = NoiseSource::new(42, "fig4a");
        for _ in 0..10 {
            assert_eq!(a.factor(), b.factor());
        }
        let mut c = NoiseSource::new(42, "fig4b");
        let first: Vec<f64> = (0..10)
            .map(|_| NoiseSource::new(42, "fig4a").factor())
            .collect();
        let other: Vec<f64> = (0..10).map(|_| c.factor()).collect();
        assert_ne!(first, other, "different labels must decorrelate the stream");
    }

    #[test]
    fn factors_are_near_one() {
        let mut n = NoiseSource::new(7, "x");
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f = n.factor();
            assert!(f > 0.8 && f < 1.2, "{f}");
            sum += f;
        }
        let mean = sum / 1000.0;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn different_labels_differ() {
        let mut a = NoiseSource::new(42, "alpha");
        let mut b = NoiseSource::new(42, "beta");
        let same = (0..20).filter(|_| a.factor() == b.factor()).count();
        assert!(same < 20);
    }
}
